//! # dike-repro — umbrella crate for the Dike reproduction
//!
//! Re-exports the whole workspace behind one dependency, hosting the
//! runnable examples in `examples/` and the cross-crate integration tests
//! in `tests/`. See the individual crates for the real APIs:
//!
//! * [`machine`] — the simulated heterogeneous multicore.
//! * `workloads` — Rodinia-style application models and the paper's WL1–16.
//! * `counters` — counter-rate plumbing and estimators.
//! * `sched_core` — the scheduler framework and run loop.
//! * `dike` — the Dike scheduler (Observer/Selector/Predictor/Decider/
//!   Migrator/Optimizer).
//! * `baselines` — CFS stand-in, DIO, random, oracle.
//! * `metrics` — fairness/performance/prediction-error metrics.
//! * `experiments` — per-figure/table experiment drivers.
//! * `util` — in-tree RNG, JSON, property-check and bench support
//!   (keeps the build offline and dependency-free).

pub use dike_baselines as baselines;
pub use dike_counters as counters;
pub use dike_experiments as experiments;
pub use dike_machine as machine;
pub use dike_metrics as metrics;
pub use dike_sched_core as sched_core;
pub use dike_scheduler as dike;
pub use dike_util as util;
pub use dike_workloads as workloads;
