//! The paper's fairness metric (Eqn 4) and alternatives.
//!
//! "For a workload with n benchmarks: `Fairness = 1 − Σ cv_i / n` where
//! `cv_i` is the coefficient of variation of homogeneous threads' execution
//! time in benchmark i. In an ideal fair system … maximum Fairness is 1."
//!
//! The prior-work alternative — maximum slowdown over minimum slowdown
//! [8, 13] — is also provided, both to compare against and because the
//! paper argues it "fails to address fairness completely"; a test in this
//! module demonstrates the pathology the paper describes (it ignores every
//! thread but the best and worst).

use crate::stats::coefficient_of_variation;
use dike_util::json_struct;

/// Per-app thread runtimes for one workload run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuntimeMatrix {
    /// `runtimes[i]` = execution times (seconds) of app *i*'s threads.
    pub per_app: Vec<Vec<f64>>,
}

json_struct!(RuntimeMatrix { per_app });

impl RuntimeMatrix {
    /// Build from per-app runtime vectors.
    pub fn new(per_app: Vec<Vec<f64>>) -> Self {
        RuntimeMatrix { per_app }
    }

    /// The paper's fairness (Eqn 4): `1 − mean_i cv_i`.
    ///
    /// Apps with fewer than two threads (or zero-mean runtimes) contribute
    /// zero dispersion, so a workload of such apps scores a perfect 1.0.
    /// Returns 1.0 for an empty matrix (nothing was unfair). The result is
    /// always finite: degenerate per-app samples are clamped to zero
    /// dispersion by [`coefficient_of_variation`] rather than surfacing as
    /// NaN or −inf.
    pub fn fairness(&self) -> f64 {
        if self.per_app.is_empty() {
            return 1.0;
        }
        let cv_sum: f64 = self
            .per_app
            .iter()
            .map(|ts| {
                let cv = coefficient_of_variation(ts);
                // Belt and braces: even if the dispersion measure changes,
                // one pathological app must not wipe out the whole score.
                if cv.is_finite() {
                    cv
                } else {
                    0.0
                }
            })
            .sum();
        1.0 - cv_sum / self.per_app.len() as f64
    }

    /// Mean app runtime: each app's runtime is the completion time of its
    /// slowest thread (a data-parallel app is done when its last thread is).
    pub fn mean_app_runtime(&self) -> f64 {
        let finishes: Vec<f64> = self
            .per_app
            .iter()
            .filter(|ts| !ts.is_empty())
            .map(|ts| ts.iter().copied().fold(f64::NEG_INFINITY, f64::max))
            .collect();
        crate::stats::mean(&finishes)
    }

    /// Makespan: the completion time of the slowest thread overall.
    pub fn makespan(&self) -> f64 {
        self.per_app.iter().flatten().copied().fold(0.0, f64::max)
    }

    /// The prior-work unfairness metric: max thread runtime over min thread
    /// runtime across the whole workload (1.0 = perfectly fair). The paper
    /// criticises this for "only considering best and worst cases".
    pub fn max_min_ratio(&self) -> f64 {
        let all: Vec<f64> = self.per_app.iter().flatten().copied().collect();
        if all.is_empty() {
            return 1.0;
        }
        let max = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = all.iter().copied().fold(f64::INFINITY, f64::min);
        if min <= 0.0 {
            return f64::INFINITY;
        }
        max / min
    }
}

/// Relative improvement of `value` over `baseline`, as the paper reports
/// (e.g. "Dike improves fairness by 38% over DIO"): `(value − baseline) /
/// baseline`.
///
/// Returns 0.0 when the baseline is zero.
pub fn relative_improvement(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (value - baseline) / baseline
    }
}

/// Speedup of `baseline_time` over `time` (>1 means faster than baseline).
///
/// # Panics
/// Panics if `time` is not positive.
pub fn speedup(baseline_time: f64, time: f64) -> f64 {
    assert!(time > 0.0, "time must be positive, got {time}");
    baseline_time / time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_fair_run_scores_one() {
        let m = RuntimeMatrix::new(vec![vec![10.0; 8], vec![20.0; 8]]);
        assert!((m.fairness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dispersion_lowers_fairness() {
        let fair = RuntimeMatrix::new(vec![vec![10.0, 10.0, 10.0, 10.0]]);
        let unfair = RuntimeMatrix::new(vec![vec![5.0, 10.0, 15.0, 20.0]]);
        assert!(unfair.fairness() < fair.fairness());
        assert!(unfair.fairness() < 1.0);
    }

    #[test]
    fn fairness_averages_across_apps() {
        // One perfectly fair app + one unfair app: fairness is the mean.
        let solo_unfair = RuntimeMatrix::new(vec![vec![1.0, 2.0]]);
        let with_fair_app = RuntimeMatrix::new(vec![vec![1.0, 2.0], vec![3.0, 3.0]]);
        let cv = 1.0 - solo_unfair.fairness();
        assert!((with_fair_app.fairness() - (1.0 - cv / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_fair() {
        assert_eq!(RuntimeMatrix::default().fairness(), 1.0);
        assert_eq!(RuntimeMatrix::default().max_min_ratio(), 1.0);
    }

    #[test]
    fn degenerate_matrices_stay_finite_and_fair() {
        // Regression (ISSUE 1 satellite): empty apps, single-thread apps
        // and zero-mean runtimes must score 1.0, never NaN or −inf.
        for m in [
            RuntimeMatrix::new(vec![vec![]]),
            RuntimeMatrix::new(vec![vec![], vec![]]),
            RuntimeMatrix::new(vec![vec![5.0]]),
            RuntimeMatrix::new(vec![vec![5.0], vec![7.0]]),
            RuntimeMatrix::new(vec![vec![0.0, 0.0, 0.0]]),
            RuntimeMatrix::new(vec![vec![0.0, 0.0], vec![], vec![3.0]]),
        ] {
            let f = m.fairness();
            assert!(f.is_finite(), "fairness not finite for {m:?}");
            assert_eq!(f, 1.0, "zero-dispersion matrix must be fair: {m:?}");
        }
        // A NaN runtime (e.g. an unfinished thread recorded as NaN) must
        // not take the whole score down with it.
        let poisoned = RuntimeMatrix::new(vec![vec![f64::NAN, 1.0], vec![2.0, 4.0]]);
        assert!(poisoned.fairness().is_finite());
        // mean_app_runtime/makespan on fully-empty matrices stay finite.
        let empty_apps = RuntimeMatrix::new(vec![vec![], vec![]]);
        assert_eq!(empty_apps.mean_app_runtime(), 0.0);
        assert_eq!(empty_apps.makespan(), 0.0);
    }

    #[test]
    fn runtime_aggregates() {
        let m = RuntimeMatrix::new(vec![vec![1.0, 3.0], vec![2.0, 4.0]]);
        assert_eq!(m.makespan(), 4.0);
        assert_eq!(m.mean_app_runtime(), 3.5); // (3 + 4) / 2
    }

    #[test]
    fn max_min_ratio_ignores_middle_threads_the_papers_critique() {
        // Two runs with identical best/worst threads but very different
        // dispersion in between: max/min cannot tell them apart, CV can.
        let tight = RuntimeMatrix::new(vec![vec![1.0, 1.9, 2.0, 1.1]]);
        let spread = RuntimeMatrix::new(vec![vec![1.0, 1.5, 2.0, 1.5]]);
        assert_eq!(tight.max_min_ratio(), spread.max_min_ratio());
        assert_ne!(tight.fairness(), spread.fairness());
    }

    #[test]
    fn improvement_and_speedup() {
        assert!((relative_improvement(1.38, 1.0) - 0.38).abs() < 1e-12);
        assert_eq!(relative_improvement(5.0, 0.0), 0.0);
        assert!((speedup(10.0, 8.0) - 1.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn speedup_rejects_zero_time() {
        let _ = speedup(1.0, 0.0);
    }
}
