//! Descriptive statistics used throughout the evaluation.

use dike_util::json_struct;

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation. Returns 0.0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Coefficient of variation (standard deviation over mean) — the paper's
/// dispersion measure for both the fairness gate (Section III-B) and the
/// fairness metric (Eqn 4).
///
/// Degenerate inputs report zero dispersion rather than poisoning
/// downstream fairness scores: empty slices, single samples, an all-zero
/// (or otherwise zero-mean) sample, and samples containing non-finite
/// values all return 0.0 — never NaN or an infinity.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    // `m == 0.0` alone would let NaN (from a NaN sample) or a mean of ±inf
    // flow into the division; require a nonzero finite mean instead.
    if !m.is_finite() || m == 0.0 {
        return 0.0;
    }
    let cv = std_dev(xs) / m;
    if cv.is_finite() {
        cv
    } else {
        0.0
    }
}

/// Geometric mean. Returns 0.0 for an empty slice; requires positive inputs.
///
/// # Panics
/// Panics if any input is not positive.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

json_struct!(Summary {
    n,
    min,
    mean,
    max,
    std_dev,
});

impl Summary {
    /// Summarise a sample. Returns the default (all zeros) for empty input.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary::default();
        }
        Summary {
            n: xs.len(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            mean: mean(xs),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            std_dev: std_dev(xs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        // Population std of {2,4,4,4,5,5,7,9} is 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cv_is_scale_invariant() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [10.0, 20.0, 30.0];
        assert!((coefficient_of_variation(&xs) - coefficient_of_variation(&ys)).abs() < 1e-12);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[7.0, 7.0, 7.0]), 0.0);
    }

    #[test]
    fn cv_degenerate_inputs_report_zero_dispersion() {
        // Regression (ISSUE 1 satellite): these used to be able to produce
        // NaN or an infinity, which then poisoned fairness scores.
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[4.2]), 0.0);
        assert_eq!(coefficient_of_variation(&[0.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[f64::NAN, 1.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[f64::INFINITY, 1.0]), 0.0);
        // A zero mean from cancellation, not just all-zero input.
        assert_eq!(coefficient_of_variation(&[-1.0, 1.0]), 0.0);
        assert!(coefficient_of_variation(&[1.0, 2.0, f64::MAX]).is_finite());
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert!(s.std_dev > 0.0);
        assert_eq!(Summary::of(&[]), Summary::default());
    }
}
