//! Time-series recording for runtime traces (Figure 8's prediction-error
//! trend, access-rate traces, utilisation traces).

use crate::stats::Summary;
use dike_util::json_struct;

/// A named `(time, value)` series.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    /// Name for reports.
    pub name: String,
    /// Sample times (seconds).
    pub times: Vec<f64>,
    /// Sample values.
    pub values: Vec<f64>,
}

json_struct!(TimeSeries {
    name,
    times,
    values,
});

impl TimeSeries {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Append a sample. Times must be non-decreasing.
    ///
    /// # Panics
    /// Panics if `t` precedes the last recorded time.
    pub fn push(&mut self, t: f64, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "time went backwards: {t} < {last}");
        }
        self.times.push(t);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Summary statistics of the values.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.values)
    }

    /// Down-sample to at most `max_points` by averaging fixed-size buckets
    /// (for rendering long traces).
    pub fn downsample(&self, max_points: usize) -> TimeSeries {
        assert!(max_points > 0, "max_points must be positive");
        if self.len() <= max_points {
            return self.clone();
        }
        let bucket = self.len().div_ceil(max_points);
        let mut out = TimeSeries::new(self.name.clone());
        for chunk_start in (0..self.len()).step_by(bucket) {
            let end = (chunk_start + bucket).min(self.len());
            let t = self.times[chunk_start..end].iter().sum::<f64>() / (end - chunk_start) as f64;
            let v = self.values[chunk_start..end].iter().sum::<f64>() / (end - chunk_start) as f64;
            out.push(t, v);
        }
        out
    }

    /// Iterate over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut s = TimeSeries::new("err");
        s.push(0.0, 1.0);
        s.push(1.0, 2.0);
        s.push(1.0, 3.0); // equal time allowed
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let pairs: Vec<(f64, f64)> = s.iter().collect();
        assert_eq!(pairs, vec![(0.0, 1.0), (1.0, 2.0), (1.0, 3.0)]);
        assert_eq!(s.summary().max, 3.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rejects_time_travel() {
        let mut s = TimeSeries::new("x");
        s.push(2.0, 0.0);
        s.push(1.0, 0.0);
    }

    #[test]
    fn downsample_averages_buckets() {
        let mut s = TimeSeries::new("x");
        for i in 0..10 {
            s.push(i as f64, i as f64);
        }
        let d = s.downsample(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d.values[0], 0.5); // mean of 0,1
        assert_eq!(d.values[4], 8.5); // mean of 8,9
                                      // No-op when already small enough.
        assert_eq!(s.downsample(100), s);
    }
}
