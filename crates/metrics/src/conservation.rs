//! Arrival-conservation accounting for fault-tolerant fleets.
//!
//! A dispatcher that survives machine loss must never *silently* drop
//! work: every dispatched thread is either drained (finished on some
//! machine), still in flight (admitted-but-unfinished, queued on a
//! machine, or awaiting re-dispatch), or explicitly counted as lost
//! (retry budget exhausted, or routed into a dead machine by a
//! health-blind dispatcher). [`ConservationLedger`] is that balance
//! sheet; `dispatched = drained + in_flight + lost` is the invariant the
//! fleet tests assert at every swept fault level.

use dike_util::json_struct;

/// The thread-count balance sheet of one fleet run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConservationLedger {
    /// Threads routed by the dispatcher (every offered arrival is routed
    /// exactly once; re-dispatch after a crash does not double-count).
    pub dispatched: u64,
    /// Threads that finished on some machine.
    pub drained: u64,
    /// Threads admitted but unfinished at run end, still queued on a
    /// machine, or orphaned and awaiting re-dispatch.
    pub in_flight: u64,
    /// Threads explicitly given up on — never silently dropped.
    pub lost: u64,
}

json_struct!(ConservationLedger {
    dispatched,
    drained,
    in_flight,
    lost,
});

impl ConservationLedger {
    /// Whether the books balance: `dispatched = drained + in_flight + lost`.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.dispatched == self.drained + self.in_flight + self.lost
    }

    /// Panic with the full ledger when the books do not balance (the
    /// assertion form the fleet's tests and the soak gate use).
    pub fn assert_holds(&self, context: &str) {
        assert!(
            self.holds(),
            "conservation violated ({context}): dispatched {} != drained {} + in_flight {} + lost {}",
            self.dispatched,
            self.drained,
            self.in_flight,
            self.lost
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_util::json;

    #[test]
    fn ledger_balance_and_round_trip() {
        let ok = ConservationLedger {
            dispatched: 10,
            drained: 6,
            in_flight: 3,
            lost: 1,
        };
        assert!(ok.holds());
        ok.assert_holds("test");
        let bad = ConservationLedger { drained: 5, ..ok };
        assert!(!bad.holds());
        let s = json::to_string(&ok);
        let back: ConservationLedger = json::from_str(&s).expect("parse");
        assert_eq!(ok, back);
    }

    #[test]
    #[should_panic(expected = "conservation violated")]
    fn assert_holds_panics_on_imbalance() {
        ConservationLedger {
            dispatched: 2,
            ..ConservationLedger::default()
        }
        .assert_holds("unit");
    }
}
