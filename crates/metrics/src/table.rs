//! Minimal fixed-width text-table rendering for the experiment harness
//! (the binaries print the paper's tables/figure series as aligned text).

/// A simple text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || "+-.%xe".contains(c))
                    && !cell.is_empty();
                if numeric {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (for machine-readable experiment dumps).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(&esc)
                .collect::<Vec<String>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(&esc).collect::<Vec<String>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a signed percentage, e.g. `0.382` -> `"+38.2%"`.
pub fn pct(frac: f64) -> String {
    format!("{:+.1}%", frac * 100.0)
}

/// Format a ratio with two decimals and an `x`, e.g. `2.3` -> `"2.30x"`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1.0"]).row(vec!["b", "20.25"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("alpha"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(vec!["k", "v"]);
        t.row(vec!["a,b", "q\"x"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"x\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.382), "+38.2%");
        assert_eq!(pct(-0.05), "-5.0%");
        assert_eq!(ratio(2.3), "2.30x");
    }
}
