//! # dike-metrics — evaluation metrics for contention-aware scheduling
//!
//! Implements the quantities the paper reports:
//!
//! * **Fairness** (Eqn 4): `1 − mean per-app coefficient of variation` of
//!   homogeneous threads' runtimes — [`RuntimeMatrix::fairness`];
//! * **Performance**: speedups and runtime aggregates;
//! * **Prediction error** summaries (Figures 7/8) via [`Summary`] and
//!   [`TimeSeries`];
//! * plain-text/CSV table rendering for the experiment binaries.

pub mod conservation;
pub mod fairness;
pub mod stats;
pub mod table;
pub mod timeseries;
pub mod windowed;

pub use conservation::ConservationLedger;
pub use fairness::{relative_improvement, speedup, RuntimeMatrix};
pub use stats::{coefficient_of_variation, geometric_mean, mean, std_dev, Summary};
pub use table::{pct, ratio, TextTable};
pub use timeseries::TimeSeries;
pub use windowed::{
    fairness_summary, mean_sojourn, merge_spans, windowed_fairness, ThreadSpan, WindowPoint,
};
