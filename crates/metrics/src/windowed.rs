//! Fairness over time for open-system runs.
//!
//! The paper's fairness (Eqn 4) is a whole-run scalar: it assumes every
//! thread starts at time zero and the interesting quantity is the spread
//! of total execution times. In an open system threads arrive and leave
//! continuously, so a single end-of-run number hides transients (a burst
//! of arrivals starving one app for ten seconds can average out). The
//! windowed variant here slides a fixed-length interval over the run and
//! scores, per window, the sojourn times of the threads that *departed*
//! inside it — the open-system analogue of "execution time" — with the
//! same 1 − mean CV reduction, grouped by application instance.

use crate::fairness::RuntimeMatrix;
use crate::stats::mean;
use dike_util::json_struct;
use std::collections::BTreeMap;

/// One thread's lifetime, as reported by the driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadSpan {
    /// Owning application instance.
    pub app: u32,
    /// Arrival time in seconds.
    pub spawned_at: f64,
    /// Completion time in seconds; `None` if still running at the end.
    pub finished_at: Option<f64>,
}

impl ThreadSpan {
    /// Sojourn (residence) time: completion − arrival, charging unfinished
    /// threads up to `wall`.
    pub fn sojourn(&self, wall: f64) -> f64 {
        self.finished_at.unwrap_or(wall) - self.spawned_at
    }
}

/// Fairness and throughput inside one sliding window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPoint {
    /// Window end, in seconds (the window is `[end − length, end)`).
    pub end_s: f64,
    /// Eqn-4 fairness over the sojourn times of threads departing in the
    /// window, grouped by app. 1.0 when no thread departed (nothing was
    /// unfair in an empty window).
    pub fairness: f64,
    /// Mean sojourn time of the departures in the window; 0 when none.
    pub mean_sojourn_s: f64,
    /// Number of threads that departed inside the window.
    pub departures: u64,
}

json_struct!(ThreadSpan {
    app,
    spawned_at,
    finished_at,
});
json_struct!(WindowPoint {
    end_s,
    fairness,
    mean_sojourn_s,
    departures,
});

/// Slide a `window_s`-long interval in steps of `step_s` across `[0,
/// horizon_s]` and score each position over `spans`.
///
/// Windows are anchored at their *end*: the first point is the window
/// ending at `window_s`, the last the first window ending at or beyond
/// `horizon_s`, so every departure inside the horizon lands in at least
/// one window.
///
/// # Panics
/// Panics if `window_s` or `step_s` is not positive.
pub fn windowed_fairness(
    spans: &[ThreadSpan],
    window_s: f64,
    step_s: f64,
    horizon_s: f64,
) -> Vec<WindowPoint> {
    assert!(window_s > 0.0, "window length must be > 0");
    assert!(step_s > 0.0, "window step must be > 0");
    let mut points = Vec::new();
    let mut end = window_s;
    loop {
        let start = end - window_s;
        // Group the window's departures by app. BTreeMap keeps app order
        // deterministic regardless of span order.
        let mut per_app: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        for s in spans {
            if let Some(f) = s.finished_at {
                if f >= start && f < end {
                    per_app.entry(s.app).or_default().push(f - s.spawned_at);
                }
            }
        }
        let sojourns: Vec<f64> = per_app.values().flatten().copied().collect();
        let departures = sojourns.len() as u64;
        points.push(WindowPoint {
            end_s: end,
            fairness: RuntimeMatrix::new(per_app.into_values().collect()).fairness(),
            mean_sojourn_s: if sojourns.is_empty() {
                0.0
            } else {
                mean(&sojourns)
            },
            departures,
        });
        if end >= horizon_s {
            break;
        }
        end += step_s;
    }
    points
}

/// Deterministically flatten per-machine span lists into one fleet-wide
/// set: machine order first, span order within a machine second. This is
/// the roll-up input order for fleet-level [`windowed_fairness`] — a pure
/// function of the per-machine results, so the fleet metric is as
/// thread-count-invariant as the runs that produced it. With one machine
/// the merge is the identity, which is what makes the M=1 fleet roll-up
/// equal the single-machine value exactly.
pub fn merge_spans(per_machine: &[Vec<ThreadSpan>]) -> Vec<ThreadSpan> {
    let total = per_machine.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    for spans in per_machine {
        merged.extend_from_slice(spans);
    }
    merged
}

/// `(mean, min)` fairness over a window series — the two scalars every
/// open-system table reports. An empty series is vacuously fair:
/// `(1.0, 1.0)`.
pub fn fairness_summary(windows: &[WindowPoint]) -> (f64, f64) {
    if windows.is_empty() {
        return (1.0, 1.0);
    }
    let fair: Vec<f64> = windows.iter().map(|w| w.fairness).collect();
    let min = fair.iter().copied().fold(f64::INFINITY, f64::min);
    (mean(&fair), min)
}

/// Mean sojourn time over all spans, charging unfinished threads up to
/// `wall` — the open-system headline performance number (lower is
/// better). Returns 0 for an empty span set.
pub fn mean_sojourn(spans: &[ThreadSpan], wall: f64) -> f64 {
    if spans.is_empty() {
        return 0.0;
    }
    let total: f64 = spans.iter().map(|s| s.sojourn(wall)).sum();
    total / spans.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(app: u32, spawned: f64, finished: f64) -> ThreadSpan {
        ThreadSpan {
            app,
            spawned_at: spawned,
            finished_at: Some(finished),
        }
    }

    #[test]
    fn equal_sojourns_per_app_score_perfect_fairness() {
        // Two apps, each with two threads of identical sojourn time.
        let spans = vec![
            span(0, 0.0, 2.0),
            span(0, 1.0, 3.0),
            span(1, 0.5, 1.5),
            span(1, 2.5, 3.5),
        ];
        let pts = windowed_fairness(&spans, 4.0, 4.0, 4.0);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].departures, 4);
        assert!((pts[0].fairness - 1.0).abs() < 1e-12);
        assert!((pts[0].mean_sojourn_s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn skewed_sojourns_lower_windowed_fairness() {
        let fair = vec![span(0, 0.0, 1.0), span(0, 0.0, 1.0)];
        let skew = vec![span(0, 0.0, 1.0), span(0, 0.0, 3.9)];
        let f = windowed_fairness(&fair, 4.0, 4.0, 4.0)[0].fairness;
        let s = windowed_fairness(&skew, 4.0, 4.0, 4.0)[0].fairness;
        assert!(s < f, "skewed {s} should be below fair {f}");
    }

    #[test]
    fn departures_land_in_their_window_only() {
        let spans = vec![span(0, 0.0, 0.5), span(1, 0.0, 2.5)];
        let pts = windowed_fairness(&spans, 1.0, 1.0, 3.0);
        assert_eq!(pts.len(), 3);
        assert_eq!(
            pts.iter().map(|p| p.departures).collect::<Vec<_>>(),
            vec![1, 0, 1]
        );
        // An empty window is vacuously fair and has zero sojourn.
        assert_eq!(pts[1].fairness, 1.0);
        assert_eq!(pts[1].mean_sojourn_s, 0.0);
    }

    #[test]
    fn sliding_step_overlaps_windows() {
        let spans = vec![span(0, 0.0, 1.5)];
        let pts = windowed_fairness(&spans, 2.0, 1.0, 4.0);
        // Windows [0,2) [1,3) [2,4): the departure at 1.5 is in the first
        // two.
        assert_eq!(
            pts.iter().map(|p| p.departures).collect::<Vec<_>>(),
            vec![1, 1, 0]
        );
    }

    #[test]
    fn merge_spans_keeps_machine_then_span_order_and_m1_is_identity() {
        let m0 = vec![span(0, 0.0, 1.0), span(1, 0.5, 2.0)];
        let m1 = vec![span(0, 0.2, 1.4)];
        let merged = merge_spans(&[m0.clone(), m1.clone()]);
        assert_eq!(merged, vec![m0[0], m0[1], m1[0]]);
        // One machine: the roll-up input is exactly the machine's spans,
        // so every downstream metric matches the single-machine value.
        assert_eq!(merge_spans(std::slice::from_ref(&m0)), m0);
        assert_eq!(merge_spans(&[]), Vec::<ThreadSpan>::new());
    }

    #[test]
    fn fairness_summary_reduces_mean_and_min() {
        let spans = vec![span(0, 0.0, 1.0), span(0, 0.0, 3.9)];
        let windows = windowed_fairness(&spans, 2.0, 2.0, 4.0);
        let (mean_f, min_f) = fairness_summary(&windows);
        assert!(min_f <= mean_f);
        assert!(mean_f <= 1.0);
        assert_eq!(fairness_summary(&[]), (1.0, 1.0));
    }

    #[test]
    fn mean_sojourn_charges_unfinished_to_wall() {
        let spans = vec![
            span(0, 0.0, 2.0),
            ThreadSpan {
                app: 1,
                spawned_at: 4.0,
                finished_at: None,
            },
        ];
        // Finished: 2.0; unfinished: 10 − 4 = 6.0.
        assert!((mean_sojourn(&spans, 10.0) - 4.0).abs() < 1e-12);
        assert_eq!(mean_sojourn(&[], 10.0), 0.0);
    }
}
