//! Property tests on the metric definitions.

use dike_metrics::{
    coefficient_of_variation, geometric_mean, mean, relative_improvement, speedup, std_dev,
    RuntimeMatrix, Summary, TimeSeries,
};
use dike_util::check::check;
use dike_util::Pcg32;

fn gen_vec(rng: &mut Pcg32, lo: f64, hi: f64, len_lo: usize, len_hi: usize) -> Vec<f64> {
    let len = rng.gen_range(len_lo..len_hi);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

#[test]
fn cv_is_scale_invariant_and_nonnegative() {
    check("cv_is_scale_invariant_and_nonnegative", 256, |rng| {
        let xs = gen_vec(rng, 0.01, 1e6, 2, 50);
        let k = rng.gen_range(0.01f64..100.0);

        let cv = coefficient_of_variation(&xs);
        assert!(cv >= 0.0);
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let cv2 = coefficient_of_variation(&scaled);
        assert!((cv - cv2).abs() < 1e-9 * (1.0 + cv));
    });
}

#[test]
fn std_dev_translation_invariant() {
    check("std_dev_translation_invariant", 256, |rng| {
        let xs = gen_vec(rng, -1e5, 1e5, 2, 50);
        let shift = rng.gen_range(-1e5f64..1e5);

        let a = std_dev(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let b = std_dev(&shifted);
        assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
    });
}

#[test]
fn geomean_between_min_and_max() {
    check("geomean_between_min_and_max", 256, |rng| {
        let xs = gen_vec(rng, 0.01, 1e6, 1, 50);

        let g = geometric_mean(&xs);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(0.0f64, f64::max);
        assert!(g >= min * (1.0 - 1e-12) && g <= max * (1.0 + 1e-12));
        // AM-GM.
        assert!(g <= mean(&xs) * (1.0 + 1e-9));
    });
}

#[test]
fn fairness_is_at_most_one_and_one_iff_uniform() {
    check("fairness_is_at_most_one_and_one_iff_uniform", 256, |rng| {
        let n_apps = rng.gen_range(1usize..6);
        let per_app: Vec<Vec<f64>> = (0..n_apps).map(|_| gen_vec(rng, 0.1, 1e4, 2, 10)).collect();

        let m = RuntimeMatrix::new(per_app.clone());
        let f = m.fairness();
        assert!(f <= 1.0 + 1e-12);
        // Uniform apps => fairness exactly 1.
        let uniform = RuntimeMatrix::new(per_app.iter().map(|ts| vec![3.5; ts.len()]).collect());
        assert!((uniform.fairness() - 1.0).abs() < 1e-12);
        // Aggregates relate sensibly.
        assert!(m.makespan() >= m.mean_app_runtime() - 1e-9);
        assert!(m.max_min_ratio() >= 1.0 - 1e-12);
    });
}

#[test]
fn summary_brackets_the_sample() {
    check("summary_brackets_the_sample", 256, |rng| {
        let xs = gen_vec(rng, -1e4, 1e4, 1, 100);

        let s = Summary::of(&xs);
        assert_eq!(s.n, xs.len());
        assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        for x in &xs {
            assert!(*x >= s.min && *x <= s.max);
        }
    });
}

#[test]
fn improvement_and_speedup_are_consistent() {
    check("improvement_and_speedup_are_consistent", 256, |rng| {
        let base = rng.gen_range(0.1f64..1e4);
        let v = rng.gen_range(0.1f64..1e4);

        let imp = relative_improvement(v, base);
        assert!((1.0 + imp) * base - v < 1e-6 * v);
        let sp = speedup(base, v);
        assert!((sp * v - base).abs() < 1e-6 * base);
    });
}

#[test]
fn downsampling_preserves_the_mean() {
    check("downsampling_preserves_the_mean", 256, |rng| {
        let values = gen_vec(rng, -100.0, 100.0, 1, 200);
        let max_points = rng.gen_range(1usize..50);

        let mut s = TimeSeries::new("p");
        for (i, v) in values.iter().enumerate() {
            s.push(i as f64, *v);
        }
        let d = s.downsample(max_points);
        assert!(d.len() <= max_points.max(1));
        // Bucket means average to (approximately) the global mean when
        // buckets are equal-sized; allow tolerance for the ragged tail.
        if !values.is_empty() && values.len().is_multiple_of(d.len()) {
            let orig = mean(&values);
            let ds = mean(&d.values);
            assert!((orig - ds).abs() < 1e-9 * (1.0 + orig.abs()));
        }
    });
}
