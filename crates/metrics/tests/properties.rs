//! Property tests on the metric definitions.

use dike_metrics::{
    coefficient_of_variation, geometric_mean, mean, relative_improvement, speedup, std_dev,
    RuntimeMatrix, Summary, TimeSeries,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn cv_is_scale_invariant_and_nonnegative(
        xs in prop::collection::vec(0.01f64..1e6, 2..50),
        k in 0.01f64..100.0,
    ) {
        let cv = coefficient_of_variation(&xs);
        prop_assert!(cv >= 0.0);
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let cv2 = coefficient_of_variation(&scaled);
        prop_assert!((cv - cv2).abs() < 1e-9 * (1.0 + cv));
    }

    #[test]
    fn std_dev_translation_invariant(
        xs in prop::collection::vec(-1e5f64..1e5, 2..50),
        shift in -1e5f64..1e5,
    ) {
        let a = std_dev(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let b = std_dev(&shifted);
        prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
    }

    #[test]
    fn geomean_between_min_and_max(xs in prop::collection::vec(0.01f64..1e6, 1..50)) {
        let g = geometric_mean(&xs);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(g >= min * (1.0 - 1e-12) && g <= max * (1.0 + 1e-12));
        // AM-GM.
        prop_assert!(g <= mean(&xs) * (1.0 + 1e-9));
    }

    #[test]
    fn fairness_is_at_most_one_and_one_iff_uniform(
        per_app in prop::collection::vec(
            prop::collection::vec(0.1f64..1e4, 2..10),
            1..6
        ),
    ) {
        let m = RuntimeMatrix::new(per_app.clone());
        let f = m.fairness();
        prop_assert!(f <= 1.0 + 1e-12);
        // Uniform apps => fairness exactly 1.
        let uniform = RuntimeMatrix::new(
            per_app.iter().map(|ts| vec![3.5; ts.len()]).collect(),
        );
        prop_assert!((uniform.fairness() - 1.0).abs() < 1e-12);
        // Aggregates relate sensibly.
        prop_assert!(m.makespan() >= m.mean_app_runtime() - 1e-9);
        prop_assert!(m.max_min_ratio() >= 1.0 - 1e-12);
    }

    #[test]
    fn summary_brackets_the_sample(xs in prop::collection::vec(-1e4f64..1e4, 1..100)) {
        let s = Summary::of(&xs);
        prop_assert_eq!(s.n, xs.len());
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        for x in &xs {
            prop_assert!(*x >= s.min && *x <= s.max);
        }
    }

    #[test]
    fn improvement_and_speedup_are_consistent(
        base in 0.1f64..1e4,
        v in 0.1f64..1e4,
    ) {
        let imp = relative_improvement(v, base);
        prop_assert!((1.0 + imp) * base - v < 1e-6 * v);
        let sp = speedup(base, v);
        prop_assert!((sp * v - base).abs() < 1e-6 * base);
    }

    #[test]
    fn downsampling_preserves_the_mean(
        values in prop::collection::vec(-100.0f64..100.0, 1..200),
        max_points in 1usize..50,
    ) {
        let mut s = TimeSeries::new("p");
        for (i, v) in values.iter().enumerate() {
            s.push(i as f64, *v);
        }
        let d = s.downsample(max_points);
        prop_assert!(d.len() <= max_points.max(1));
        // Bucket means average to (approximately) the global mean when
        // buckets are equal-sized; allow tolerance for the ragged tail.
        if !values.is_empty() && values.len() % d.len() == 0 {
            let orig = mean(&values);
            let ds = mean(&d.values);
            prop_assert!((orig - ds).abs() < 1e-9 * (1.0 + orig.abs()));
        }
    }
}
