//! Property tests on workload construction, placement and generation.

use dike_machine::{presets, Machine};
use dike_workloads::{paper, random_workload, GeneratorConfig, Placement, Workload, WorkloadClass};
use proptest::prelude::*;

fn arb_class() -> impl Strategy<Value = WorkloadClass> {
    prop_oneof![
        Just(WorkloadClass::Balanced),
        Just(WorkloadClass::UnbalancedCompute),
        Just(WorkloadClass::UnbalancedMemory),
    ]
}

proptest! {
    #[test]
    fn generated_workloads_match_their_class_and_spawn(
        class in arb_class(),
        seed in 0u64..500,
        threads_per_app in 1usize..8,
    ) {
        let cfg = GeneratorConfig {
            num_apps: 4,
            threads_per_app,
            with_kmeans: true,
        };
        let w = random_workload(class, cfg, seed);
        prop_assert_eq!(w.class(), class);
        prop_assert_eq!(w.num_threads(), 5 * threads_per_app);
        // Spawns cleanly on the paper machine.
        let mut machine = Machine::new(presets::paper_machine(seed));
        let spawned = w.spawn(&mut machine, Placement::Random(seed), 0.01);
        prop_assert_eq!(spawned.threads.len(), w.num_threads());
        prop_assert_eq!(machine.num_threads(), w.num_threads());
    }

    #[test]
    fn placements_are_valid_permutations(
        seed in 0u64..100,
        n_workload in 1usize..17,
        placement_sel in 0u8..3,
    ) {
        let placement = match placement_sel {
            0 => Placement::Interleaved,
            1 => Placement::AppContiguous,
            _ => Placement::Random(seed),
        };
        let w = paper::workload(n_workload);
        let order = w.placement_order(placement, 40);
        prop_assert_eq!(order.len(), 40);
        let mut ids: Vec<u32> = order.iter().map(|v| v.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), 40, "placement assigned a core twice");
        prop_assert!(ids.iter().all(|&v| v < 40));
    }

    #[test]
    fn interleaving_balances_core_types_per_app(n in 1usize..17) {
        let w = paper::workload(n);
        let order = w.placement_order(Placement::Interleaved, 40);
        // For each app, count fast (vcore < 20) vs slow placements: the
        // interleaved pattern gives every app an even 4/4 split.
        for app in 0..5usize {
            let slots = &order[app * 8..(app + 1) * 8];
            let fast = slots.iter().filter(|v| v.0 < 20).count();
            prop_assert_eq!(fast, 4, "app {} got {} fast cores", app, fast);
        }
    }

    #[test]
    fn workload_serde_round_trips(n in 1usize..17) {
        let w = paper::workload(n);
        let json = serde_json::to_string(&w).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(w, back);
    }
}
