//! Property tests on workload construction, placement and generation.

use dike_machine::{presets, Machine};
use dike_util::check::check;
use dike_workloads::{
    paper, random_workload, ArrivalConfig, ArrivalTrace, GeneratorConfig, Placement, Workload,
    WorkloadClass,
};

const CLASSES: [WorkloadClass; 3] = [
    WorkloadClass::Balanced,
    WorkloadClass::UnbalancedCompute,
    WorkloadClass::UnbalancedMemory,
];

#[test]
fn generated_workloads_match_their_class_and_spawn() {
    check(
        "generated_workloads_match_their_class_and_spawn",
        64,
        |rng| {
            let class = CLASSES[rng.gen_range(0usize..CLASSES.len())];
            let seed = rng.gen_range(0u64..500);
            let threads_per_app = rng.gen_range(1usize..8);

            let cfg = GeneratorConfig {
                num_apps: 4,
                threads_per_app,
                with_kmeans: true,
            };
            let w = random_workload(class, cfg, seed);
            assert_eq!(w.class(), class);
            assert_eq!(w.num_threads(), 5 * threads_per_app);
            // Spawns cleanly on the paper machine.
            let mut machine = Machine::new(presets::paper_machine(seed));
            let spawned = w.spawn(&mut machine, Placement::Random(seed), 0.01);
            assert_eq!(spawned.threads.len(), w.num_threads());
            assert_eq!(machine.num_threads(), w.num_threads());
        },
    );
}

#[test]
fn placements_are_valid_permutations() {
    check("placements_are_valid_permutations", 256, |rng| {
        let seed = rng.gen_range(0u64..100);
        let n_workload = rng.gen_range(1usize..17);
        let placement = match rng.gen_range(0u8..3) {
            0 => Placement::Interleaved,
            1 => Placement::AppContiguous,
            _ => Placement::Random(seed),
        };

        let w = paper::workload(n_workload);
        let order = w.placement_order(placement, 40);
        assert_eq!(order.len(), 40);
        let mut ids: Vec<u32> = order.iter().map(|v| v.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 40, "placement assigned a core twice");
        assert!(ids.iter().all(|&v| v < 40));
    });
}

#[test]
fn interleaving_balances_core_types_per_app() {
    check("interleaving_balances_core_types_per_app", 16, |rng| {
        let n = rng.gen_range(1usize..17);

        let w = paper::workload(n);
        let order = w.placement_order(Placement::Interleaved, 40);
        // For each app, count fast (vcore < 20) vs slow placements: the
        // interleaved pattern gives every app an even 4/4 split.
        for app in 0..5usize {
            let slots = &order[app * 8..(app + 1) * 8];
            let fast = slots.iter().filter(|v| v.0 < 20).count();
            assert_eq!(fast, 4, "app {} got {} fast cores", app, fast);
        }
    });
}

#[test]
fn merge_order_breaks_timestamp_ties_by_tenant_then_event() {
    // The documented tie-break contract of `ArrivalTrace::merge_order`:
    // the merged stream is sorted by `(at_ms, tenant, event)`, so
    // equal-timestamp arrivals across tenants dispatch in tenant-id
    // order and one tenant's own events keep generation order. Pin it
    // over random tenant sets with deliberately colliding timestamps
    // (a coarse inter-arrival mean quantised to the millisecond grid
    // collides often).
    check(
        "merge_order_breaks_timestamp_ties_by_tenant_then_event",
        64,
        |rng| {
            let n_tenants = rng.gen_range(2usize..6);
            let cfg = ArrivalConfig {
                mean_interarrival_ms: 3.0, // dense: many same-millisecond draws
                horizon_ms: rng.gen_range(50u64..400),
                threads_min: 1,
                threads_max: 3,
            };
            let base_seed = rng.gen_range(0u64..1_000);
            let traces: Vec<ArrivalTrace> = (0..n_tenants)
                .map(|t| {
                    ArrivalTrace::poisson(
                        format!("t{t}"),
                        &[dike_workloads::AppKind::Jacobi],
                        &cfg,
                        base_seed + t as u64,
                    )
                })
                .collect();
            let merged = ArrivalTrace::merge_order(&traces);

            // A permutation of every (tenant, event) pair, nothing dropped.
            let total: usize = traces.iter().map(|t| t.events.len()).sum();
            assert_eq!(merged.len(), total);
            let mut seen: Vec<(u32, u32)> = merged.iter().map(|m| (m.tenant, m.event)).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), total);

            // Strictly sorted by the full (at_ms, tenant, event) key: ties on
            // at_ms resolve by tenant id, ties on (at_ms, tenant) by event
            // index — there are no equal keys, so the order is total and
            // deterministic.
            let keys: Vec<(u64, u32, u32)> = merged
                .iter()
                .map(|m| (m.at_ms, m.tenant, m.event))
                .collect();
            assert!(
                keys.windows(2).all(|w| w[0] < w[1]),
                "merged stream not strictly (at_ms, tenant, event)-sorted"
            );

            // The dense grid must actually have produced cross-tenant
            // timestamp collisions, or this test pins nothing.
            let collisions = keys
                .windows(2)
                .filter(|w| w[0].0 == w[1].0 && w[0].1 != w[1].1)
                .count();
            assert!(collisions > 0, "no equal-timestamp ties drawn");

            // Byte-determinism: merging again (and merging clones) agrees.
            assert_eq!(merged, ArrivalTrace::merge_order(&traces.clone()));
        },
    );
}

#[test]
fn workload_json_round_trips() {
    check("workload_json_round_trips", 16, |rng| {
        let n = rng.gen_range(1usize..17);
        let w = paper::workload(n);
        let json = dike_util::json::to_string(&w);
        let back: Workload = dike_util::json::from_str(&json).unwrap();
        assert_eq!(w, back);
    });
}
