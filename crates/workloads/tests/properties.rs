//! Property tests on workload construction, placement and generation.

use dike_machine::{presets, Machine};
use dike_util::check::check;
use dike_workloads::{paper, random_workload, GeneratorConfig, Placement, Workload, WorkloadClass};

const CLASSES: [WorkloadClass; 3] = [
    WorkloadClass::Balanced,
    WorkloadClass::UnbalancedCompute,
    WorkloadClass::UnbalancedMemory,
];

#[test]
fn generated_workloads_match_their_class_and_spawn() {
    check(
        "generated_workloads_match_their_class_and_spawn",
        64,
        |rng| {
            let class = CLASSES[rng.gen_range(0usize..CLASSES.len())];
            let seed = rng.gen_range(0u64..500);
            let threads_per_app = rng.gen_range(1usize..8);

            let cfg = GeneratorConfig {
                num_apps: 4,
                threads_per_app,
                with_kmeans: true,
            };
            let w = random_workload(class, cfg, seed);
            assert_eq!(w.class(), class);
            assert_eq!(w.num_threads(), 5 * threads_per_app);
            // Spawns cleanly on the paper machine.
            let mut machine = Machine::new(presets::paper_machine(seed));
            let spawned = w.spawn(&mut machine, Placement::Random(seed), 0.01);
            assert_eq!(spawned.threads.len(), w.num_threads());
            assert_eq!(machine.num_threads(), w.num_threads());
        },
    );
}

#[test]
fn placements_are_valid_permutations() {
    check("placements_are_valid_permutations", 256, |rng| {
        let seed = rng.gen_range(0u64..100);
        let n_workload = rng.gen_range(1usize..17);
        let placement = match rng.gen_range(0u8..3) {
            0 => Placement::Interleaved,
            1 => Placement::AppContiguous,
            _ => Placement::Random(seed),
        };

        let w = paper::workload(n_workload);
        let order = w.placement_order(placement, 40);
        assert_eq!(order.len(), 40);
        let mut ids: Vec<u32> = order.iter().map(|v| v.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 40, "placement assigned a core twice");
        assert!(ids.iter().all(|&v| v < 40));
    });
}

#[test]
fn interleaving_balances_core_types_per_app() {
    check("interleaving_balances_core_types_per_app", 16, |rng| {
        let n = rng.gen_range(1usize..17);

        let w = paper::workload(n);
        let order = w.placement_order(Placement::Interleaved, 40);
        // For each app, count fast (vcore < 20) vs slow placements: the
        // interleaved pattern gives every app an even 4/4 split.
        for app in 0..5usize {
            let slots = &order[app * 8..(app + 1) * 8];
            let fast = slots.iter().filter(|v| v.0 < 20).count();
            assert_eq!(fast, 4, "app {} got {} fast cores", app, fast);
        }
    });
}

#[test]
fn workload_json_round_trips() {
    check("workload_json_round_trips", 16, |rng| {
        let n = rng.gen_range(1usize..17);
        let w = paper::workload(n);
        let json = dike_util::json::to_string(&w);
        let back: Workload = dike_util::json::from_str(&json).unwrap();
        assert_eq!(w, back);
    });
}
