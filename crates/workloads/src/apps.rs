//! Phase-structured models of the paper's Rodinia applications.
//!
//! The paper's workloads combine ten applications from the Rodinia OpenMP
//! suite (plus the STREAM kernel). The schedulers never see application
//! code — only per-thread counter time series — so each application is
//! modelled by the *shape* of that time series: its pipeline CPI, LLC miss
//! intensity and working set per phase, its burstiness, and (for KMEANS)
//! its barrier-synchronised communication.
//!
//! The memory/compute split below is the unique assignment consistent with
//! Table II's workload classes (B = 2M/2C, UC = 1M/3C, UM = 3M/1C):
//! **memory-intensive** — jacobi, streamcluster, needle, stream_omp;
//! **compute-intensive** — leukocyte, lavaMD, srad, hotspot, heartwall.
//! Parameters are chosen so the memory apps sit above and the compute apps
//! below the paper's 10 % LLC-miss-rate classification boundary, with the
//! qualitative behaviours the paper describes: memory-intensive startup
//! phases, steady high access rates for the M apps, and short bursts of
//! intensive memory access inside long quiet periods for the C apps
//! (Section IV-C).

use dike_machine::{AppId, BarrierId, BarrierSpec, Phase, PhaseProgram, PhaseRepeat, ThreadSpec};
use dike_util::json_enum;

/// Broad behavioural class of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppClass {
    /// Dominated by main-memory bandwidth (paper's "M").
    Memory,
    /// Dominated by the pipeline (paper's "C").
    Compute,
    /// Barrier-synchronised, communication-heavy (KMEANS).
    Communication,
}

json_enum!(AppClass { Memory, Compute, Communication } {});

/// The modelled applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Iterative stencil; steady, high memory access rate.
    Jacobi,
    /// Streaming clustering; high access rate with medium bursts.
    Streamcluster,
    /// Needleman-Wunsch dynamic programming; memory intensive, borderline
    /// miss rate (its DP wavefront alternates row sweeps).
    Needle,
    /// The STREAM kernel; the most extreme bandwidth consumer.
    StreamOmp,
    /// Leukocyte tracking; compute-bound, strongly fluctuating access.
    Leukocyte,
    /// Molecular dynamics; almost pure compute.
    LavaMd,
    /// Speckle-reducing anisotropic diffusion; compute with periodic
    /// memory-intensive frame loads.
    Srad,
    /// Thermal simulation; compute with a memory-intensive startup.
    Hotspot,
    /// Heart-wall tracking; compute-bound, bursty.
    Heartwall,
    /// K-means clustering; moderate memory use with heavy inter-thread
    /// communication (modelled as recurring group barriers).
    Kmeans,
}

json_enum!(AppKind {
    Jacobi,
    Streamcluster,
    Needle,
    StreamOmp,
    Leukocyte,
    LavaMd,
    Srad,
    Hotspot,
    Heartwall,
    Kmeans
} {});

impl AppKind {
    /// All modelled applications.
    pub const ALL: [AppKind; 10] = [
        AppKind::Jacobi,
        AppKind::Streamcluster,
        AppKind::Needle,
        AppKind::StreamOmp,
        AppKind::Leukocyte,
        AppKind::LavaMd,
        AppKind::Srad,
        AppKind::Hotspot,
        AppKind::Heartwall,
        AppKind::Kmeans,
    ];

    /// Canonical lower-case name (as printed in the paper's tables).
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Jacobi => "jacobi",
            AppKind::Streamcluster => "streamcluster",
            AppKind::Needle => "needle",
            AppKind::StreamOmp => "stream_omp",
            AppKind::Leukocyte => "leukocyte",
            AppKind::LavaMd => "lavaMD",
            AppKind::Srad => "srad",
            AppKind::Hotspot => "hotspot",
            AppKind::Heartwall => "heartwall",
            AppKind::Kmeans => "kmeans",
        }
    }

    /// Parse a canonical name back to the kind.
    pub fn from_name(name: &str) -> Option<AppKind> {
        AppKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Ground-truth behavioural class (the schedulers are *not* given this;
    /// they must classify from counters).
    pub fn class(self) -> AppClass {
        match self {
            AppKind::Jacobi | AppKind::Streamcluster | AppKind::Needle | AppKind::StreamOmp => {
                AppClass::Memory
            }
            AppKind::Leukocyte
            | AppKind::LavaMd
            | AppKind::Srad
            | AppKind::Hotspot
            | AppKind::Heartwall => AppClass::Compute,
            AppKind::Kmeans => AppClass::Communication,
        }
    }

    /// True for the paper's bold (memory-intensive) table entries.
    pub fn is_memory_intensive(self) -> bool {
        self.class() == AppClass::Memory
    }

    /// The per-thread phase program at scale 1.0.
    ///
    /// `scale` multiplies the total instruction budget (and with it the
    /// simulated runtime); phase structure is unchanged. Use small scales
    /// for fast tests, 1.0 for the paper experiments.
    pub fn program(self, scale: f64) -> PhaseProgram {
        assert!(scale > 0.0, "scale must be positive");
        let s = scale;
        match self {
            AppKind::Jacobi => PhaseProgram {
                phases: vec![
                    // Memory-intensive startup: fetch the grid.
                    Phase {
                        cpi_exec: 1.0,
                        mpki: 35.0,
                        apki: 280.0,
                        working_set_mib: 24.0,
                        instructions: 3e8,
                        burstiness: 0.05,
                    },
                    // Steady stencil sweeps.
                    Phase {
                        cpi_exec: 1.0,
                        mpki: 26.0,
                        apki: 240.0,
                        working_set_mib: 20.0,
                        instructions: 1e9,
                        burstiness: 0.08,
                    },
                ],
                repeat: PhaseRepeat::LoopFrom(1),
                total_instructions: 6e9 * s,
            },
            AppKind::Streamcluster => PhaseProgram {
                phases: vec![
                    Phase {
                        cpi_exec: 0.95,
                        mpki: 30.0,
                        apki: 260.0,
                        working_set_mib: 14.0,
                        instructions: 6e8,
                        burstiness: 0.15,
                    },
                    Phase {
                        cpi_exec: 0.95,
                        mpki: 17.0,
                        apki: 150.0,
                        working_set_mib: 10.0,
                        instructions: 4e8,
                        burstiness: 0.15,
                    },
                ],
                repeat: PhaseRepeat::LoopFrom(0),
                total_instructions: 5.5e9 * s,
            },
            AppKind::Needle => PhaseProgram {
                phases: vec![
                    Phase {
                        cpi_exec: 1.1,
                        mpki: 22.0,
                        apki: 190.0,
                        working_set_mib: 16.0,
                        instructions: 8e8,
                        burstiness: 0.10,
                    },
                    Phase {
                        cpi_exec: 1.1,
                        mpki: 18.0,
                        apki: 170.0,
                        working_set_mib: 14.0,
                        instructions: 6e8,
                        burstiness: 0.10,
                    },
                ],
                repeat: PhaseRepeat::LoopFrom(0),
                total_instructions: 7e9 * s,
            },
            AppKind::StreamOmp => PhaseProgram {
                phases: vec![Phase {
                    cpi_exec: 1.0,
                    mpki: 42.0,
                    apki: 310.0,
                    working_set_mib: 30.0,
                    instructions: 1e9,
                    burstiness: 0.03,
                }],
                repeat: PhaseRepeat::LoopFrom(0),
                total_instructions: 5e9 * s,
            },
            AppKind::Leukocyte => PhaseProgram {
                phases: vec![
                    // Frame load burst, then long compute on the frame.
                    Phase {
                        cpi_exec: 0.8,
                        mpki: 16.0,
                        apki: 320.0,
                        working_set_mib: 8.0,
                        instructions: 2e8,
                        burstiness: 0.2,
                    },
                    Phase {
                        cpi_exec: 0.55,
                        mpki: 1.2,
                        apki: 350.0,
                        working_set_mib: 2.0,
                        instructions: 5e9,
                        burstiness: 0.35,
                    },
                ],
                repeat: PhaseRepeat::LoopFrom(0),
                total_instructions: 6.5e10 * s,
            },
            AppKind::LavaMd => PhaseProgram {
                phases: vec![Phase {
                    cpi_exec: 0.5,
                    mpki: 0.8,
                    apki: 320.0,
                    working_set_mib: 1.5,
                    instructions: 2e9,
                    burstiness: 0.15,
                }],
                repeat: PhaseRepeat::LoopFrom(0),
                total_instructions: 8e10 * s,
            },
            AppKind::Srad => PhaseProgram {
                phases: vec![
                    // Periodic image load: a short memory-intensive burst…
                    Phase {
                        cpi_exec: 0.9,
                        mpki: 15.0,
                        apki: 300.0,
                        working_set_mib: 8.0,
                        instructions: 4e7,
                        burstiness: 0.2,
                    },
                    // …inside long diffusion-iteration compute.
                    Phase {
                        cpi_exec: 0.6,
                        mpki: 1.0,
                        apki: 330.0,
                        working_set_mib: 3.0,
                        instructions: 9e8,
                        burstiness: 0.3,
                    },
                ],
                repeat: PhaseRepeat::LoopFrom(0),
                total_instructions: 6e10 * s,
            },
            AppKind::Hotspot => PhaseProgram {
                phases: vec![
                    // Memory-intensive grid initialisation.
                    Phase {
                        cpi_exec: 0.9,
                        mpki: 20.0,
                        apki: 310.0,
                        working_set_mib: 10.0,
                        instructions: 2e8,
                        burstiness: 0.1,
                    },
                    Phase {
                        cpi_exec: 0.6,
                        mpki: 2.8,
                        apki: 340.0,
                        working_set_mib: 4.0,
                        instructions: 1.5e9,
                        burstiness: 0.25,
                    },
                ],
                repeat: PhaseRepeat::LoopFrom(1),
                total_instructions: 6.5e10 * s,
            },
            AppKind::Heartwall => PhaseProgram {
                phases: vec![Phase {
                    cpi_exec: 0.58,
                    mpki: 1.8,
                    apki: 330.0,
                    working_set_mib: 3.0,
                    instructions: 2.5e9,
                    burstiness: 0.4,
                }],
                repeat: PhaseRepeat::LoopFrom(0),
                total_instructions: 7e10 * s,
            },
            AppKind::Kmeans => PhaseProgram {
                phases: vec![Phase {
                    cpi_exec: 0.8,
                    mpki: 8.0,
                    apki: 300.0,
                    working_set_mib: 10.0,
                    instructions: 1e9,
                    burstiness: 0.1,
                }],
                repeat: PhaseRepeat::LoopFrom(0),
                total_instructions: 4e10 * s,
            },
        }
    }

    /// Barrier behaviour (only KMEANS synchronises).
    ///
    /// `group` distinguishes separate KMEANS instances in one machine.
    pub fn barrier(self, group: BarrierId) -> Option<BarrierSpec> {
        match self {
            AppKind::Kmeans => Some(BarrierSpec {
                group,
                // One reduction every ~20M instructions: frequent enough to
                // couple the threads tightly ("excessive inter-thread
                // communication"), coarse enough not to dominate runtime.
                interval_instructions: 2e7,
            }),
            _ => None,
        }
    }

    /// A full thread spec for one thread of this application.
    pub fn thread_spec(self, app: AppId, scale: f64, barrier_group: BarrierId) -> ThreadSpec {
        ThreadSpec {
            app,
            app_name: self.name().to_string(),
            program: self.program(scale),
            barrier: self.barrier(barrier_group),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_validate_at_all_scales() {
        for app in AppKind::ALL {
            for scale in [0.01, 0.5, 1.0, 2.0] {
                let p = app.program(scale);
                p.validate()
                    .unwrap_or_else(|e| panic!("{} @ {scale}: {e}", app.name()));
            }
        }
    }

    #[test]
    fn memory_apps_cross_the_ten_percent_boundary_compute_apps_do_not() {
        // The paper classifies a thread as memory-intensive when its LLC
        // miss rate exceeds 10%. Check the *steady-state* (weighted mean)
        // behaviour of each model.
        for app in AppKind::ALL {
            let p = app.program(1.0);
            let total: f64 = p.phases.iter().map(|ph| ph.instructions).sum();
            let misses: f64 = p
                .phases
                .iter()
                .map(|ph| ph.mpki / 1000.0 * ph.instructions)
                .sum();
            let accesses: f64 = p
                .phases
                .iter()
                .map(|ph| ph.apki / 1000.0 * ph.instructions)
                .sum();
            let miss_rate = misses / accesses;
            let _ = total;
            match app.class() {
                AppClass::Memory => assert!(
                    miss_rate > 0.10,
                    "{} should be memory-intensive, miss rate {miss_rate:.3}",
                    app.name()
                ),
                AppClass::Compute | AppClass::Communication => assert!(
                    miss_rate < 0.10,
                    "{} should be compute-intensive, miss rate {miss_rate:.3}",
                    app.name()
                ),
            }
        }
    }

    #[test]
    fn class_assignment_matches_table2_constraints() {
        use AppKind::*;
        let m: Vec<AppKind> = AppKind::ALL
            .iter()
            .copied()
            .filter(|a| a.is_memory_intensive())
            .collect();
        assert_eq!(m, vec![Jacobi, Streamcluster, Needle, StreamOmp]);
    }

    #[test]
    fn names_round_trip() {
        for app in AppKind::ALL {
            assert_eq!(AppKind::from_name(app.name()), Some(app));
        }
        assert_eq!(AppKind::from_name("nope"), None);
    }

    #[test]
    fn scale_scales_budget_not_structure() {
        let a = AppKind::Jacobi.program(1.0);
        let b = AppKind::Jacobi.program(0.1);
        assert_eq!(a.phases, b.phases);
        assert!((a.total_instructions / b.total_instructions - 10.0).abs() < 1e-9);
    }

    #[test]
    fn only_kmeans_has_barriers() {
        for app in AppKind::ALL {
            let b = app.barrier(BarrierId(0));
            assert_eq!(b.is_some(), app == AppKind::Kmeans, "{}", app.name());
        }
    }

    #[test]
    fn thread_spec_is_complete_and_valid() {
        let spec = AppKind::Kmeans.thread_spec(AppId(3), 0.5, BarrierId(7));
        assert!(spec.validate().is_ok());
        assert_eq!(spec.app, AppId(3));
        assert_eq!(spec.app_name, "kmeans");
        assert_eq!(spec.barrier.unwrap().group, BarrierId(7));
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let _ = AppKind::Jacobi.program(0.0);
    }
}
