//! Deterministic open-system arrival traces.
//!
//! A closed workload spawns every thread at time zero; an *open* system
//! receives applications mid-run. [`ArrivalTrace`] is the serializable
//! description of such a run: a list of `(time, app, nthreads)` events,
//! either hand-written or drawn from the seeded Poisson-like generator
//! ([`ArrivalTrace::poisson`]). Traces are plain data — the driver decides
//! what to do when a slot is not free — and round-trip through JSON so an
//! experiment's exact arrival schedule can be archived with its results.

use crate::apps::AppKind;
use dike_machine::{AppId, BarrierId, SimTime, ThreadSpec};
use dike_util::{json_struct, Pcg32, SliceRandom};

/// One arrival: `nthreads` threads of `app` become runnable at `at_ms`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalEvent {
    /// Arrival instant in milliseconds of machine time.
    pub at_ms: u64,
    /// Application to spawn.
    pub app: AppKind,
    /// Number of threads the application arrives with.
    pub nthreads: u32,
}

/// A deterministic schedule of mid-run arrivals.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// Trace name (reported in experiment output).
    pub name: String,
    /// Arrival events in the order they were generated. Not necessarily
    /// sorted; consumers sort by time (stably) before injecting.
    pub events: Vec<ArrivalEvent>,
}

json_struct!(ArrivalEvent {
    at_ms,
    app,
    nthreads,
});
json_struct!(ArrivalTrace { name, events });

/// One event of a multi-tenant merged stream: tenant `tenant`'s event
/// number `event` (an index into that tenant's [`ArrivalTrace::events`])
/// is due at `at_ms`. Produced by [`ArrivalTrace::merge_order`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedArrival {
    /// Arrival instant in milliseconds of machine time.
    pub at_ms: u64,
    /// Index of the owning trace in the merged set.
    pub tenant: u32,
    /// Index into the owning trace's event list.
    pub event: u32,
}

/// Shape parameters for the Poisson-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalConfig {
    /// Mean inter-arrival time in milliseconds (the offered-load knob:
    /// smaller mean = higher arrival rate).
    pub mean_interarrival_ms: f64,
    /// Events past this horizon are discarded; the run itself keeps going
    /// until the last admitted thread finishes.
    pub horizon_ms: u64,
    /// Inclusive range of threads per arriving application.
    pub threads_min: u32,
    /// See `threads_min`.
    pub threads_max: u32,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            mean_interarrival_ms: 2_000.0,
            horizon_ms: 30_000,
            threads_min: 2,
            threads_max: 4,
        }
    }
}

impl ArrivalTrace {
    /// Draw a trace with exponential inter-arrival times of the configured
    /// mean (a Poisson arrival process sampled on the millisecond grid),
    /// apps chosen uniformly from `apps`, and uniform thread counts.
    /// Deterministic in `(apps, cfg, seed)`.
    ///
    /// # Panics
    /// Panics if `apps` is empty or the config is degenerate.
    pub fn poisson(
        name: impl Into<String>,
        apps: &[AppKind],
        cfg: &ArrivalConfig,
        seed: u64,
    ) -> ArrivalTrace {
        assert!(!apps.is_empty(), "need at least one app to draw from");
        assert!(
            cfg.mean_interarrival_ms > 0.0,
            "mean inter-arrival must be > 0"
        );
        assert!(
            cfg.threads_min >= 1 && cfg.threads_min <= cfg.threads_max,
            "thread range must be non-empty and start at >= 1"
        );
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Inverse-CDF exponential sample; gen_f64 is in [0, 1), so the
            // argument to ln is in (0, 1] and the draw is finite.
            let u = rng.gen_f64();
            t += -(1.0 - u).ln() * cfg.mean_interarrival_ms;
            let at_ms = t.ceil() as u64;
            if at_ms > cfg.horizon_ms {
                break;
            }
            let app = *apps.choose(&mut rng).expect("non-empty app pool");
            let nthreads = rng.gen_range(cfg.threads_min..=cfg.threads_max);
            events.push(ArrivalEvent {
                at_ms,
                app,
                nthreads,
            });
        }
        ArrivalTrace {
            name: name.into(),
            events,
        }
    }

    /// Total number of threads across all events.
    pub fn num_threads(&self) -> usize {
        self.events.iter().map(|e| e.nthreads as usize).sum()
    }

    /// Merge several tenants' traces into one globally time-ordered event
    /// stream — the input a fleet dispatcher walks. Ties are broken by
    /// `(tenant, event)` so the order is a pure function of the traces:
    /// two tenants arriving in the same millisecond dispatch in tenant
    /// order, and a tenant's own events keep their generation order
    /// (within one trace times are already non-decreasing).
    pub fn merge_order(traces: &[ArrivalTrace]) -> Vec<MergedArrival> {
        let mut merged: Vec<MergedArrival> = traces
            .iter()
            .enumerate()
            .flat_map(|(t, trace)| {
                trace
                    .events
                    .iter()
                    .enumerate()
                    .map(move |(e, ev)| MergedArrival {
                        at_ms: ev.at_ms,
                        tenant: t as u32,
                        event: e as u32,
                    })
            })
            .collect();
        merged.sort_by_key(|m| (m.at_ms, m.tenant, m.event));
        merged
    }

    /// Expand the trace into per-thread `(arrival time, spec)` pairs, in
    /// event order. Each event becomes one application instance: a fresh
    /// dense `AppId` (the event index) and a matching barrier group, so two
    /// arrivals of the same `AppKind` stay distinct applications.
    pub fn spawn_plan(&self, scale: f64) -> Vec<(SimTime, ThreadSpec)> {
        let mut plan = Vec::with_capacity(self.num_threads());
        for (i, ev) in self.events.iter().enumerate() {
            let app_id = AppId(i as u32);
            let barrier = BarrierId(i as u32);
            for _ in 0..ev.nthreads {
                plan.push((
                    SimTime::from_ms(ev.at_ms),
                    ev.app.thread_spec(app_id, scale, barrier),
                ));
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_util::json;

    fn pool() -> Vec<AppKind> {
        vec![AppKind::Jacobi, AppKind::LavaMd, AppKind::Kmeans]
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let cfg = ArrivalConfig::default();
        let a = ArrivalTrace::poisson("t", &pool(), &cfg, 7);
        let b = ArrivalTrace::poisson("t", &pool(), &cfg, 7);
        assert_eq!(a, b);
        let c = ArrivalTrace::poisson("t", &pool(), &cfg, 8);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn poisson_respects_horizon_and_thread_range() {
        let cfg = ArrivalConfig {
            mean_interarrival_ms: 100.0,
            horizon_ms: 10_000,
            threads_min: 1,
            threads_max: 3,
        };
        let t = ArrivalTrace::poisson("t", &pool(), &cfg, 1);
        assert!(!t.events.is_empty());
        for e in &t.events {
            assert!(e.at_ms <= cfg.horizon_ms);
            assert!((1..=3).contains(&e.nthreads));
        }
        // Times are non-decreasing (inter-arrival deltas are positive).
        assert!(t.events.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn mean_interarrival_tracks_the_configured_rate() {
        let cfg = ArrivalConfig {
            mean_interarrival_ms: 200.0,
            horizon_ms: 200_000,
            threads_min: 1,
            threads_max: 1,
        };
        let t = ArrivalTrace::poisson("t", &pool(), &cfg, 3);
        // ~1000 events expected; the sample mean of an exponential with
        // mean 200 should land well within [150, 250].
        let n = t.events.len() as f64;
        let mean = t.events.last().unwrap().at_ms as f64 / n;
        assert!(n > 500.0, "only {n} events");
        assert!((150.0..250.0).contains(&mean), "sample mean {mean}");
    }

    #[test]
    fn merge_order_is_time_sorted_with_stable_tenant_ties() {
        let t0 = ArrivalTrace {
            name: "a".into(),
            events: vec![
                ArrivalEvent {
                    at_ms: 100,
                    app: AppKind::Jacobi,
                    nthreads: 1,
                },
                ArrivalEvent {
                    at_ms: 300,
                    app: AppKind::Jacobi,
                    nthreads: 1,
                },
            ],
        };
        let t1 = ArrivalTrace {
            name: "b".into(),
            events: vec![
                ArrivalEvent {
                    at_ms: 100,
                    app: AppKind::Kmeans,
                    nthreads: 2,
                },
                ArrivalEvent {
                    at_ms: 200,
                    app: AppKind::Kmeans,
                    nthreads: 2,
                },
            ],
        };
        let merged = ArrivalTrace::merge_order(&[t0.clone(), t1.clone()]);
        // Every (tenant, event) appears exactly once.
        assert_eq!(merged.len(), 4);
        // Time-ordered; the 100ms tie dispatches tenant 0 first.
        let order: Vec<(u64, u32, u32)> = merged
            .iter()
            .map(|m| (m.at_ms, m.tenant, m.event))
            .collect();
        assert_eq!(
            order,
            vec![(100, 0, 0), (100, 1, 0), (200, 1, 1), (300, 0, 1)]
        );
        // Deterministic: a second merge is identical.
        assert_eq!(merged, ArrivalTrace::merge_order(&[t0, t1]));
    }

    #[test]
    fn merge_order_of_poisson_tenants_covers_every_event_once() {
        let cfg = ArrivalConfig {
            mean_interarrival_ms: 150.0,
            horizon_ms: 5_000,
            threads_min: 1,
            threads_max: 2,
        };
        let traces: Vec<ArrivalTrace> = (0..4)
            .map(|t| ArrivalTrace::poisson(format!("t{t}"), &pool(), &cfg, t))
            .collect();
        let merged = ArrivalTrace::merge_order(&traces);
        let total: usize = traces.iter().map(|t| t.events.len()).sum();
        assert_eq!(merged.len(), total);
        let mut seen: Vec<(u32, u32)> = merged.iter().map(|m| (m.tenant, m.event)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), total, "an event was duplicated or dropped");
        assert!(merged.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        for m in &merged {
            assert_eq!(
                traces[m.tenant as usize].events[m.event as usize].at_ms,
                m.at_ms
            );
        }
    }

    #[test]
    fn trace_round_trips_through_json() {
        let t = ArrivalTrace::poisson("wl1-open", &pool(), &ArrivalConfig::default(), 42);
        let s = json::to_string(&t);
        let back: ArrivalTrace = json::from_str(&s).expect("parse");
        assert_eq!(t, back);
    }

    #[test]
    fn spawn_plan_expands_events_into_distinct_apps() {
        let trace = ArrivalTrace {
            name: "hand".into(),
            events: vec![
                ArrivalEvent {
                    at_ms: 100,
                    app: AppKind::Kmeans,
                    nthreads: 2,
                },
                ArrivalEvent {
                    at_ms: 300,
                    app: AppKind::Kmeans,
                    nthreads: 1,
                },
            ],
        };
        let plan = trace.spawn_plan(0.1);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[0].0, SimTime::from_ms(100));
        assert_eq!(plan[2].0, SimTime::from_ms(300));
        // Same kind, different arrivals: distinct app ids and barrier
        // groups, so the instances do not synchronise with each other.
        assert_eq!(plan[0].1.app, AppId(0));
        assert_eq!(plan[1].1.app, AppId(0));
        assert_eq!(plan[2].1.app, AppId(1));
        assert_ne!(
            plan[0].1.barrier.unwrap().group,
            plan[2].1.barrier.unwrap().group
        );
        for (_, spec) in &plan {
            spec.validate().expect("valid spec");
        }
    }
}
