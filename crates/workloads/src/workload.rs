//! Workloads: named multi-application mixes, their classes, and placement.

use crate::apps::{AppClass, AppKind};
use dike_machine::{AppId, BarrierId, Machine, ThreadId, VCoreId};
use dike_util::{json_enum, json_struct, Pcg32, SliceRandom};

/// The paper's workload classes (Section III-F / Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Balanced: equally many memory- and compute-intensive apps.
    Balanced,
    /// Unbalanced, compute: compute-intensive apps outnumber memory ones.
    UnbalancedCompute,
    /// Unbalanced, memory: memory-intensive apps outnumber compute ones.
    UnbalancedMemory,
}

impl WorkloadClass {
    /// Short label as used in the paper ("B", "UC", "UM").
    pub fn label(self) -> &'static str {
        match self {
            WorkloadClass::Balanced => "B",
            WorkloadClass::UnbalancedCompute => "UC",
            WorkloadClass::UnbalancedMemory => "UM",
        }
    }

    /// Classify from memory- and compute-intensive thread (or app) counts.
    pub fn from_counts(memory: usize, compute: usize) -> WorkloadClass {
        use std::cmp::Ordering::*;
        match memory.cmp(&compute) {
            Equal => WorkloadClass::Balanced,
            Less => WorkloadClass::UnbalancedCompute,
            Greater => WorkloadClass::UnbalancedMemory,
        }
    }
}

/// Initial thread-to-core placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Threads of different apps interleaved round-robin across the vcore
    /// list: thread *k* of the *a*-th app lands on vcore `k*num_apps + a`.
    /// This is what a contention-oblivious load balancer converges to when
    /// apps start together, and it maximally mixes core types within each
    /// app — the paper's unfair baseline starting point.
    Interleaved,
    /// Each app's threads on consecutive vcores (apps arrive one by one).
    AppContiguous,
    /// Uniformly random permutation from the given seed.
    Random(u64),
}

/// A named multi-application workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Name, e.g. `"WL1"`.
    pub name: String,
    /// The benchmark applications (paper: four per workload).
    pub apps: Vec<AppKind>,
    /// Background applications run alongside (paper: KMEANS in every
    /// workload, "which further increases contention").
    pub background: Vec<AppKind>,
    /// Threads per application (paper: 8).
    pub threads_per_app: usize,
}

json_enum!(WorkloadClass { Balanced, UnbalancedCompute, UnbalancedMemory } {});
json_enum!(Placement { Interleaved, AppContiguous } { Random(u64) });
json_struct!(Workload {
    name,
    apps,
    background,
    threads_per_app,
});

impl Workload {
    /// A workload with the paper's defaults: 8 threads per app and a KMEANS
    /// background instance.
    pub fn with_kmeans(name: impl Into<String>, apps: Vec<AppKind>) -> Self {
        Workload {
            name: name.into(),
            apps,
            background: vec![AppKind::Kmeans],
            threads_per_app: 8,
        }
    }

    /// A workload without background apps.
    pub fn plain(name: impl Into<String>, apps: Vec<AppKind>) -> Self {
        Workload {
            name: name.into(),
            apps,
            background: Vec::new(),
            threads_per_app: 8,
        }
    }

    /// All applications in spawn order (benchmarks, then background).
    pub fn all_apps(&self) -> Vec<AppKind> {
        let mut v = self.apps.clone();
        v.extend(self.background.iter().copied());
        v
    }

    /// Total threads this workload spawns.
    pub fn num_threads(&self) -> usize {
        self.all_apps().len() * self.threads_per_app
    }

    /// The paper's B/UC/UM class, from the benchmark apps' ground-truth
    /// memory/compute split (background apps are excluded, as in Table II).
    pub fn class(&self) -> WorkloadClass {
        let memory = self
            .apps
            .iter()
            .filter(|a| a.class() == AppClass::Memory)
            .count();
        let compute = self.apps.len() - memory;
        WorkloadClass::from_counts(memory, compute)
    }

    /// Compute the initial vcore assignment for `num_threads` threads under
    /// a placement policy. Thread order is app-major: threads
    /// `[a*threads_per_app .. (a+1)*threads_per_app)` belong to app `a`.
    pub fn placement_order(&self, placement: Placement, num_vcores: usize) -> Vec<VCoreId> {
        let n = self.num_threads();
        assert!(
            n <= num_vcores,
            "workload needs {n} vcores, machine has {num_vcores}"
        );
        let num_apps = self.all_apps().len();
        let mut slots: Vec<VCoreId> = (0..n as u32).map(VCoreId).collect();
        match placement {
            Placement::AppContiguous => {}
            Placement::Interleaved => {
                // Thread k of app a -> position k*num_apps + a.
                let mut assigned = vec![VCoreId(0); n];
                for (i, slot) in slots.iter().enumerate() {
                    let a = i / self.threads_per_app;
                    let k = i % self.threads_per_app;
                    let _ = slot;
                    assigned[i] = VCoreId((k * num_apps + a) as u32);
                }
                slots = assigned;
            }
            Placement::Random(seed) => {
                let mut rng = Pcg32::seed_from_u64(seed);
                slots.shuffle(&mut rng);
            }
        }
        slots
    }

    /// Spawn every thread of the workload into `machine`.
    ///
    /// `scale` multiplies all instruction budgets (1.0 = paper scale).
    pub fn spawn(
        &self,
        machine: &mut Machine,
        placement: Placement,
        scale: f64,
    ) -> SpawnedWorkload {
        let order = self.placement_order(placement, machine.config().topology.num_vcores());
        let mut threads = Vec::with_capacity(self.num_threads());
        let mut app_names = Vec::new();
        let mut idx = 0;
        for (a, app) in self.all_apps().into_iter().enumerate() {
            let app_id = AppId(a as u32);
            app_names.push(app.name().to_string());
            for _ in 0..self.threads_per_app {
                let spec = app.thread_spec(app_id, scale, BarrierId(a as u32));
                let vcore = order[idx];
                idx += 1;
                let tid = machine.spawn(spec, vcore);
                threads.push((tid, app_id));
            }
        }
        SpawnedWorkload {
            threads,
            app_names,
            num_benchmark_apps: self.apps.len(),
        }
    }
}

/// Handle to a workload's threads after spawning.
#[derive(Debug, Clone, PartialEq)]
pub struct SpawnedWorkload {
    /// `(thread, app)` pairs in spawn order.
    pub threads: Vec<(ThreadId, AppId)>,
    /// App names indexed by `AppId`.
    pub app_names: Vec<String>,
    /// The first `num_benchmark_apps` app ids are benchmarks; the rest are
    /// background (excluded from the fairness metric, as in the paper).
    pub num_benchmark_apps: usize,
}

impl SpawnedWorkload {
    /// Thread ids of one app.
    pub fn threads_of(&self, app: AppId) -> Vec<ThreadId> {
        self.threads
            .iter()
            .filter(|(_, a)| *a == app)
            .map(|(t, _)| *t)
            .collect()
    }

    /// Benchmark app ids (fairness is computed over these).
    pub fn benchmark_apps(&self) -> Vec<AppId> {
        (0..self.num_benchmark_apps as u32).map(AppId).collect()
    }

    /// All app ids including background.
    pub fn all_apps(&self) -> Vec<AppId> {
        (0..self.app_names.len() as u32).map(AppId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_machine::presets;

    fn wl() -> Workload {
        Workload::with_kmeans(
            "T1",
            vec![
                AppKind::Jacobi,
                AppKind::Streamcluster,
                AppKind::Leukocyte,
                AppKind::Srad,
            ],
        )
    }

    #[test]
    fn class_from_counts() {
        assert_eq!(WorkloadClass::from_counts(2, 2), WorkloadClass::Balanced);
        assert_eq!(
            WorkloadClass::from_counts(1, 3),
            WorkloadClass::UnbalancedCompute
        );
        assert_eq!(
            WorkloadClass::from_counts(3, 1),
            WorkloadClass::UnbalancedMemory
        );
        assert_eq!(WorkloadClass::Balanced.label(), "B");
        assert_eq!(WorkloadClass::UnbalancedCompute.label(), "UC");
        assert_eq!(WorkloadClass::UnbalancedMemory.label(), "UM");
    }

    #[test]
    fn workload_counts_and_class() {
        let w = wl();
        assert_eq!(w.num_threads(), 40);
        assert_eq!(w.class(), WorkloadClass::Balanced);
        assert_eq!(w.all_apps().len(), 5);
    }

    #[test]
    fn interleaved_placement_spreads_each_app_across_core_types() {
        let w = wl();
        let order = w.placement_order(Placement::Interleaved, 40);
        assert_eq!(order.len(), 40);
        // All assignments distinct.
        let mut seen: Vec<u32> = order.iter().map(|v| v.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 40);
        // App 0 (threads 0..8) should land on both halves of the machine.
        let app0: Vec<u32> = order[0..8].iter().map(|v| v.0).collect();
        assert!(app0.iter().any(|&v| v < 20), "app0 on fast: {app0:?}");
        assert!(app0.iter().any(|&v| v >= 20), "app0 on slow: {app0:?}");
    }

    #[test]
    fn contiguous_placement_keeps_apps_together() {
        let w = wl();
        let order = w.placement_order(Placement::AppContiguous, 40);
        let app0: Vec<u32> = order[0..8].iter().map(|v| v.0).collect();
        assert_eq!(app0, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn random_placement_is_seeded_permutation() {
        let w = wl();
        let a = w.placement_order(Placement::Random(1), 40);
        let b = w.placement_order(Placement::Random(1), 40);
        let c = w.placement_order(Placement::Random(2), 40);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted: Vec<u32> = a.iter().map(|v| v.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..40).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "vcores")]
    fn placement_rejects_small_machines() {
        let w = wl();
        let _ = w.placement_order(Placement::Interleaved, 8);
    }

    #[test]
    fn spawn_creates_all_threads_on_assigned_cores() {
        let w = wl();
        let mut m = Machine::new(presets::paper_machine(1));
        let spawned = w.spawn(&mut m, Placement::Interleaved, 0.01);
        assert_eq!(m.num_threads(), 40);
        assert_eq!(spawned.threads.len(), 40);
        assert_eq!(spawned.app_names.len(), 5);
        assert_eq!(spawned.benchmark_apps().len(), 4);
        assert_eq!(spawned.all_apps().len(), 5);
        // kmeans is the background app.
        assert_eq!(spawned.app_names[4], "kmeans");
        for app in spawned.all_apps() {
            assert_eq!(spawned.threads_of(app).len(), 8);
        }
    }
}
