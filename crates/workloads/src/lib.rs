//! # dike-workloads — application models and the paper's workload suite
//!
//! The paper evaluates Dike with Rodinia OpenMP benchmarks arranged into
//! sixteen four-app workloads (Table II), each accompanied by a KMEANS
//! background instance, at 8 threads per app (40 threads = the paper
//! machine's 40 virtual cores). This crate provides:
//!
//! * [`AppKind`] — phase-structured models of the ten applications, with
//!   the memory/compute-intensive split implied by Table II;
//! * [`Workload`] / [`WorkloadClass`] — multi-app mixes and the paper's
//!   B/UC/UM classification;
//! * [`paper`] — WL1..=WL16 exactly as in Table II;
//! * [`generator`] — seeded random workloads for property tests and
//!   stress benchmarks;
//! * [`Placement`] — initial thread placements (the interleaved placement
//!   models what a contention-oblivious balancer converges to).

pub mod apps;
pub mod arrival;
pub mod generator;
pub mod paper;
pub mod workload;

pub use apps::{AppClass, AppKind};
pub use arrival::{ArrivalConfig, ArrivalEvent, ArrivalTrace, MergedArrival};
pub use generator::{random_workload, GeneratorConfig};
pub use workload::{Placement, SpawnedWorkload, Workload, WorkloadClass};
