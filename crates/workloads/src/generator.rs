//! Seeded random workload generation, for property tests and stress
//! benchmarks beyond the paper's fixed sixteen mixes.

use crate::apps::{AppClass, AppKind};
use crate::workload::{Workload, WorkloadClass};
use dike_util::{Pcg32, SliceRandom};

/// Configuration for the random generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Number of benchmark apps per workload.
    pub num_apps: usize,
    /// Threads per app.
    pub threads_per_app: usize,
    /// Include the KMEANS background instance.
    pub with_kmeans: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            num_apps: 4,
            threads_per_app: 8,
            with_kmeans: true,
        }
    }
}

/// Memory- and compute-intensive app pools (KMEANS excluded: it is a
/// background app).
fn pools() -> (Vec<AppKind>, Vec<AppKind>) {
    let memory: Vec<AppKind> = AppKind::ALL
        .iter()
        .copied()
        .filter(|a| a.class() == AppClass::Memory)
        .collect();
    let compute: Vec<AppKind> = AppKind::ALL
        .iter()
        .copied()
        .filter(|a| a.class() == AppClass::Compute)
        .collect();
    (memory, compute)
}

/// Generate a random workload of the requested class.
///
/// Apps are drawn without replacement within each pool when possible and
/// with replacement otherwise.
pub fn random_workload(class: WorkloadClass, cfg: GeneratorConfig, seed: u64) -> Workload {
    assert!(cfg.num_apps >= 2, "need at least two apps");
    let mut rng = Pcg32::seed_from_u64(seed);
    let (memory_pool, compute_pool) = pools();

    // Pick how many memory-intensive apps the class requires:
    //   Balanced:           memory == compute            (num_apps even)
    //   UnbalancedCompute:  memory <  compute  => memory in [0, (n-1)/2]
    //   UnbalancedMemory:   memory >  compute  => memory in [n/2+1, n]
    let n = cfg.num_apps;
    let num_memory = match class {
        WorkloadClass::Balanced => {
            assert!(
                n.is_multiple_of(2),
                "a balanced workload needs an even app count"
            );
            n / 2
        }
        WorkloadClass::UnbalancedCompute => rng.gen_range(0..=(n - 1) / 2),
        WorkloadClass::UnbalancedMemory => rng.gen_range(n / 2 + 1..=n),
    };

    let draw = |pool: &[AppKind], n: usize, rng: &mut Pcg32| -> Vec<AppKind> {
        if n <= pool.len() {
            let mut p = pool.to_vec();
            p.shuffle(rng);
            p.truncate(n);
            p
        } else {
            (0..n)
                .map(|_| *pool.choose(rng).expect("non-empty pool"))
                .collect()
        }
    };

    let mut apps = draw(&memory_pool, num_memory, &mut rng);
    apps.extend(draw(&compute_pool, cfg.num_apps - num_memory, &mut rng));
    apps.shuffle(&mut rng);

    let name = format!("RND-{}-{seed}", class.label());
    let mut w = if cfg.with_kmeans {
        Workload::with_kmeans(name, apps)
    } else {
        Workload::plain(name, apps)
    };
    w.threads_per_app = cfg.threads_per_app;
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_class_matches_request() {
        for seed in 0..20 {
            for class in [
                WorkloadClass::Balanced,
                WorkloadClass::UnbalancedCompute,
                WorkloadClass::UnbalancedMemory,
            ] {
                let w = random_workload(class, GeneratorConfig::default(), seed);
                assert_eq!(w.class(), class, "seed {seed} class {class:?}");
                assert_eq!(w.apps.len(), 4);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_workload(WorkloadClass::Balanced, GeneratorConfig::default(), 9);
        let b = random_workload(WorkloadClass::Balanced, GeneratorConfig::default(), 9);
        assert_eq!(a, b);
        let c = random_workload(WorkloadClass::Balanced, GeneratorConfig::default(), 10);
        assert!(a.apps != c.apps || a.name != c.name);
    }

    #[test]
    fn config_controls_shape() {
        let cfg = GeneratorConfig {
            num_apps: 6,
            threads_per_app: 4,
            with_kmeans: false,
        };
        let w = random_workload(WorkloadClass::UnbalancedMemory, cfg, 3);
        assert_eq!(w.apps.len(), 6);
        assert_eq!(w.threads_per_app, 4);
        assert!(w.background.is_empty());
        assert_eq!(w.num_threads(), 24);
    }
}
