//! The paper's sixteen experimental workloads (Table II).
//!
//! Each workload is four Rodinia benchmarks (8 threads each) plus a KMEANS
//! background instance (8 threads), 40 threads total — exactly filling the
//! paper machine's 40 virtual cores. Memory-intensive members are jacobi,
//! streamcluster, needle and stream_omp (Table II's bold entries).

use crate::apps::AppKind::{self, *};
use crate::workload::Workload;
#[cfg(test)]
use crate::workload::WorkloadClass;

/// Table II composition: the four benchmark apps of WL1..=WL16 (index 0 is
/// WL1).
pub const TABLE2: [[AppKind; 4]; 16] = [
    // B: Balanced (2M / 2C)
    [Jacobi, Needle, Leukocyte, LavaMd],         // WL1
    [Jacobi, Streamcluster, Leukocyte, Srad],    // WL2
    [Streamcluster, Needle, Hotspot, LavaMd],    // WL3
    [Jacobi, Streamcluster, LavaMd, Heartwall],  // WL4
    [Streamcluster, Needle, Leukocyte, Hotspot], // WL5
    [Jacobi, Needle, Heartwall, Srad],           // WL6
    // UC: Unbalanced-Compute (1M / 3C)
    [Jacobi, LavaMd, Leukocyte, Srad],           // WL7
    [Needle, Hotspot, Leukocyte, Heartwall],     // WL8
    [Streamcluster, Heartwall, Leukocyte, Srad], // WL9
    [Jacobi, Hotspot, Leukocyte, Heartwall],     // WL10
    [Needle, LavaMd, Hotspot, Srad],             // WL11
    // UM: Unbalanced-Memory (3M / 1C)
    [Jacobi, Needle, Streamcluster, LavaMd],     // WL12
    [Jacobi, Needle, StreamOmp, Leukocyte],      // WL13
    [Streamcluster, Needle, StreamOmp, LavaMd],  // WL14
    [Jacobi, Streamcluster, StreamOmp, Hotspot], // WL15
    [Jacobi, Needle, Streamcluster, Srad],       // WL16
];

/// Workload `WLn` for `n` in `1..=16`.
///
/// # Panics
/// Panics when `n` is out of range.
pub fn workload(n: usize) -> Workload {
    assert!((1..=16).contains(&n), "workloads are WL1..=WL16, got {n}");
    Workload::with_kmeans(format!("WL{n}"), TABLE2[n - 1].to_vec())
}

/// All sixteen paper workloads in order.
pub fn all_workloads() -> Vec<Workload> {
    (1..=16).map(workload).collect()
}

/// The paper's representative per-class examples used in Figures 2/4/8.
pub mod selected {
    use super::*;

    /// A balanced workload with strong phase behaviour (Figure 8).
    pub fn wl6() -> Workload {
        workload(6)
    }

    /// An unbalanced-compute workload (Figures 4/8).
    pub fn wl11() -> Workload {
        workload(11)
    }

    /// The STREAM-heavy, migration-sensitive workload (Figure 1/6 special
    /// case).
    pub fn wl15() -> Workload {
        workload(15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppClass;

    #[test]
    fn classes_match_table2_sections() {
        for n in 1..=6 {
            assert_eq!(workload(n).class(), WorkloadClass::Balanced, "WL{n}");
        }
        for n in 7..=11 {
            assert_eq!(
                workload(n).class(),
                WorkloadClass::UnbalancedCompute,
                "WL{n}"
            );
        }
        for n in 12..=16 {
            assert_eq!(
                workload(n).class(),
                WorkloadClass::UnbalancedMemory,
                "WL{n}"
            );
        }
    }

    #[test]
    fn every_workload_fits_the_paper_machine() {
        for w in all_workloads() {
            assert_eq!(w.num_threads(), 40, "{}", w.name);
            assert_eq!(w.apps.len(), 4);
            assert_eq!(w.background, vec![AppKind::Kmeans]);
        }
    }

    #[test]
    fn memory_counts_per_class() {
        for (i, row) in TABLE2.iter().enumerate() {
            let m = row.iter().filter(|a| a.class() == AppClass::Memory).count();
            let expect = match i {
                0..=5 => 2,
                6..=10 => 1,
                _ => 3,
            };
            assert_eq!(m, expect, "WL{} memory count", i + 1);
        }
    }

    #[test]
    fn stream_only_in_um_workloads() {
        // stream_omp appears exactly in WL13, WL14, WL15 per Table II.
        let with_stream: Vec<usize> = (1..=16)
            .filter(|&n| workload(n).apps.contains(&AppKind::StreamOmp))
            .collect();
        assert_eq!(with_stream, vec![13, 14, 15]);
    }

    #[test]
    #[should_panic(expected = "WL1..=WL16")]
    fn workload_zero_panics() {
        let _ = workload(0);
    }

    #[test]
    fn selected_helpers() {
        assert_eq!(selected::wl6().name, "WL6");
        assert_eq!(selected::wl11().name, "WL11");
        assert_eq!(selected::wl15().name, "WL15");
    }
}
