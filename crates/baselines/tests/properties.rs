//! Property tests on the LFOC plan builder's invariants.

use dike_baselines::{build_plan, classify, CacheClass};
use dike_machine::{AppId, ThreadId};
use dike_util::check::check;
use dike_util::Pcg32;

/// Draw a random population the way the LFOC pass would have accumulated
/// one: arbitrary thread/app ids, every class, occupancies from zero to
/// several times the whole cache.
fn gen_population(rng: &mut Pcg32, capacity_mib: f64) -> Vec<(ThreadId, AppId, CacheClass, f64)> {
    let n = rng.gen_range(0usize..40);
    let mut pop = Vec::with_capacity(n);
    for i in 0..n {
        let class = match rng.gen_range(0u64..3) {
            0 => CacheClass::Streaming,
            1 => CacheClass::Sensitive,
            _ => CacheClass::Light,
        };
        let occ = rng.gen_range(0.0f64..capacity_mib * 3.0);
        pop.push((
            ThreadId(i as u32),
            AppId(rng.gen_range(0u64..8) as u32),
            class,
            occ,
        ));
    }
    pop
}

#[test]
fn built_plans_always_validate_against_the_llc_geometry() {
    // However extreme the population, the plan must be one the engine
    // accepts: cluster capacities plus the shared reserve never exceed
    // the way budget, every cluster has at least one way, and every
    // assignment targets a real cluster.
    check("built_plans_always_validate", 256, |rng| {
        let total_ways = rng.gen_range(2u64..64) as u32;
        let capacity_mib = rng.gen_range(1.0f64..64.0);
        let pop = gen_population(rng, capacity_mib);
        let way_mib = capacity_mib / f64::from(total_ways);

        let plan = build_plan(&pop, total_ways, capacity_mib);
        plan.validate(total_ways).unwrap_or_else(|e| {
            panic!("invalid plan {plan:?} for {total_ways} ways: {e}");
        });
        let granted: u32 = plan.cluster_ways.iter().sum();
        assert!(
            granted <= total_ways,
            "granted {granted} ways of {total_ways}"
        );
        if !plan.is_empty() {
            assert!(
                plan.shared_ways(total_ways) >= 1,
                "no shared reserve left: {plan:?}"
            );
        }
        // Every placed thread must come from the population, and only
        // streaming/sensitive threads are ever placed.
        for &(t, _) in &plan.assignments {
            let entry = pop
                .iter()
                .find(|p| p.0 == t)
                .expect("assigned unknown thread");
            assert!(
                entry.2 != CacheClass::Light,
                "light thread {t:?} was clustered"
            );
        }
        // Classification is total and pure — exercise it on the same draws.
        let _ = classify(
            rng.gen_range(0.0f64..1.0),
            rng.gen_range(0.0f64..64.0),
            way_mib,
        );
    });
}

#[test]
fn plans_are_deterministic_in_population_order_of_ids() {
    // The builder sorts by occupancy (tie: app id) internally; feeding
    // the same population must always produce byte-identical plans, and
    // assignments come out sorted by thread id — the determinism the
    // golden suite depends on.
    check("plans_are_deterministic", 128, |rng| {
        let total_ways = rng.gen_range(4u64..32) as u32;
        let capacity_mib = rng.gen_range(4.0f64..32.0);
        let pop = gen_population(rng, capacity_mib);
        let a = build_plan(&pop, total_ways, capacity_mib);
        let b = build_plan(&pop, total_ways, capacity_mib);
        assert_eq!(a, b);
        assert!(
            a.assignments.windows(2).all(|w| w[0].0 < w[1].0),
            "assignments not sorted by thread id: {a:?}"
        );
    });
}
