//! Sort-once static mapping: a one-shot contention-aware placement.
//!
//! After observing the first quantum, this policy sorts threads by LLC
//! miss rate and maps the top half onto the fastest cores — the "ideal
//! mapping" of Dike's placement rule, applied once, with no further
//! migrations. It separates the benefit of *getting the placement right
//! once* from Dike's continuous adaptation: Dike should match or beat it on
//! phase-changing workloads and never lose to it by much.

use dike_machine::SimTime;
use dike_sched_core::{Actions, Scheduler, SystemView};

/// The sort-once static mapper.
#[derive(Debug, Clone)]
pub struct SortOnce {
    quantum: SimTime,
    placed: bool,
}

impl SortOnce {
    /// A mapper observing over the default 500 ms first quantum.
    pub fn new() -> Self {
        SortOnce {
            quantum: SimTime::from_ms(500),
            placed: false,
        }
    }
}

impl Default for SortOnce {
    fn default() -> Self {
        SortOnce::new()
    }
}

impl Scheduler for SortOnce {
    fn name(&self) -> &str {
        "SortOnce"
    }

    fn initial_quantum(&self) -> SimTime {
        self.quantum
    }

    fn on_quantum(&mut self, view: &SystemView, actions: &mut Actions) {
        if self.placed {
            return;
        }
        self.placed = true;

        // Cores fastest-first; threads most-memory-intensive-first.
        let mut cores: Vec<usize> = (0..view.cores.len()).collect();
        cores.sort_by(|&a, &b| {
            view.cores[b]
                .kind
                .freq_hz
                .partial_cmp(&view.cores[a].kind.freq_hz)
                .expect("finite frequencies")
                .then(a.cmp(&b))
        });
        // Total order so corrupted (NaN) samples under fault injection
        // sort deterministically instead of panicking; identical to the
        // old partial order on healthy (finite, non-negative) rates.
        let mut threads: Vec<usize> = (0..view.threads.len()).collect();
        threads.sort_by(|&a, &b| {
            view.threads[b]
                .rates
                .llc_miss_rate
                .total_cmp(&view.threads[a].rates.llc_miss_rate)
                .then(view.threads[a].id.cmp(&view.threads[b].id))
        });
        // Assign thread k to core k of the sorted core list. Only emit
        // migrations for threads that actually move.
        for (k, &t) in threads.iter().enumerate() {
            let target = view.cores[cores[k]].id;
            if view.threads[t].vcore != target {
                actions.migrate(view.threads[t].id, target);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_machine::{presets, Machine, SimTime, VCoreId};
    use dike_sched_core::run;
    use dike_workloads::{AppKind, Placement, Workload};

    #[test]
    fn sort_once_places_memory_threads_on_fast_cores_then_stops() {
        let mut machine = Machine::new(presets::small_machine(1));
        let mut w = Workload::plain("t", vec![AppKind::Jacobi, AppKind::Srad]);
        w.threads_per_app = 4;
        let spawned = w.spawn(&mut machine, Placement::Interleaved, 0.2);
        let mut sched = SortOnce::new();
        let r = run(&mut machine, &mut sched, SimTime::from_secs_f64(600.0));
        assert!(r.completed);
        // All migrations happened in the first decision; at most one per
        // thread.
        assert!(r.migrations <= 8, "migrations {}", r.migrations);
        // After placement, jacobi (memory) threads sat on fast cores
        // (vcores 0..4 on the small machine). Check final cores via the
        // machine's event log: the last migration target of each jacobi
        // thread must be a fast vcore.
        let jacobi: Vec<_> = spawned.threads_of(dike_machine::AppId(0));
        for t in jacobi {
            let final_core = machine.vcore_of(t);
            assert!(
                final_core < VCoreId(4),
                "jacobi thread {t} ended on {final_core}"
            );
        }
    }
}
