//! Distributed Intensity Online (DIO), the state-of-the-art comparison
//! point [Zhuravlev et al., ASPLOS 2010].
//!
//! As characterised by the Dike paper: "the scheduler measures last level
//! cache miss rates at runtime, sorts them from highest to lowest, and then
//! pairs threads by choosing one from top of the list (highest miss rate)
//! and one from bottom of the list (lowest miss rate) and swaps them" —
//! every quantum, unconditionally, "ignoring the overhead of thread
//! migrations". DIO was designed for homogeneous machines: it considers
//! neither core types nor migration cost, so about half its swaps exchange
//! two same-type cores (pure cost, no placement benefit) — exactly the
//! needless migrations Dike's predictor prevents.
//!
//! The number of extreme pairs swapped per quantum is configurable;
//! the default of 4 pairs (8 threads) matches both Dike's default
//! `swapSize` (an overhead-matched comparison) and the swap volume of the
//! paper's Table III (DIO ≈ 2000 swaps over runs of ~500 quanta).

use dike_machine::SimTime;
use dike_sched_core::{Actions, Scheduler, SystemView};

/// The DIO scheduler.
#[derive(Debug, Clone)]
pub struct Dio {
    quantum: SimTime,
    pairs_per_quantum: usize,
    swaps: u64,
    /// Reusable miss-rate ordering buffer (no per-quantum allocation).
    order: Vec<usize>,
}

impl Dio {
    /// DIO with its standard 500 ms quantum and 4 pairs per quantum.
    pub fn new() -> Self {
        Dio {
            quantum: SimTime::from_ms(500),
            pairs_per_quantum: 4,
            swaps: 0,
            order: Vec::new(),
        }
    }

    /// Override the quantum.
    pub fn with_quantum(quantum: SimTime) -> Self {
        Dio {
            quantum,
            ..Dio::new()
        }
    }

    /// Override the number of extreme pairs swapped per quantum (pass
    /// `usize::MAX` for the swap-everything variant).
    pub fn with_pairs(mut self, pairs: usize) -> Self {
        self.pairs_per_quantum = pairs;
        self
    }

    /// Swaps performed so far.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }
}

impl Default for Dio {
    fn default() -> Self {
        Dio::new()
    }
}

impl Scheduler for Dio {
    fn name(&self) -> &str {
        "DIO"
    }

    fn initial_quantum(&self) -> SimTime {
        self.quantum
    }

    fn on_quantum(&mut self, view: &SystemView, actions: &mut Actions) {
        let order = &mut self.order;
        order.clear();
        order.extend(0..view.threads.len());
        // Sort by LLC miss rate, highest first (ties by id for determinism).
        // Total order so corrupted (NaN) samples under fault injection
        // sort deterministically instead of panicking; identical to the
        // old partial order on healthy (finite, non-negative) rates — and
        // the id tiebreak makes the unstable sort result-identical to a
        // stable one.
        order.sort_unstable_by(|&a, &b| {
            view.threads[b]
                .rates
                .llc_miss_rate
                .total_cmp(&view.threads[a].rates.llc_miss_rate)
                .then(view.threads[a].id.cmp(&view.threads[b].id))
        });
        let n = order.len();
        for k in 0..(n / 2).min(self.pairs_per_quantum) {
            let hi = &view.threads[order[k]];
            let lo = &view.threads[order[n - 1 - k]];
            if hi.vcore != lo.vcore {
                actions.swap((hi.id, hi.vcore), (lo.id, lo.vcore));
                self.swaps += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_machine::{presets, Machine, SimTime};
    use dike_sched_core::run;
    use dike_workloads::{AppKind, Placement, Workload};

    #[test]
    fn dio_swaps_every_quantum() {
        let mut machine = Machine::new(presets::small_machine(1));
        let mut w = Workload::plain("t", vec![AppKind::Jacobi, AppKind::Srad]);
        w.threads_per_app = 4;
        w.spawn(&mut machine, Placement::Interleaved, 0.1);
        let mut dio = Dio::new();
        let r = run(&mut machine, &mut dio, SimTime::from_secs_f64(600.0));
        assert!(r.completed);
        // Roughly one swap per thread pair per quantum: with 8 threads and
        // q quanta, about 4q swaps (fewer in final quanta as threads finish).
        assert!(
            r.swaps as f64 > 2.0 * r.quanta as f64,
            "expected aggressive swapping: {} swaps over {} quanta",
            r.swaps,
            r.quanta
        );
        assert_eq!(dio.swaps(), r.swaps);
    }

    #[test]
    fn dio_pairs_extreme_miss_rates() {
        use dike_counters::RateSample;
        use dike_machine::topology::CoreKind;
        use dike_machine::{AppId, DomainId, ThreadCounters, ThreadId, VCoreId};
        use dike_sched_core::{CoreObservation, ThreadObservation};

        let threads: Vec<ThreadObservation> = [0.30, 0.01, 0.20, 0.05]
            .iter()
            .enumerate()
            .map(|(i, &mr)| ThreadObservation {
                id: ThreadId(i as u32),
                app: AppId(0),
                vcore: VCoreId(i as u32),
                rates: RateSample {
                    llc_miss_rate: mr,
                    ..RateSample::default()
                },
                cumulative: ThreadCounters::default(),
                migrated_last_quantum: false,
                llc_occupancy_mib: 0.0,
            })
            .collect();
        let cores = (0..4)
            .map(|c| CoreObservation {
                id: VCoreId(c),
                kind: CoreKind::FAST,
                domain: DomainId(0),
                bandwidth: 0.0,
            })
            .collect();
        let view = SystemView {
            now: SimTime::from_ms(500),
            quantum: SimTime::from_ms(500),
            threads,
            cores,
            ..SystemView::default()
        };
        let mut dio = Dio::new();
        let mut actions = Actions::default();
        dio.on_quantum(&view, &mut actions);
        // Highest (t0, 0.30) swaps with lowest (t1, 0.01); second highest
        // (t2) with second lowest (t3).
        assert_eq!(actions.migrations.len(), 4);
        assert_eq!(actions.migrations[0], (ThreadId(0), VCoreId(1)));
        assert_eq!(actions.migrations[1], (ThreadId(1), VCoreId(0)));
        assert_eq!(actions.migrations[2], (ThreadId(2), VCoreId(3)));
        assert_eq!(actions.migrations[3], (ThreadId(3), VCoreId(2)));
        assert_eq!(dio.swaps(), 2);
    }
}
