//! A random-swap scheduler: the sanity floor.
//!
//! Swaps `pairs_per_quantum` uniformly random disjoint thread pairs each
//! quantum. Any contention-aware policy must beat this; the integration
//! tests use it to confirm the evaluation pipeline can tell good policies
//! from noise.

use dike_machine::SimTime;
use dike_sched_core::{Actions, Scheduler, SystemView};
use dike_util::{Pcg32, SliceRandom};

/// The random scheduler.
#[derive(Debug)]
pub struct RandomScheduler {
    quantum: SimTime,
    pairs_per_quantum: usize,
    rng: Pcg32,
}

impl RandomScheduler {
    /// A random scheduler with the given seed, default quantum (500 ms) and
    /// 4 pairs per quantum (matching Dike's default swapSize of 8 threads).
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            quantum: SimTime::from_ms(500),
            pairs_per_quantum: 4,
            rng: Pcg32::seed_from_u64(seed),
        }
    }

    /// Set the number of pairs swapped per quantum.
    pub fn with_pairs(mut self, pairs: usize) -> Self {
        self.pairs_per_quantum = pairs;
        self
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &str {
        "Random"
    }

    fn initial_quantum(&self) -> SimTime {
        self.quantum
    }

    fn on_quantum(&mut self, view: &SystemView, actions: &mut Actions) {
        let mut idx: Vec<usize> = (0..view.threads.len()).collect();
        idx.shuffle(&mut self.rng);
        for pair in idx.chunks_exact(2).take(self.pairs_per_quantum) {
            let a = &view.threads[pair[0]];
            let b = &view.threads[pair[1]];
            if a.vcore != b.vcore {
                actions.swap((a.id, a.vcore), (b.id, b.vcore));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_machine::{presets, Machine, SimTime};
    use dike_sched_core::run;
    use dike_workloads::{AppKind, Placement, Workload};

    #[test]
    fn random_scheduler_migrates_and_completes() {
        let mut machine = Machine::new(presets::small_machine(1));
        let mut w = Workload::plain("t", vec![AppKind::Jacobi, AppKind::Srad]);
        w.threads_per_app = 4;
        w.spawn(&mut machine, Placement::Interleaved, 0.05);
        let mut sched = RandomScheduler::new(7).with_pairs(2);
        let r = run(&mut machine, &mut sched, SimTime::from_secs_f64(600.0));
        assert!(r.completed);
        assert!(r.swaps > 0);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let run_once = |seed: u64| {
            let mut machine = Machine::new(presets::small_machine(1));
            let mut w = Workload::plain("t", vec![AppKind::Jacobi, AppKind::Srad]);
            w.threads_per_app = 4;
            w.spawn(&mut machine, Placement::Interleaved, 0.05);
            let mut sched = RandomScheduler::new(seed);
            let r = run(&mut machine, &mut sched, SimTime::from_secs_f64(600.0));
            (r.swaps, r.wall)
        };
        assert_eq!(run_once(3), run_once(3));
    }
}
