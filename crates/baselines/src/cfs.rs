//! The Linux-CFS stand-in baseline.
//!
//! The paper's baseline is Linux's Completely Fair Scheduler, which "tries
//! to equalize allocated CPU time" and is contention-oblivious. With 40
//! runnable threads pinned one-per-virtual-core (the paper's setup), CFS's
//! load balancer keeps the initial spread and performs no contention-aware
//! migration — so the faithful simulation-level model is a scheduler that
//! never acts, leaving threads where the initial (interleaved) placement
//! put them. See `Placement::Interleaved` in `dike-workloads` for why that
//! placement models a contention-oblivious balancer's steady state.

use dike_machine::SimTime;
use dike_sched_core::{Actions, Scheduler, SystemView};

/// The contention-oblivious baseline ("Linux" in the paper's figures).
#[derive(Debug, Clone)]
pub struct StaticSpread {
    quantum: SimTime,
}

impl StaticSpread {
    /// A baseline with the default 500 ms observation quantum (the quantum
    /// only affects how often counters are sampled, never behaviour).
    pub fn new() -> Self {
        StaticSpread {
            quantum: SimTime::from_ms(500),
        }
    }

    /// Override the observation quantum.
    pub fn with_quantum(quantum: SimTime) -> Self {
        StaticSpread { quantum }
    }
}

impl Default for StaticSpread {
    fn default() -> Self {
        StaticSpread::new()
    }
}

impl Scheduler for StaticSpread {
    fn name(&self) -> &str {
        "Linux-CFS"
    }

    fn initial_quantum(&self) -> SimTime {
        self.quantum
    }

    fn on_quantum(&mut self, _view: &SystemView, _actions: &mut Actions) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_machine::{presets, Machine, SimTime};
    use dike_sched_core::run;
    use dike_workloads::{AppKind, Placement, Workload};

    #[test]
    fn cfs_never_migrates() {
        let mut machine = Machine::new(presets::small_machine(1));
        let mut w = Workload::plain("t", vec![AppKind::Jacobi, AppKind::Srad]);
        w.threads_per_app = 4;
        w.spawn(&mut machine, Placement::Interleaved, 0.05);
        let mut cfs = StaticSpread::new();
        let r = run(&mut machine, &mut cfs, SimTime::from_secs_f64(300.0));
        assert!(r.completed);
        assert_eq!(r.migrations, 0);
        assert_eq!(r.scheduler, "Linux-CFS");
    }

    #[test]
    fn quantum_is_configurable() {
        assert_eq!(
            StaticSpread::with_quantum(SimTime::from_ms(100)).initial_quantum(),
            SimTime::from_ms(100)
        );
        assert_eq!(
            StaticSpread::default().initial_quantum(),
            SimTime::from_ms(500)
        );
    }
}
