//! # dike-baselines — the schedulers Dike is compared against
//!
//! * [`StaticSpread`] — the Linux-CFS stand-in: contention-oblivious, never
//!   migrates (the paper's zero line in Figure 6).
//! * [`Dio`] — Distributed Intensity Online [Zhuravlev et al. 2010]: sorts
//!   by LLC miss rate, pairs extremes, swaps all pairs every quantum with
//!   no prediction and no overhead awareness.
//! * [`RandomScheduler`] — random swaps, the sanity floor.
//! * [`SortOnce`] — a one-shot contention-aware static placement,
//!   separating "get the mapping right once" from Dike's continuous
//!   adaptation.
//! * [`Lfoc`] — an LFOC-like fairness-oriented cache clustering policy:
//!   partitions the LLC into way clusters from a streaming/sensitive/light
//!   classification and never migrates — the second-actuator baseline.

pub mod cfs;
pub mod dio;
pub mod lfoc;
pub mod random_sched;
pub mod sort_once;

pub use cfs::StaticSpread;
pub use dio::Dio;
pub use lfoc::{build_plan, classify, CacheClass, Lfoc};
pub use random_sched::RandomScheduler;
pub use sort_once::SortOnce;
