//! LFOC-like fairness-oriented cache clustering [Garcia-Garcia et al.,
//! ICPP 2019], the cache-partitioning comparison point.
//!
//! LFOC classifies threads from lightweight counters into *streaming*
//! (high miss rate, no reuse — the cache cannot help them), *sensitive*
//! (working sets that benefit from protected capacity) and *light* (barely
//! touch the LLC), then programs CAT-style way clusters: streaming threads
//! are jailed together into a small thrash cluster, each sensitive app
//! gets a cluster sized to its measured occupancy, and light threads share
//! the leftover ways. It never migrates — partitioning is its only
//! actuator, which is exactly what makes it a clean contrast to Dike's
//! migration-only actuation (and the substrate both combine in the
//! Dike+LFOC hybrid).
//!
//! Classification and cluster sizing are pure functions ([`classify`],
//! [`build_plan`]) so the hybrid reuses them verbatim and property tests
//! can drive them with arbitrary inputs.

use dike_machine::{AppId, PartitionPlan, SimTime, ThreadId};
use dike_sched_core::{Actions, PartitionPlanner, Scheduler, SystemView};

/// Miss-per-access ratio at or above which a thread is *streaming* (the
/// Dike paper's own "more than 10 % ⇒ memory intensive" threshold).
pub const STREAMING_MISS_RATE: f64 = 0.10;

/// Miss-per-access ratio below which a thread is *light* on the LLC.
pub const LIGHT_MISS_RATE: f64 = 0.02;

/// How a thread uses the shared LLC, as inferred from counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheClass {
    /// High miss rate: the footprint streams through without reuse, so
    /// granting it capacity is wasted — jail it.
    Streaming,
    /// Meaningful occupancy at a healthy hit rate: protect its share.
    Sensitive,
    /// Barely uses the cache: safe to leave in the shared pool.
    Light,
}

/// Classify one thread from its observed miss rate and LLC occupancy.
/// `way_mib` is the capacity of a single way — a thread occupying less
/// than half a way cannot benefit from an own cluster.
pub fn classify(llc_miss_rate: f64, occupancy_mib: f64, way_mib: f64) -> CacheClass {
    if llc_miss_rate >= STREAMING_MISS_RATE {
        CacheClass::Streaming
    } else if llc_miss_rate < LIGHT_MISS_RATE || occupancy_mib < 0.5 * way_mib {
        CacheClass::Light
    } else {
        CacheClass::Sensitive
    }
}

/// Build the LFOC way-partition for the classified population
/// (`(thread, app, class, occupancy_mib)`, any order). Streaming threads
/// share one small jail cluster; each sensitive app gets a cluster sized
/// to its summed occupancy (largest first, while the way budget lasts);
/// light threads — and sensitive apps the budget could not cover — stay
/// unassigned in the reserved shared pool. The result is always valid for
/// `total_ways` (see `plan_is_always_valid` in the tests, and the
/// workspace property test driving this with random populations).
pub fn build_plan(
    population: &[(ThreadId, AppId, CacheClass, f64)],
    total_ways: u32,
    capacity_mib: f64,
) -> PartitionPlan {
    let streaming: Vec<ThreadId> = population
        .iter()
        .filter(|p| p.2 == CacheClass::Streaming)
        .map(|p| p.0)
        .collect();
    // (app, summed occupancy) over sensitive threads, largest first so the
    // budget protects the biggest working sets; app id breaks ties for
    // determinism.
    let mut apps: Vec<(AppId, f64)> = Vec::new();
    for p in population.iter().filter(|p| p.2 == CacheClass::Sensitive) {
        match apps.iter_mut().find(|(a, _)| *a == p.1) {
            Some((_, occ)) => *occ += p.3,
            None => apps.push((p.1, p.3)),
        }
    }
    apps.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));

    if streaming.is_empty() && apps.is_empty() {
        return PartitionPlan::new();
    }

    // A jail and a shared reserve of 1/8th of the cache each (at least one
    // way): the reserve keeps light threads out of a zero-capacity slot.
    let small = (total_ways / 8).max(1);
    let way_mib = capacity_mib / f64::from(total_ways.max(1));
    let mut plan = PartitionPlan::new();
    let mut budget = total_ways.saturating_sub(small);
    let mut jail = None;
    if !streaming.is_empty() && budget > small {
        budget -= small;
        jail = Some(plan.cluster_ways.len() as u32);
        plan.cluster_ways.push(small);
    }
    let mut placed: Vec<(ThreadId, u32)> = Vec::new();
    for t in streaming {
        if let Some(c) = jail {
            placed.push((t, c));
        }
    }
    for (app, occ) in apps {
        let want = ((occ / way_mib).ceil() as u32).max(1);
        let ways = want.min(budget);
        if ways == 0 {
            break; // budget exhausted: remaining apps share the pool
        }
        budget -= ways;
        let c = plan.cluster_ways.len() as u32;
        plan.cluster_ways.push(ways);
        // Only the app's *sensitive* threads: a mixed app's streaming
        // threads are already jailed and its light threads belong in the
        // shared pool — a thread must never appear in two clusters.
        for p in population
            .iter()
            .filter(|p| p.1 == app && p.2 == CacheClass::Sensitive)
        {
            placed.push((p.0, c));
        }
    }
    placed.sort_unstable_by_key(|&(t, _)| t);
    plan.assignments = placed;
    plan
}

/// The LFOC scheduler: reclassifies every quantum, re-partitions whenever
/// the desired clustering changes, and never migrates.
#[derive(Debug, Clone)]
pub struct Lfoc {
    quantum: SimTime,
    total_ways: u32,
    capacity_mib: f64,
    planner: PartitionPlanner,
    /// Last plan we decided on; `None` when the machine's state is
    /// unknown (startup, or after an abandoned actuation).
    current: Option<PartitionPlan>,
    /// Sticky per-thread classification `(thread, app, class, occupancy)`,
    /// ascending by thread id. Updated only from plausible samples, so
    /// telemetry dropout or corruption does not churn the clustering.
    population: Vec<(ThreadId, AppId, CacheClass, f64)>,
    replans: u64,
}

impl Lfoc {
    /// LFOC for a cache of `total_ways` ways and `capacity_mib` MiB —
    /// public hardware knowledge, like the core topology.
    pub fn new(total_ways: u32, capacity_mib: f64) -> Self {
        Lfoc {
            quantum: SimTime::from_ms(500),
            total_ways,
            capacity_mib,
            planner: PartitionPlanner::new(3, 8),
            current: None,
            population: Vec::new(),
            replans: 0,
        }
    }

    /// LFOC configured from the machine's LLC description.
    pub fn for_llc(llc: &dike_machine::LlcConfig) -> Self {
        Lfoc::new(llc.ways, llc.capacity_mib)
    }

    /// Partition plans issued so far (excluding planner retries).
    pub fn replans(&self) -> u64 {
        self.replans
    }

    fn way_mib(&self) -> f64 {
        self.capacity_mib / f64::from(self.total_ways.max(1))
    }
}

impl Scheduler for Lfoc {
    fn name(&self) -> &str {
        "LFOC"
    }

    fn initial_quantum(&self) -> SimTime {
        self.quantum
    }

    fn on_quantum(&mut self, view: &SystemView, actions: &mut Actions) {
        let now_q = view.quantum_index;
        for &d in &view.departed {
            if let Ok(i) = self.population.binary_search_by_key(&d, |p| p.0) {
                self.population.remove(i);
            }
        }
        let way = self.way_mib();
        for t in &view.threads {
            if !t.rates.is_plausible() || !t.llc_occupancy_mib.is_finite() {
                continue; // keep the last good classification
            }
            let class = classify(t.rates.llc_miss_rate, t.llc_occupancy_mib, way);
            let entry = (t.id, t.app, class, t.llc_occupancy_mib);
            match self.population.binary_search_by_key(&t.id, |p| p.0) {
                Ok(i) => self.population[i] = entry,
                Err(i) => self.population.insert(i, entry),
            }
        }

        let report = self.planner.verify(view, actions, now_q);
        if report.abandoned > 0 {
            // The machine's partition state is unknown now; re-decide from
            // scratch once the fallback window ends.
            self.current = None;
        }
        if self.planner.in_fallback(now_q) {
            return;
        }
        let desired = build_plan(&self.population, self.total_ways, self.capacity_mib);
        if self.current.as_ref() != Some(&desired) {
            self.planner
                .track(desired.clone(), view.partition_epoch, now_q);
            actions.partition = Some(desired.clone());
            self.current = Some(desired);
            self.replans += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_machine::{presets, Machine, Phase, PhaseProgram, ThreadSpec, VCoreId};
    use dike_sched_core::run;

    #[test]
    fn classification_thresholds() {
        let way = 0.3125; // 5 MiB / 16 ways
        assert_eq!(classify(0.15, 5.0, way), CacheClass::Streaming);
        assert_eq!(classify(0.10, 0.1, way), CacheClass::Streaming);
        assert_eq!(classify(0.05, 2.0, way), CacheClass::Sensitive);
        assert_eq!(classify(0.005, 2.0, way), CacheClass::Light);
        assert_eq!(classify(0.05, 0.1, way), CacheClass::Light);
    }

    fn member(t: u32, app: u32, class: CacheClass, occ: f64) -> (ThreadId, AppId, CacheClass, f64) {
        (ThreadId(t), AppId(app), class, occ)
    }

    #[test]
    fn plan_jails_streamers_and_sizes_sensitive_clusters() {
        let pop = vec![
            member(0, 0, CacheClass::Streaming, 5.0),
            member(1, 0, CacheClass::Streaming, 5.0),
            member(2, 1, CacheClass::Sensitive, 2.0),
            member(3, 1, CacheClass::Sensitive, 2.0),
            member(4, 2, CacheClass::Light, 0.1),
        ];
        let plan = build_plan(&pop, 16, 25.0);
        plan.validate(16).expect("plan is valid");
        // Jail first (2 of 16 ways), then app 1 sized to 4 MiB of
        // occupancy at 1.5625 MiB per way = 3 ways.
        assert_eq!(plan.cluster_ways, vec![2, 3]);
        assert_eq!(
            plan.assignments,
            vec![
                (ThreadId(0), 0),
                (ThreadId(1), 0),
                (ThreadId(2), 1),
                (ThreadId(3), 1),
            ]
        );
        // The light thread shares the unreserved remainder.
        assert_eq!(plan.shared_ways(16), 11);
    }

    #[test]
    fn all_light_population_partitions_nothing() {
        let pop = vec![
            member(0, 0, CacheClass::Light, 0.1),
            member(1, 1, CacheClass::Light, 0.2),
        ];
        assert!(build_plan(&pop, 16, 25.0).is_empty());
        assert!(build_plan(&[], 16, 25.0).is_empty());
    }

    #[test]
    fn plan_is_always_valid_when_occupancy_exceeds_the_cache() {
        // Three sensitive apps each claiming the whole cache must clamp to
        // the way budget, largest first, instead of over-committing.
        let pop = vec![
            member(0, 0, CacheClass::Sensitive, 30.0),
            member(1, 1, CacheClass::Sensitive, 20.0),
            member(2, 2, CacheClass::Sensitive, 10.0),
            member(3, 3, CacheClass::Streaming, 25.0),
        ];
        let plan = build_plan(&pop, 16, 25.0);
        plan.validate(16).expect("plan is valid");
        let granted: u32 = plan.cluster_ways.iter().sum();
        assert!(granted <= 14, "shared reserve kept: {granted} ways");
    }

    #[test]
    fn sustained_actuation_faults_abandon_into_fallback_then_replan() {
        // Every actuation silently fails: the PartitionPlanner's retry
        // budget (3) must exhaust, the plan is abandoned, LFOC forgets
        // its `current` and goes quiet for the fallback window (8
        // quanta), then re-decides from scratch — and the cycle repeats
        // for as long as the fault persists. The machine must end the
        // run unpartitioned with the workload still completing on the
        // fault-free substrate.
        let mut cfg = presets::small_machine(1);
        cfg.faults = dike_machine::FaultConfig {
            migration_fail_rate: 1.0,
            seed: 3,
            ..Default::default()
        };
        let (ways, cap) = (cfg.llc.ways, cfg.llc.capacity_mib);
        let mut m = Machine::new(cfg);
        // Long-running threads: the abandon→fallback cycle needs ~23
        // quanta (retry backoff 1+2+4+8, then 8 fallback quanta) at the
        // 500 ms LFOC quantum, so the population must survive ≳ 12 s.
        m.spawn(
            ThreadSpec {
                app: dike_machine::AppId(0),
                app_name: "thrash".into(),
                program: PhaseProgram::single(Phase::steady(1.0, 60.0, 20.0, 1e6), 4e10),
                barrier: None,
            },
            VCoreId(0),
        );
        for i in 1..4u32 {
            m.spawn(
                ThreadSpec {
                    app: dike_machine::AppId(i),
                    app_name: format!("light{i}"),
                    program: PhaseProgram::single(Phase::steady(0.8, 1.0, 0.5, 1e7), 1e10),
                    barrier: None,
                },
                VCoreId(i + 1),
            );
        }
        let mut s = Lfoc::new(ways, cap);
        let r = run(&mut m, &mut s, SimTime::from_secs_f64(120.0));
        assert!(r.completed, "the substrate still runs without partitions");
        assert_eq!(r.migrations, 0, "LFOC only partitions");
        assert_eq!(r.partitions, 0, "every actuation was swallowed");
        assert!(!m.partition_active());
        assert_eq!(m.partition_epoch(), 0);
        // Abandon → fallback → fresh decision: the run is long enough
        // (240 quanta vs a ~12-quantum abandon/fallback cycle) that LFOC
        // must have re-planned after at least one abandonment.
        assert!(
            s.replans() >= 2,
            "expected a replan after fallback, got {}",
            s.replans()
        );
    }

    #[test]
    fn lfoc_partitions_the_machine_and_never_migrates() {
        let cfg = presets::small_machine(1);
        let (ways, cap) = (cfg.llc.ways, cfg.llc.capacity_mib);
        let mut m = Machine::new(cfg);
        // A thrasher (streams through 20 MiB at a high miss rate) beside
        // three light compute threads.
        m.spawn(
            ThreadSpec {
                app: dike_machine::AppId(0),
                app_name: "thrash".into(),
                program: PhaseProgram::single(Phase::steady(1.0, 60.0, 20.0, 1e6), 2e9),
                barrier: None,
            },
            VCoreId(0),
        );
        for i in 1..4u32 {
            m.spawn(
                ThreadSpec {
                    app: dike_machine::AppId(i),
                    app_name: format!("light{i}"),
                    program: PhaseProgram::single(Phase::steady(0.8, 1.0, 0.5, 1e7), 5e8),
                    barrier: None,
                },
                VCoreId(i + 1),
            );
        }
        let mut s = Lfoc::new(ways, cap);
        let r = run(&mut m, &mut s, SimTime::from_secs_f64(120.0));
        assert!(r.completed);
        assert_eq!(r.migrations, 0, "LFOC only partitions");
        assert!(r.partitions >= 1, "no partition was ever applied");
        assert!(s.replans() >= 1);
        assert!(m.partition_active());
        // The thrasher ended up jailed in cluster 0.
        let plan = m.partition();
        assert_eq!(plan.cluster_ways[0], 2);
        assert!(plan.assignments.contains(&(dike_machine::ThreadId(0), 0)));
    }
}
