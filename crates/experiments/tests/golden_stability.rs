//! Golden-stability regression: the closed-system experiment path must
//! stay byte-identical across driver refactors.
//!
//! The fixtures under `tests/fixtures/` were serialized from the
//! pre-open-system (closed, fixed-population) driver. Any change to the
//! quantum loop, view construction or result reduction that alters a
//! single byte of these artefacts is a behaviour change to the recorded
//! figures (fig2/4/5/6a/6b/table3 all reduce through the same
//! `run_cell`/`sweep` machinery exercised here) and must be flagged, not
//! silently absorbed.
//!
//! To *intentionally* re-baseline after a deliberate behaviour change:
//!
//! ```sh
//! DIKE_REGEN_GOLDENS=1 cargo test -p dike-experiments --test golden_stability
//! ```

use dike_experiments::runner::run_cells;
use dike_experiments::sweep::sweep_workload_pool;
use dike_experiments::{cachepart, failover, fig6, robustness, table3, RunOptions, SchedKind};
use dike_machine::{presets, FaultConfig};
use dike_util::{json, Pool};
use dike_workloads::paper;
use std::path::PathBuf;

fn small_opts() -> RunOptions {
    RunOptions {
        scale: 0.02,
        deadline_s: 60.0,
        ..RunOptions::default()
    }
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var("DIKE_REGEN_GOLDENS").is_ok() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); generate with DIKE_REGEN_GOLDENS=1")
    });
    assert_eq!(
        expected, actual,
        "golden {name} drifted: the closed-system driver path is no longer \
         byte-identical to the recorded baseline (DIKE_REGEN_GOLDENS=1 only \
         after a deliberate behaviour change)"
    );
}

/// Figure 2's machinery: a full 33-configuration sweep of one workload
/// (WL2 is the first of fig2's selected set). Covers fig4/fig5 too — they
/// reduce the same `sweep_workload_pool` output differently.
#[test]
fn fig2_sweep_is_byte_identical_to_pre_refactor_golden() {
    let opts = small_opts();
    let sweep = sweep_workload_pool(
        &presets::paper_machine(opts.seed),
        &paper::workload(2),
        &opts,
        &Pool::new(1),
    );
    check_golden("golden_fig2_wl2.json", &json::to_string(&sweep));
}

/// Table III's machinery: swap counts for one B and one UM workload under
/// DIO and the three Dike variants.
#[test]
fn table3_swaps_are_byte_identical_to_pre_refactor_golden() {
    let opts = small_opts();
    let t3 = table3::run_subset_pool(&opts, &[1, 13], &Pool::new(1));
    check_golden("golden_table3.json", &json::to_string(&t3));
}

/// Figure 6's machinery: the five-scheduler comparison set on WL1 (the
/// cells behind both 6a fairness improvements and 6b speedups).
#[test]
fn fig6_comparison_is_byte_identical_to_pre_refactor_golden() {
    let opts = small_opts();
    let fig = fig6::run_subset_pool(&opts, &[1], &Pool::new(1));
    check_golden("golden_fig6_wl1.json", &json::to_string(&fig));
}

/// The fault-injection layer at rate zero must be *absent*, not merely
/// quiet: a machine config carrying an explicit all-zero [`FaultConfig`]
/// (even with a non-zero fault seed) reproduces the committed Figure 6
/// golden byte for byte.
#[test]
fn explicit_zero_fault_config_reproduces_the_fig6_golden() {
    let opts = small_opts();
    let mut cfg = presets::paper_machine(opts.seed);
    cfg.faults = FaultConfig {
        seed: 0xDEAD_BEEF,
        ..FaultConfig::default()
    };
    let kinds = SchedKind::comparison_set();
    let workload = paper::workload(1);
    let tasks: Vec<_> = kinds.iter().map(|k| (&workload, k.clone())).collect();
    let rows = vec![run_cells(&cfg, &tasks, &opts, &Pool::new(1))];
    let fig = dike_experiments::fig6::Fig6 {
        schedulers: kinds.iter().map(|k| k.label()).collect(),
        rows,
    };
    check_golden("golden_fig6_wl1.json", &json::to_string(&fig));
}

/// The robustness experiment's own degradation curves, pinned: the fault
/// injector is part of the deterministic surface, so any change to its
/// hashing, channel salts, or the hardened pipeline's degradation ladder
/// shows up here as a byte diff.
#[test]
fn robustness_sweep_is_byte_identical_to_golden() {
    let opts = small_opts();
    let points = robustness::run_robustness_pool(&[0.0, 0.30], &[0.10], true, &opts, &Pool::new(1));
    check_golden("golden_robustness.json", &json::to_string(&points));
}

/// The cache-partitioning grid, pinned: this golden holds the headline
/// Dike vs Dike+LFOC windowed-fairness comparison, the LFOC plan
/// contents' downstream effects, and the partition actuation counts under
/// faults. Any change to the LFOC classifier, the plan builder, the
/// partition fault channel, or the engine's partitioned-capacity model
/// shows up here as a byte diff.
#[test]
fn cachepart_grid_is_byte_identical_to_golden() {
    let opts = small_opts();
    let points = cachepart::run_cachepart_pool(&[1, 13], &opts, &Pool::new(1));
    check_golden("golden_cachepart.json", &json::to_string(&points));
}

/// The partition actuator at rest must be *absent*, not merely unused: a
/// migration-only policy on a partition-capable machine reproduces the
/// committed Figure 6 golden byte for byte (the new partition state,
/// occupancy observations, and epoch plumbing change nothing until a
/// policy issues a plan).
#[test]
fn migration_only_policies_reproduce_the_fig6_golden_with_partitioning_compiled_in() {
    let opts = small_opts();
    let fig = fig6::run_subset_pool(&opts, &[1], &Pool::new(1));
    for row in &fig.rows {
        for cell in row {
            assert!(
                cell.scheduler != "LFOC" && cell.scheduler != "Dike+LFOC",
                "comparison_set must stay migration-only"
            );
        }
    }
    check_golden("golden_fig6_wl1.json", &json::to_string(&fig));
}

/// The failover grid's quick pair, pinned: this golden holds the
/// epoch-driven loop's routing decisions, the machine-fault stream, the
/// orphan/retry accounting and the conservation ledger byte for byte.
/// Any change to the epoch barrier order, health scoring, or the fault
/// hash channels shows up here as a byte diff.
#[test]
fn failover_quick_pair_is_byte_identical_to_golden() {
    let points = failover::run_quick_pool(failover::FAILOVER_SEED, &Pool::new(1));
    check_golden("golden_failover.json", &json::to_string(&points));
}
