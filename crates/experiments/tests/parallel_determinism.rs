//! The parallel experiment drivers' determinism contract: for any worker
//! count, results — including their serialized JSON — are byte-identical
//! to the serial path. This is what lets `DIKE_THREADS=N` be a pure
//! wall-clock knob with no effect on any recorded figure or fixture.

use dike_experiments::sweep::sweep_workload_pool;
use dike_experiments::{
    cachepart, failover, fig6, fleet, open, robustness, scale, table3, RunOptions,
};
use dike_machine::presets;
use dike_util::{json, Pool};
use dike_workloads::paper;

fn small_opts() -> RunOptions {
    RunOptions {
        scale: 0.02,
        deadline_s: 60.0,
        ..RunOptions::default()
    }
}

#[test]
fn parallel_sweep_json_is_byte_identical_across_thread_counts() {
    let opts = small_opts();
    let cfg = presets::paper_machine(1);
    let workload = paper::workload(1);

    let serial = sweep_workload_pool(&cfg, &workload, &opts, &Pool::new(1));
    let serial_json = json::to_string(&serial);
    assert!(serial_json.contains("\"workload\""), "sweep serializes");

    for threads in [2usize, 8] {
        let parallel = sweep_workload_pool(&cfg, &workload, &opts, &Pool::new(threads));
        let parallel_json = json::to_string(&parallel);
        assert_eq!(
            serial_json, parallel_json,
            "{threads}-thread sweep JSON must be byte-identical to serial"
        );
    }
}

#[test]
fn fig6_comparison_set_is_thread_count_invariant() {
    let opts = small_opts();
    let serial = fig6::run_subset_pool(&opts, &[1, 13], &Pool::new(1));
    for threads in [2usize, 8] {
        let parallel = fig6::run_subset_pool(&opts, &[1, 13], &Pool::new(threads));
        assert_eq!(
            serial, parallel,
            "{threads}-thread Fig 6 differs from serial"
        );
    }
}

#[test]
fn table3_swap_counts_are_thread_count_invariant() {
    let opts = small_opts();
    let serial = table3::run_subset_pool(&opts, &[1], &Pool::new(1));
    let parallel = table3::run_subset_pool(&opts, &[1], &Pool::new(4));
    assert_eq!(serial, parallel);
}

#[test]
fn open_experiment_is_thread_count_invariant() {
    // The open driver injects arrivals mid-run; each cell still simulates
    // single-threaded, and the `(level × scheduler)` fan-out must not leak
    // worker count into any byte of the output.
    let opts = small_opts();
    let levels = [2000.0, 1000.0];
    let serial = open::run_open_points_pool(&levels, &opts, &Pool::new(1));
    let serial_json = json::to_string(&serial);
    assert!(serial_json.contains("\"windows\""), "open points serialize");
    for threads in [2usize, 8] {
        let parallel = open::run_open_points_pool(&levels, &opts, &Pool::new(threads));
        assert_eq!(
            serial_json,
            json::to_string(&parallel),
            "{threads}-thread open experiment JSON must be byte-identical to serial"
        );
    }
}

#[test]
fn robustness_sweep_is_thread_count_invariant() {
    // Fault draws are stateless hashes of (seed, salt, thread, quantum),
    // so the injected fault pattern — and with it every degradation-curve
    // byte — must be identical no matter how cells land on workers.
    let opts = small_opts();
    let serial = robustness::run_robustness_pool(&[0.0, 0.20], &[0.10], true, &opts, &Pool::new(1));
    let serial_json = json::to_string(&serial);
    assert!(
        serial_json.contains("\"axis\""),
        "robustness points serialize"
    );
    for threads in [2usize, 8] {
        let parallel = robustness::run_robustness_pool(
            &[0.0, 0.20],
            &[0.10],
            true,
            &opts,
            &Pool::new(threads),
        );
        assert_eq!(
            serial_json,
            json::to_string(&parallel),
            "{threads}-thread robustness sweep JSON must be byte-identical to serial"
        );
    }
}

#[test]
fn scale_sweep_is_thread_count_invariant_on_numa_machines() {
    // The multi-controller solve partitions demands per domain; this must
    // not introduce any worker-count sensitivity (the machine is still
    // simulated single-threaded per cell — only cells are sharded).
    let opts = small_opts();
    let serial = scale::run_scale_points_pool(&[1, 2], &opts, &Pool::new(1));
    let serial_json = json::to_string(&serial);
    assert!(
        serial_json.contains("\"domains\""),
        "scale points serialize"
    );
    for threads in [2usize, 8] {
        let parallel = scale::run_scale_points_pool(&[1, 2], &opts, &Pool::new(threads));
        assert_eq!(
            serial_json,
            json::to_string(&parallel),
            "{threads}-thread scale sweep JSON must be byte-identical to serial"
        );
    }
}

#[test]
fn cachepart_grid_is_thread_count_invariant() {
    // Partition plans, partition faults, and the occupancy observations
    // all live inside one machine's deterministic quantum loop; the
    // `(workload × fault cell × scheduler)` fan-out must not leak worker
    // count into any byte of the grid.
    let opts = small_opts();
    let serial = cachepart::run_cachepart_pool(&[1], &opts, &Pool::new(1));
    let serial_json = json::to_string(&serial);
    assert!(
        serial_json.contains("\"partitions\""),
        "cachepart points serialize"
    );
    for threads in [2usize, 8] {
        let parallel = cachepart::run_cachepart_pool(&[1], &opts, &Pool::new(threads));
        assert_eq!(
            serial_json,
            json::to_string(&parallel),
            "{threads}-thread cachepart grid JSON must be byte-identical to serial"
        );
    }
}

#[test]
fn fleet_rollup_is_thread_count_invariant() {
    // The fleet fans whole machines (not cells) across the pool, and its
    // dispatch pre-pass runs before any worker starts — so machine
    // placement on workers must not leak into a single byte of the
    // rolled-up result.
    let cfg = fleet::smoke_config(5);
    let serial = fleet::run_fleet_pool(&cfg, &Pool::new(1));
    let serial_json = json::to_string(&serial);
    assert!(serial_json.contains("\"tenants\""), "fleet serializes");
    assert!(serial.total_arrivals > 0, "smoke fleet must dispatch work");
    for threads in [2usize, 8] {
        let parallel = fleet::run_fleet_pool(&cfg, &Pool::new(threads));
        assert_eq!(
            serial_json,
            json::to_string(&parallel),
            "{threads}-thread fleet JSON must be byte-identical to serial"
        );
    }
}

#[test]
fn failover_grid_is_thread_count_invariant() {
    // The failover loop interleaves pool fan-out (one epoch per machine)
    // with serial barrier decisions (health, routing, orphan
    // re-dispatch); worker count must not leak into any of them.
    let serial = failover::run_quick_pool(failover::FAILOVER_SEED, &Pool::new(1));
    let serial_json = json::to_string(&serial);
    assert!(serial_json.contains("\"lost\""), "failover serializes");
    assert!(
        serial.iter().any(|p| p.crashes > 0),
        "quick pair must exercise crashes"
    );
    for threads in [2usize, 8] {
        let parallel = failover::run_quick_pool(failover::FAILOVER_SEED, &Pool::new(threads));
        assert_eq!(
            serial_json,
            json::to_string(&parallel),
            "{threads}-thread failover JSON must be byte-identical to serial"
        );
    }
}
