//! Tiny shared argument parsing for the experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--scale <f>` — instruction-budget scale (default 1.0 = paper scale);
//! * `--quick`     — shorthand for `--scale 0.1`;
//! * `--seed <n>`  — machine seed (default 42);
//! * `--csv`       — also print tables as CSV.

use crate::runner::RunOptions;

/// Parsed common options.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Run options derived from the flags.
    pub opts: RunOptions,
    /// Emit CSV in addition to the aligned table.
    pub csv: bool,
    /// Remaining positional arguments.
    pub rest: Vec<String>,
}

/// Parse an argument list (excluding the program name).
///
/// Unknown flags cause an error message describing the supported set.
pub fn parse(args: impl IntoIterator<Item = String>) -> Result<CommonArgs, String> {
    let mut opts = RunOptions::default();
    let mut csv = false;
    let mut rest = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let v = iter.next().ok_or("--scale needs a value")?;
                opts.scale = v
                    .parse()
                    .map_err(|e| format!("bad --scale value {v:?}: {e}"))?;
                if opts.scale <= 0.0 {
                    return Err("--scale must be positive".into());
                }
            }
            "--quick" => opts.scale = 0.1,
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a value")?;
                opts.seed = v
                    .parse()
                    .map_err(|e| format!("bad --seed value {v:?}: {e}"))?;
            }
            "--csv" => csv = true,
            "--help" | "-h" => {
                return Err(
                    "flags: --scale <f> (default 1.0), --quick (= --scale 0.1), \
                     --seed <n>, --csv"
                        .into(),
                )
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}; try --help"))
            }
            other => rest.push(other.to_string()),
        }
    }
    // Deadlines scale with the budget so truncation never distorts results.
    opts.deadline_s = (600.0 * opts.scale).max(120.0);
    Ok(CommonArgs { opts, csv, rest })
}

/// Parse from the process environment.
pub fn from_env() -> CommonArgs {
    match parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_are_paper_scale() {
        let a = parse(args(&[])).unwrap();
        assert_eq!(a.opts.scale, 1.0);
        assert!(!a.csv);
        assert!(a.rest.is_empty());
    }

    #[test]
    fn flags_parse() {
        let a = parse(args(&["--scale", "0.25", "--seed", "7", "--csv", "extra"])).unwrap();
        assert_eq!(a.opts.scale, 0.25);
        assert_eq!(a.opts.seed, 7);
        assert!(a.csv);
        assert_eq!(a.rest, vec!["extra"]);
        let q = parse(args(&["--quick"])).unwrap();
        assert_eq!(q.opts.scale, 0.1);
    }

    #[test]
    fn errors_on_nonsense() {
        assert!(parse(args(&["--scale"])).is_err());
        assert!(parse(args(&["--scale", "abc"])).is_err());
        assert!(parse(args(&["--scale", "-1"])).is_err());
        assert!(parse(args(&["--bogus"])).is_err());
        assert!(parse(args(&["--help"])).is_err());
    }

    #[test]
    fn deadline_scales_with_budget() {
        let a = parse(args(&["--scale", "0.5"])).unwrap();
        assert_eq!(a.opts.deadline_s, 300.0);
        let b = parse(args(&["--scale", "0.05"])).unwrap();
        assert_eq!(b.opts.deadline_s, 120.0);
    }
}
