//! Figure 2: fairness/performance of the optimal, default and worst
//! scheduler configurations for selected workloads.
//!
//! "Poor scheduler configurations lead to notable fairness and performance
//! loss. The optimal scheduler configuration, however, is a function of
//! both the current application workload and user preference."

use crate::runner::RunOptions;
use crate::sweep::{sweep_workloads_parallel, Sweep};
use dike_machine::presets;
use dike_metrics::TextTable;
use dike_scheduler::SchedConfig;
use dike_workloads::paper;

/// One workload's Figure 2 bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Row {
    /// Workload name.
    pub workload: String,
    /// Best configuration by fairness and its normalised fairness (1.0).
    pub optimal_fairness_cfg: SchedConfig,
    /// Default config's fairness normalised to the optimum.
    pub default_fairness: f64,
    /// Worst config's fairness normalised to the optimum.
    pub worst_fairness: f64,
    /// Best configuration by performance.
    pub optimal_perf_cfg: SchedConfig,
    /// Default config's speedup normalised to the optimum.
    pub default_perf: f64,
    /// Worst config's speedup normalised to the optimum.
    pub worst_perf: f64,
}

/// Reduce a full sweep to the Figure 2 bars.
pub fn reduce(sweep: &Sweep) -> Fig2Row {
    let bf = sweep.best_fairness();
    let wf = sweep.worst_fairness();
    let bp = sweep.best_performance();
    let wp = sweep.worst_performance();
    let default = sweep
        .cell(SchedConfig::DEFAULT)
        .expect("grid contains the default config");

    let best_fair = sweep.cells[bf].result.fairness;
    let speedups = sweep.speedups();
    let best_speed = speedups[bp];
    let default_idx = sweep
        .cells
        .iter()
        .position(|c| c.config == SchedConfig::DEFAULT)
        .expect("default in grid");

    Fig2Row {
        workload: sweep.workload.clone(),
        optimal_fairness_cfg: sweep.cells[bf].config,
        default_fairness: default.result.fairness / best_fair,
        worst_fairness: sweep.cells[wf].result.fairness / best_fair,
        optimal_perf_cfg: sweep.cells[bp].config,
        default_perf: speedups[default_idx] / best_speed,
        worst_perf: speedups[wp] / best_speed,
    }
}

/// The paper's three selected workloads (one per class).
pub const SELECTED: [usize; 3] = [2, 7, 13];

/// Run the Figure 2 experiment: all three workloads' sweeps share one
/// flattened parallel task list (3 × 33 cells).
pub fn run(opts: &RunOptions) -> Vec<Fig2Row> {
    let cfg = presets::paper_machine(opts.seed);
    let workloads: Vec<_> = SELECTED.iter().map(|&n| paper::workload(n)).collect();
    sweep_workloads_parallel(&cfg, &workloads, opts)
        .iter()
        .map(reduce)
        .collect()
}

/// Render as a table.
pub fn render(rows: &[Fig2Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "workload",
        "opt-fair-cfg",
        "fair(default)",
        "fair(worst)",
        "opt-perf-cfg",
        "perf(default)",
        "perf(worst)",
    ]);
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            format!(
                "<{},{}>",
                r.optimal_fairness_cfg.swap_size, r.optimal_fairness_cfg.quantum_ms
            ),
            format!("{:.3}", r.default_fairness),
            format!("{:.3}", r.worst_fairness),
            format!(
                "<{},{}>",
                r.optimal_perf_cfg.swap_size, r.optimal_perf_cfg.quantum_ms
            ),
            format!("{:.3}", r.default_perf),
            format!("{:.3}", r.worst_perf),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep_workload;

    #[test]
    fn reduce_orders_optimal_default_worst() {
        let opts = RunOptions {
            scale: 0.02,
            deadline_s: 60.0,
            ..RunOptions::default()
        };
        let cfg = presets::paper_machine(1);
        let sweep = sweep_workload(&cfg, &paper::workload(2), &opts);
        let row = reduce(&sweep);
        assert!(row.default_fairness <= 1.0 + 1e-12);
        assert!(row.worst_fairness <= row.default_fairness + 1e-12);
        assert!(row.default_perf <= 1.0 + 1e-12);
        assert!(row.worst_perf <= 1.0 + 1e-12);
        let t = render(&[row]);
        assert_eq!(t.len(), 1);
    }
}
