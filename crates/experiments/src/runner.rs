//! The experiment runner: evaluate one (workload × scheduler × machine)
//! cell and reduce it to the paper's metrics.

use crate::roster::PolicyHandle;
use dike_machine::{Machine, MachineConfig, SimTime};
use dike_metrics::RuntimeMatrix;
use dike_sched_core::{run_with, SystemView};
use dike_scheduler::{DikeConfig, SchedConfig};
use dike_util::{json_enum, json_struct};
use dike_workloads::{Placement, Workload};

/// Which scheduling policy to run.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedKind {
    /// No-op scheduler: threads stay where the driver placed them (the
    /// open-system floor — no migration response to churn at all).
    Null,
    /// Linux-CFS stand-in (the baseline).
    Cfs,
    /// Distributed Intensity Online.
    Dio,
    /// Random swaps (seeded).
    Random(u64),
    /// One-shot sorted static placement.
    SortOnce,
    /// Non-adaptive Dike with an explicit configuration.
    Dike(SchedConfig),
    /// Dike-AF (adaptive, fairness goal).
    DikeAf,
    /// Dike-AP (adaptive, performance goal).
    DikeAp,
    /// Dike-H: the fault-hardened pipeline (sanitize → holdover →
    /// retry/backoff → watchdog demotion), non-adaptive default config.
    DikeHardened,
    /// Dike with a fully custom configuration (ablations).
    DikeCustom(DikeConfig),
    /// LFOC-like fairness-oriented cache clustering: partitions the LLC,
    /// never migrates (the second-actuator baseline).
    Lfoc,
    /// Dike swaps plus LFOC way-partitioning — both actuators at once.
    DikeLfoc,
}

json_enum!(SchedKind { Null, Cfs, Dio, SortOnce, DikeAf, DikeAp, DikeHardened, Lfoc, DikeLfoc } {
    Random(u64),
    Dike(SchedConfig),
    DikeCustom(DikeConfig)
});

impl SchedKind {
    /// Display name matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            SchedKind::Null => "Null".into(),
            SchedKind::Cfs => "Linux-CFS".into(),
            SchedKind::Dio => "DIO".into(),
            SchedKind::Random(_) => "Random".into(),
            SchedKind::SortOnce => "SortOnce".into(),
            SchedKind::Dike(c) if *c == SchedConfig::DEFAULT => "Dike".into(),
            SchedKind::Dike(c) => format!("Dike<{},{}>", c.swap_size, c.quantum_ms),
            SchedKind::DikeAf => "Dike-AF".into(),
            SchedKind::DikeAp => "Dike-AP".into(),
            SchedKind::DikeHardened => "Dike-H".into(),
            SchedKind::DikeCustom(_) => "Dike*".into(),
            SchedKind::Lfoc => "LFOC".into(),
            SchedKind::DikeLfoc => "Dike+LFOC".into(),
        }
    }

    /// The standard comparison set of Figure 6 / Table III.
    pub fn comparison_set() -> Vec<SchedKind> {
        vec![
            SchedKind::Cfs,
            SchedKind::Dio,
            SchedKind::Dike(SchedConfig::DEFAULT),
            SchedKind::DikeAf,
            SchedKind::DikeAp,
        ]
    }
}

/// Options for one experimental cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Instruction-budget scale (1.0 = paper scale; tests use less).
    pub scale: f64,
    /// Deadline after which the run is cut off.
    pub deadline_s: f64,
    /// Initial placement.
    pub placement: Placement,
    /// Machine seed (phase-noise determinism).
    pub seed: u64,
}

json_struct!(RunOptions {
    scale,
    deadline_s,
    placement,
    seed,
});

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: 1.0,
            deadline_s: 600.0,
            placement: Placement::Interleaved,
            seed: 42,
        }
    }
}

impl RunOptions {
    /// Reduced scale for fast CI runs.
    pub fn quick() -> Self {
        RunOptions {
            scale: 0.1,
            deadline_s: 120.0,
            ..RunOptions::default()
        }
    }
}

/// The reduced result of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Workload name.
    pub workload: String,
    /// Scheduler label.
    pub scheduler: String,
    /// The paper's fairness (Eqn 4) over benchmark apps.
    pub fairness: f64,
    /// Mean benchmark-app runtime (seconds); each app's runtime is its
    /// slowest thread's completion.
    pub mean_app_runtime_s: f64,
    /// Completion time of the last thread (benchmarks + background).
    pub makespan_s: f64,
    /// Swap operations performed (pairs of migrations).
    pub swaps: u64,
    /// Scheduling quanta executed.
    pub quanta: u64,
    /// Whether all threads finished before the deadline.
    pub completed: bool,
    /// Signed relative prediction errors (Dike policies only).
    pub prediction_errors: Vec<f64>,
    /// Quanta in which the fairness gate passed (Dike policies only).
    pub fair_quanta: u64,
    /// Selector pairs proposed (Dike policies only).
    pub pairs_proposed: u64,
    /// Pairs rejected for non-positive profit (Dike policies only).
    pub rejected_profit: u64,
    /// Pairs rejected by the cooldown (Dike policies only).
    pub rejected_cooldown: u64,
    /// Per-quantum mean prediction error trace `(t_seconds, error)`
    /// (Dike policies only).
    pub prediction_trace: Vec<(f64, f64)>,
}

json_struct!(CellResult {
    workload,
    scheduler,
    fairness,
    mean_app_runtime_s,
    makespan_s,
    swaps,
    quanta,
    completed,
    prediction_errors,
    fair_quanta,
    pairs_proposed,
    rejected_profit,
    rejected_cooldown,
    prediction_trace,
});

/// Run one cell with a custom per-quantum observer hook.
pub fn run_cell_with(
    machine_cfg: &MachineConfig,
    workload: &Workload,
    kind: &SchedKind,
    opts: &RunOptions,
    observer: impl FnMut(&SystemView),
) -> CellResult {
    let mut cfg = machine_cfg.clone();
    cfg.seed = opts.seed;
    let mut machine = Machine::new(cfg);
    let spawned = workload.spawn(&mut machine, opts.placement, opts.scale);
    let deadline = SimTime::from_secs_f64(opts.deadline_s);

    // One roster build covers every kind; the handle keeps the concrete
    // policy alive after the run so Dike's predictor state (plain or inside
    // the hybrid) can be read back out.
    let mut policy = PolicyHandle::build(kind, &machine.config().llc);
    let result = run_with(&mut machine, policy.as_scheduler(), deadline, observer);

    // Fairness over benchmark apps only (the paper's Eqn 4 excludes the
    // KMEANS background).
    let bench_apps = spawned.benchmark_apps();
    let per_app: Vec<Vec<f64>> = bench_apps
        .iter()
        .map(|a| result.app_runtimes(a.0))
        .collect();
    let matrix = RuntimeMatrix::new(per_app);

    let (prediction_errors, prediction_trace) = policy
        .dike()
        .map(|d| (d.predictor().error_values(), d.predictor().error_trace()))
        .unwrap_or_default();
    let dike_stats = policy.dike().map(|d| d.stats()).unwrap_or_default();

    CellResult {
        workload: workload.name.clone(),
        scheduler: kind.label(),
        fairness: matrix.fairness(),
        mean_app_runtime_s: matrix.mean_app_runtime(),
        makespan_s: result.wall.as_secs_f64(),
        swaps: result.swaps,
        quanta: result.quanta,
        completed: result.completed,
        prediction_errors,
        fair_quanta: dike_stats.fair_quanta,
        pairs_proposed: dike_stats.pairs_proposed,
        rejected_profit: dike_stats.rejected_profit,
        rejected_cooldown: dike_stats.rejected_cooldown,
        prediction_trace,
    }
}

/// Run one cell.
pub fn run_cell(
    machine_cfg: &MachineConfig,
    workload: &Workload,
    kind: &SchedKind,
    opts: &RunOptions,
) -> CellResult {
    run_cell_with(machine_cfg, workload, kind, opts, |_| {})
}

/// Run a batch of independent cells across a thread pool.
///
/// Results come back in task order no matter which worker ran what, so a
/// comparison set built from this is identical to the serial loop it
/// replaces. Each cell builds its own [`Machine`], so tasks share nothing
/// but the immutable configs.
pub fn run_cells(
    machine_cfg: &MachineConfig,
    tasks: &[(&Workload, SchedKind)],
    opts: &RunOptions,
    pool: &dike_util::Pool,
) -> Vec<CellResult> {
    pool.map_indexed(tasks.len(), |i| {
        let (workload, kind) = &tasks[i];
        run_cell(machine_cfg, workload, kind, opts)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_machine::presets;
    use dike_workloads::paper;

    #[test]
    fn cell_runs_and_reports_metrics() {
        let opts = RunOptions {
            scale: 0.05,
            deadline_s: 120.0,
            ..RunOptions::default()
        };
        let cfg = presets::paper_machine(1);
        let w = paper::workload(1);
        let cell = run_cell(&cfg, &w, &SchedKind::Cfs, &opts);
        assert!(cell.completed, "run hit the deadline");
        assert!(cell.fairness <= 1.0);
        assert!(cell.mean_app_runtime_s > 0.0);
        assert!(cell.makespan_s >= cell.mean_app_runtime_s);
        assert_eq!(cell.swaps, 0);
        assert!(cell.prediction_errors.is_empty());
    }

    #[test]
    fn dike_cell_exposes_prediction_errors() {
        let opts = RunOptions {
            scale: 0.05,
            deadline_s: 120.0,
            ..RunOptions::default()
        };
        let cfg = presets::paper_machine(1);
        let w = paper::workload(1);
        let cell = run_cell(&cfg, &w, &SchedKind::Dike(SchedConfig::DEFAULT), &opts);
        assert!(cell.completed);
        assert!(!cell.prediction_errors.is_empty());
        assert!(!cell.prediction_trace.is_empty());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(SchedKind::Cfs.label(), "Linux-CFS");
        assert_eq!(SchedKind::Dio.label(), "DIO");
        assert_eq!(SchedKind::Dike(SchedConfig::DEFAULT).label(), "Dike");
        assert_eq!(
            SchedKind::Dike(SchedConfig {
                swap_size: 4,
                quantum_ms: 100
            })
            .label(),
            "Dike<4,100>"
        );
        assert_eq!(SchedKind::DikeAf.label(), "Dike-AF");
        assert_eq!(SchedKind::DikeAp.label(), "Dike-AP");
        assert_eq!(SchedKind::comparison_set().len(), 5);
    }
}
