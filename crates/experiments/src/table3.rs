//! Table III: swap counts per workload under DIO, Dike, Dike-AF and
//! Dike-AP.
//!
//! The paper's averages: DIO ≈ 2117, Dike ≈ 773, Dike-AF ≈ 289,
//! Dike-AP ≈ 191 — with a strong class pattern for Dike (B workloads need
//! ~10 swaps; UC workloads churn at DIO-like rates; UM workloads rotate at
//! hundreds).

use crate::runner::{run_cells, RunOptions, SchedKind};
use dike_machine::presets;
use dike_metrics::{mean, TextTable};
use dike_scheduler::SchedConfig;
use dike_util::{json_struct, Pool};
use dike_workloads::paper;

/// Swap counts per workload (rows) per scheduler (columns).
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// Scheduler labels.
    pub schedulers: Vec<String>,
    /// Workload names.
    pub workloads: Vec<String>,
    /// `swaps[w][s]`.
    pub swaps: Vec<Vec<u64>>,
}

json_struct!(Table3 {
    schedulers,
    workloads,
    swaps,
});

impl Table3 {
    /// Per-scheduler averages (the table's final column).
    pub fn averages(&self) -> Vec<f64> {
        (0..self.schedulers.len())
            .map(|s| {
                mean(
                    &self
                        .swaps
                        .iter()
                        .map(|row| row[s] as f64)
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }
}

/// The scheduler set of Table III.
fn kinds() -> Vec<SchedKind> {
    vec![
        SchedKind::Dio,
        SchedKind::Dike(SchedConfig::DEFAULT),
        SchedKind::DikeAf,
        SchedKind::DikeAp,
    ]
}

/// Run the swap-count experiment for a subset of workloads, sharding all
/// `(workload × scheduler)` cells across the environment-sized pool.
pub fn run_subset(opts: &RunOptions, workload_numbers: &[usize]) -> Table3 {
    run_subset_pool(opts, workload_numbers, &Pool::from_env())
}

/// [`run_subset`] on an explicit pool.
pub fn run_subset_pool(opts: &RunOptions, workload_numbers: &[usize], pool: &Pool) -> Table3 {
    let cfg = presets::paper_machine(opts.seed);
    let kinds = kinds();
    let workloads: Vec<_> = workload_numbers
        .iter()
        .map(|&n| paper::workload(n))
        .collect();
    let tasks: Vec<_> = workloads
        .iter()
        .flat_map(|w| kinds.iter().map(move |k| (w, k.clone())))
        .collect();
    let mut results = run_cells(&cfg, &tasks, opts, pool).into_iter();
    let swaps = workloads
        .iter()
        .map(|_| {
            (0..kinds.len())
                .map(|_| results.next().expect("cell").swaps)
                .collect()
        })
        .collect();
    Table3 {
        schedulers: kinds.iter().map(|k| k.label()).collect(),
        workloads: workloads.into_iter().map(|w| w.name).collect(),
        swaps,
    }
}

/// Run for all sixteen workloads.
pub fn run(opts: &RunOptions) -> Table3 {
    run_subset(opts, &(1..=16).collect::<Vec<_>>())
}

/// Render in the paper's layout (schedulers as rows, workloads as columns).
pub fn render(t3: &Table3) -> TextTable {
    let mut header = vec!["scheduler".to_string()];
    header.extend(t3.workloads.iter().map(|w| w.to_lowercase()));
    header.push("Average".into());
    let mut t = TextTable::new(header);
    let avgs = t3.averages();
    for (s, name) in t3.schedulers.iter().enumerate() {
        let mut row = vec![name.clone()];
        row.extend(t3.swaps.iter().map(|w| w[s].to_string()));
        row.push(format!("{:.1}", avgs[s]));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_counts_follow_the_papers_ordering() {
        let opts = RunOptions {
            scale: 0.1,
            deadline_s: 120.0,
            ..RunOptions::default()
        };
        let t3 = run_subset(&opts, &[1, 13]);
        assert_eq!(t3.schedulers, vec!["DIO", "Dike", "Dike-AF", "Dike-AP"]);
        let avgs = t3.averages();
        // DIO out-swaps the non-adaptive and performance-adaptive Dike
        // variants clearly (paper ratio ~2.7x for Dike, ~11x for Dike-AP).
        for s in [1usize, 3] {
            assert!(
                avgs[0] > 1.3 * avgs[s],
                "DIO avg {} vs {} avg {}",
                avgs[0],
                t3.schedulers[s],
                avgs[s]
            );
        }
        let rendered = render(&t3);
        assert_eq!(rendered.len(), 4);
    }
}
