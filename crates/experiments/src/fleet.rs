//! Fleet experiment: fleet-scale multi-tenancy over independent machines.
//!
//! The headline configuration is 64 machines (every 8th a 2-domain NUMA
//! box) serving 96 tenants whose Poisson streams together offer more
//! than a million thread arrivals in a 30-second window — the
//! "thousands of machines, millions of threads" direction of the
//! roadmap, scaled to what one CI lap affords. Dispatch is the
//! open-loop, vcore-normalised least-loaded rule with home affinity
//! (see [`dike_fleet::dispatch`]); every machine then runs the default
//! Dike policy through the event-driven open-system driver, fanned over
//! the [`dike_util::pool`] workers with byte-identical output at any
//! `DIKE_THREADS`.
//!
//! Tenant threads are deliberately short (`FLEET_SCALE`): fleet-level
//! questions are about routing and roll-up, not about a single
//! machine's long-job dynamics, and short jobs are what keeps a
//! million-arrival run inside a CI budget.

use dike_fleet::{FleetConfig, FleetResult, FleetRunner};
use dike_metrics::TextTable;
use dike_util::Pool;
use dike_workloads::ArrivalConfig;

/// Machines in the headline fleet.
pub const FLEET_MACHINES: usize = 64;

/// Tenants in the headline fleet.
pub const FLEET_TENANTS: usize = 96;

/// Per-tenant mean inter-arrival time, milliseconds.
pub const FLEET_MEAN_MS: f64 = 20.0;

/// Arrival horizon, milliseconds.
pub const FLEET_HORIZON_MS: u64 = 30_000;

/// Per-arrival thread range (uniform).
pub const FLEET_THREADS: (u32, u32) = (4, 12);

/// Phase-program scale for fleet tenants: short jobs, high churn.
pub const FLEET_SCALE: f64 = 0.0005;

/// Default fleet seed.
pub const FLEET_SEED: u64 = 42;

/// The fleet configuration for `machines × tenants`, all other knobs at
/// their headline values. Deterministic in its arguments.
pub fn fleet_config(machines: usize, tenants: usize, seed: u64) -> FleetConfig {
    let arrivals = ArrivalConfig {
        mean_interarrival_ms: FLEET_MEAN_MS,
        horizon_ms: FLEET_HORIZON_MS,
        threads_min: FLEET_THREADS.0,
        threads_max: FLEET_THREADS.1,
    };
    let mut cfg = FleetConfig::uniform(machines, tenants, arrivals, seed);
    cfg.scale = FLEET_SCALE;
    cfg.deadline_s = 120.0;
    cfg
}

/// The headline 64-machine, 96-tenant fleet.
pub fn headline_config(seed: u64) -> FleetConfig {
    fleet_config(FLEET_MACHINES, FLEET_TENANTS, seed)
}

/// A small fleet for smoke tests and quick laps.
pub fn smoke_config(seed: u64) -> FleetConfig {
    let mut cfg = fleet_config(8, 12, seed);
    // A shorter horizon keeps the smoke lap proportional to its fleet.
    for t in &mut cfg.tenants {
        t.arrivals.horizon_ms = 10_000;
    }
    cfg
}

/// A wide, shallow fleet: `machines` machines at the headline 3:2
/// tenant ratio but a 2 s arrival horizon — the ROADMAP's "thousands of
/// machines" probe. Total dispatched work stays near the headline lap
/// (the horizon shrinks as the fleet widens), so the row measures how
/// the dispatch pre-pass and per-machine fan-out scale with machine
/// count, not just more simulation.
pub fn wide_quick_config(machines: usize, seed: u64) -> FleetConfig {
    let mut cfg = fleet_config(machines, (machines * 3 / 2).max(1), seed);
    for t in &mut cfg.tenants {
        t.arrivals.horizon_ms = 2_000;
    }
    cfg
}

/// Run a fleet on an explicit pool (tests pin the worker count; the
/// binary uses `Pool::from_env`).
pub fn run_fleet_pool(cfg: &FleetConfig, pool: &Pool) -> FleetResult {
    FleetRunner::new(cfg.clone()).run(pool)
}

/// Per-machine table: where the dispatcher sent work and what each
/// machine did with it.
pub fn render_machines(r: &FleetResult) -> TextTable {
    let mut t = TextTable::new(vec![
        "machine".to_string(),
        "arrivals".to_string(),
        "departures".to_string(),
        "makespan(s)".to_string(),
        "quanta".to_string(),
        "migrations".to_string(),
    ]);
    for m in &r.machines {
        t.row(vec![
            m.machine.to_string(),
            m.arrivals.to_string(),
            m.departures.to_string(),
            format!("{:.1}", m.makespan_s),
            m.quanta.to_string(),
            m.migrations.to_string(),
        ]);
    }
    t
}

/// Per-tenant roll-up table.
pub fn render_tenants(r: &FleetResult) -> TextTable {
    let mut t = TextTable::new(vec![
        "tenant".to_string(),
        "home".to_string(),
        "arrivals".to_string(),
        "departures".to_string(),
        "sojourn(s)".to_string(),
    ]);
    for p in &r.tenants {
        t.row(vec![
            p.name.clone(),
            p.home.to_string(),
            p.arrivals.to_string(),
            p.departures.to_string(),
            format!("{:.3}", p.mean_sojourn_s),
        ]);
    }
    t
}

/// One-paragraph fleet summary for the binary's stdout.
pub fn summary(r: &FleetResult) -> String {
    format!(
        "fleet: {} machines, {} tenants | arrivals {} | departures {} | \
         completed {} | makespan {:.1}s | sojourn {:.3}s | \
         fairness mean {:.3} min {:.3}",
        r.machines.len(),
        r.tenants.len(),
        r.total_arrivals,
        r.total_departures,
        r.completed,
        r.makespan_s,
        r.mean_sojourn_s,
        r.mean_windowed_fairness,
        r.min_windowed_fairness
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_util::json;

    #[test]
    fn smoke_fleet_runs_and_serializes() {
        let cfg = smoke_config(7);
        let r = run_fleet_pool(&cfg, &Pool::new(1));
        assert!(r.total_arrivals > 0);
        assert_eq!(r.machines.len(), 8);
        assert_eq!(r.tenants.len(), 12);
        let s = json::to_string(&r);
        assert!(s.contains("\"windows\""));
        let back: FleetResult = json::from_str(&s).expect("round-trip");
        assert_eq!(back, r);
        assert!(!summary(&r).is_empty());
        assert!(render_machines(&r).render().lines().count() >= 9);
        assert!(render_tenants(&r).render().lines().count() >= 13);
    }

    #[test]
    fn headline_config_offers_a_million_threads() {
        // Cheap static check on the generator maths (traces only, no
        // simulation): the headline fleet offers >= 1M thread arrivals.
        let cfg = headline_config(FLEET_SEED);
        assert_eq!(cfg.machines.len(), FLEET_MACHINES);
        let offered = cfg.offered_threads();
        assert!(
            offered >= 1_000_000,
            "headline fleet offers only {offered} threads"
        );
    }
}
