//! Cache-partitioning experiment: the second actuator, end to end.
//!
//! Every other experiment moves threads; this one compares what shaping
//! the shared LLC buys on top. The grid crosses two paper mixes (WL1,
//! the all-memory worst case, and WL13, a memory/compute blend) with
//! three fault environments (clean, 20 % telemetry dropout, 10 %
//! actuation failure) and runs five policies through each cell:
//!
//! * **Linux-CFS** — neither actuator (the floor),
//! * **DIO** — migration-only, no prediction,
//! * **Dike** — migration-only, the paper pipeline,
//! * **LFOC** — partition-only cache clustering
//!   ([`dike_baselines::Lfoc`]),
//! * **Dike+LFOC** — both actuators ([`dike_scheduler::DikeLfoc`]).
//!
//! Each cell reports whole-run fairness (Eqn 4), the windowed-fairness
//! summary, and the count of partition plans the machine actually applied
//! (after the actuation fault channel). The headline claim this
//! experiment pins — see `results/BENCH_cachepart.json` and the golden
//! suite — is that the hybrid's windowed fairness matches or beats plain
//! Dike's on both mixes: jailing streamers cannot slow threads already at
//! the contention cap, while everyone else gets cleaner cache.
//!
//! Cells fan out over the [`dike_util::pool`] workers and come back in
//! input order — byte-identical at any `DIKE_THREADS`, like every other
//! experiment in this crate.

use crate::open::drive_open;
use crate::robustness::{WINDOW_S, WINDOW_STEP_S};
use crate::runner::{RunOptions, SchedKind};
use dike_machine::{presets, FaultConfig, Machine, MachineConfig, SimTime};
use dike_metrics::{mean, windowed_fairness, RuntimeMatrix, TextTable, ThreadSpan};
use dike_scheduler::SchedConfig;
use dike_util::{json_struct, Pool};
use dike_workloads::paper;

/// The paper mixes the grid sweeps: WL1 (all memory-intensive — maximum
/// LLC pressure) and WL13 (memory/compute blend — streamers and victims
/// coexist, the case partitioning is built for).
pub const CACHEPART_WORKLOADS: [usize; 2] = [1, 13];

/// The cache-partitioning comparison set: no actuator, migration-only
/// (naive and predictive), partition-only, and both.
pub fn cachepart_comparison_set() -> Vec<SchedKind> {
    vec![
        SchedKind::Cfs,
        SchedKind::Dio,
        SchedKind::Dike(SchedConfig::DEFAULT),
        SchedKind::Lfoc,
        SchedKind::DikeLfoc,
    ]
}

/// The fault environments each `(workload × scheduler)` pair runs under:
/// clean, a telemetry axis point, and an actuation axis point. The clean
/// cell uses the all-zero default config, so it takes the driver's exact
/// pre-fault code path.
pub fn fault_cells(seed: u64) -> Vec<(String, f64, FaultConfig)> {
    vec![
        ("none".into(), 0.0, FaultConfig::default()),
        (
            "telemetry".into(),
            0.20,
            FaultConfig::telemetry_axis(0.20, seed),
        ),
        (
            "actuation".into(),
            0.10,
            FaultConfig::actuation_axis(0.10, seed),
        ),
    ]
}

/// One `(workload × fault cell × scheduler)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CachePartPoint {
    /// Fault axis: `none`, `telemetry`, or `actuation`.
    pub axis: String,
    /// The axis' primary fault rate.
    pub level: f64,
    /// Workload name (`WL1`, `WL13`).
    pub workload: String,
    /// Scheduler label.
    pub scheduler: String,
    /// Whole-run fairness (Eqn 4) over benchmark apps.
    pub fairness: f64,
    /// Mean of the per-window fairness scores over the run.
    pub mean_windowed_fairness: f64,
    /// Worst window of the run.
    pub min_windowed_fairness: f64,
    /// Mean benchmark-app runtime (seconds).
    pub mean_app_runtime_s: f64,
    /// Completion time of the last thread (or the deadline).
    pub makespan_s: f64,
    /// Swap operations performed (migration actuator).
    pub swaps: u64,
    /// Partition plans applied to the machine (cache actuator; plans lost
    /// to actuation faults are not counted).
    pub partitions: u64,
    /// Whether all threads finished before the deadline.
    pub completed: bool,
}

json_struct!(CachePartPoint {
    axis,
    level,
    workload,
    scheduler,
    fairness,
    mean_windowed_fairness,
    min_windowed_fairness,
    mean_app_runtime_s,
    makespan_s,
    swaps,
    partitions,
    completed,
});

/// Run one cell: the paper workload, closed, on a machine whose config
/// carries the cell's [`FaultConfig`].
pub fn run_cachepart_cell(
    axis: &str,
    level: f64,
    wl: usize,
    machine_cfg: &MachineConfig,
    kind: &SchedKind,
    opts: &RunOptions,
) -> CachePartPoint {
    let mut cfg = machine_cfg.clone();
    cfg.seed = opts.seed;
    let mut machine = Machine::new(cfg);
    let workload = paper::workload(wl);
    let spawned = workload.spawn(&mut machine, opts.placement, opts.scale);
    let deadline = SimTime::from_secs_f64(opts.deadline_s);
    // Closed run through the open driver with an empty arrival plan —
    // byte-identical to the closed loop (the golden suite enforces it).
    let result = drive_open(&mut machine, kind, deadline, vec![]);

    let bench_apps = spawned.benchmark_apps();
    let per_app: Vec<Vec<f64>> = bench_apps
        .iter()
        .map(|a| result.app_runtimes(a.0))
        .collect();
    let matrix = RuntimeMatrix::new(per_app);

    let wall = result.wall.as_secs_f64();
    let spans: Vec<ThreadSpan> = result
        .threads
        .iter()
        .map(|t| ThreadSpan {
            app: t.app,
            spawned_at: t.spawned_at.as_secs_f64(),
            finished_at: t.finished_at.map(|f| f.as_secs_f64()),
        })
        .collect();
    let windows = windowed_fairness(&spans, WINDOW_S, WINDOW_STEP_S, wall.max(WINDOW_S));
    let fair: Vec<f64> = windows.iter().map(|w| w.fairness).collect();

    CachePartPoint {
        axis: axis.to_string(),
        level,
        workload: workload.name.clone(),
        scheduler: kind.label(),
        fairness: matrix.fairness(),
        mean_windowed_fairness: mean(&fair),
        min_windowed_fairness: fair.iter().copied().fold(f64::INFINITY, f64::min),
        mean_app_runtime_s: matrix.mean_app_runtime(),
        makespan_s: wall,
        swaps: result.swaps,
        partitions: result.partitions,
        completed: result.completed,
    }
}

/// Run the full grid on the environment-sized pool.
pub fn run_cachepart_experiment(opts: &RunOptions) -> Vec<CachePartPoint> {
    run_cachepart_pool(&CACHEPART_WORKLOADS, opts, &Pool::from_env())
}

/// Run the grid over explicit workloads on an explicit pool (tests pin
/// both). Tasks fan out in `(workload, fault cell, scheduler)` order and
/// come back in input order — byte-identical at any worker count.
pub fn run_cachepart_pool(
    workloads: &[usize],
    opts: &RunOptions,
    pool: &Pool,
) -> Vec<CachePartPoint> {
    let kinds = cachepart_comparison_set();
    let cells = fault_cells(opts.seed);
    let base = presets::paper_machine(opts.seed);
    let per = kinds.len();
    let per_wl = cells.len() * per;
    pool.map_indexed(workloads.len() * per_wl, |task| {
        let wl = workloads[task / per_wl];
        let (axis, level, faults) = &cells[(task % per_wl) / per];
        let mut cfg = base.clone();
        cfg.faults = *faults;
        run_cachepart_cell(axis, *level, wl, &cfg, &kinds[task % per], opts)
    })
}

/// Render the grid as a comparison table.
pub fn render(points: &[CachePartPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "workload".to_string(),
        "axis".to_string(),
        "level".to_string(),
        "scheduler".to_string(),
        "fairness".to_string(),
        "fair(win)".to_string(),
        "fair(min)".to_string(),
        "runtime(s)".to_string(),
        "swaps".to_string(),
        "parts".to_string(),
        "done".to_string(),
    ]);
    for p in points {
        t.row(vec![
            p.workload.clone(),
            p.axis.clone(),
            format!("{:.2}", p.level),
            p.scheduler.clone(),
            format!("{:.3}", p.fairness),
            format!("{:.3}", p.mean_windowed_fairness),
            format!("{:.3}", p.min_windowed_fairness),
            format!("{:.2}", p.mean_app_runtime_s),
            p.swaps.to_string(),
            p.partitions.to_string(),
            if p.completed { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_util::json;

    fn small_opts() -> RunOptions {
        RunOptions {
            scale: 0.05,
            deadline_s: 240.0,
            ..RunOptions::default()
        }
    }

    #[test]
    fn grid_reports_all_cells_in_order_with_finite_metrics() {
        let opts = small_opts();
        let points = run_cachepart_pool(&[1], &opts, &Pool::new(2));
        let per = cachepart_comparison_set().len();
        assert_eq!(points.len(), fault_cells(opts.seed).len() * per);
        for p in &points {
            assert!(
                p.completed,
                "{} @ {}:{} on {}: hit deadline",
                p.scheduler, p.axis, p.level, p.workload
            );
            assert!(p.fairness.is_finite() && p.fairness <= 1.0, "{p:?}");
            assert!(p.mean_windowed_fairness.is_finite(), "{p:?}");
            assert!(p.mean_app_runtime_s.is_finite() && p.mean_app_runtime_s > 0.0);
        }
        // The migration-only policies must never partition; the
        // partition-capable ones must actually use the actuator in the
        // clean cell on the all-memory mix.
        for p in &points {
            match p.scheduler.as_str() {
                "Linux-CFS" | "DIO" | "Dike" => assert_eq!(p.partitions, 0, "{p:?}"),
                _ => {}
            }
            if p.axis == "none" && (p.scheduler == "LFOC" || p.scheduler == "Dike+LFOC") {
                assert!(p.partitions > 0, "partition channel silent: {p:?}");
            }
        }
        // Serialization round-trip (results are archived as JSON).
        let s = json::to_string(&points[0]);
        let back: CachePartPoint = json::from_str(&s).unwrap();
        assert_eq!(back, points[0]);
    }

    #[test]
    fn hybrid_matches_or_beats_plain_dike_on_both_mixes() {
        // The ISSUE's headline acceptance: with partitioning enabled the
        // Dike+LFOC hybrid's windowed fairness matches or beats plain
        // Dike's on at least two workload mixes. Deterministic, so this
        // cannot flake; `results/BENCH_cachepart.json` archives the same
        // comparison at full scale.
        let opts = small_opts();
        for wl in CACHEPART_WORKLOADS {
            let base = presets::paper_machine(opts.seed);
            let dike = run_cachepart_cell(
                "none",
                0.0,
                wl,
                &base,
                &SchedKind::Dike(SchedConfig::DEFAULT),
                &opts,
            );
            let hybrid = run_cachepart_cell("none", 0.0, wl, &base, &SchedKind::DikeLfoc, &opts);
            assert!(dike.completed && hybrid.completed);
            assert!(
                hybrid.mean_windowed_fairness >= dike.mean_windowed_fairness - 1e-12,
                "WL{}: hybrid windowed fairness {:.4} < plain Dike {:.4}",
                wl,
                hybrid.mean_windowed_fairness,
                dike.mean_windowed_fairness
            );
        }
    }
}
