//! Figure 5: the optimisation space of scheduler configurations, aggregated
//! per workload class (B / UC / UM) — the empirical basis of Algorithm 2's
//! adaptation rules.
//!
//! For each class, normalised fairness and performance are averaged over
//! the class's workloads at every grid point; the paper derives its
//! optimizer moves from the resulting contours (e.g. *Fairness-UC* peaks at
//! high swapSize and quantaLength ≈ 200 ms).

use crate::fig4::{heatmaps, Heatmap};
use crate::runner::RunOptions;
use crate::sweep::sweep_workloads_parallel;
use dike_machine::presets;
use dike_workloads::{paper, WorkloadClass};

/// Aggregated per-class heatmaps.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassContours {
    /// Workload class.
    pub class: WorkloadClass,
    /// Workloads aggregated.
    pub workloads: Vec<String>,
    /// Mean normalised fairness per grid point.
    pub fairness: Heatmap,
    /// Mean normalised performance per grid point.
    pub performance: Heatmap,
}

impl ClassContours {
    /// Grid point with the highest aggregated value for a metric.
    pub fn peak(values: &[Vec<f64>]) -> (usize, usize) {
        let mut best = (0, 0);
        let mut best_v = f64::MIN;
        for (qi, row) in values.iter().enumerate() {
            for (si, &v) in row.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = (qi, si);
                }
            }
        }
        best
    }
}

fn mean_maps(maps: Vec<Heatmap>, label: String, metric: &'static str) -> Heatmap {
    let n = maps.len() as f64;
    let mut acc = maps[0].values.clone();
    for m in &maps[1..] {
        for (qi, row) in m.values.iter().enumerate() {
            for (si, &v) in row.iter().enumerate() {
                acc[qi][si] += v;
            }
        }
    }
    for row in &mut acc {
        for v in row {
            *v /= n;
        }
    }
    Heatmap {
        workload: label,
        metric,
        values: acc,
    }
}

/// Run the Figure 5 experiment.
///
/// `workloads_per_class` limits the sweep cost (the full figure uses all
/// workloads of each class: 6 + 5 + 5 sweeps of 33 runs each).
pub fn run(opts: &RunOptions, workloads_per_class: usize) -> Vec<ClassContours> {
    let cfg = presets::paper_machine(opts.seed);
    let mut out = Vec::new();
    for class in [
        WorkloadClass::Balanced,
        WorkloadClass::UnbalancedCompute,
        WorkloadClass::UnbalancedMemory,
    ] {
        let workloads: Vec<_> = paper::all_workloads()
            .into_iter()
            .filter(|w| w.class() == class)
            .take(workloads_per_class)
            .collect();
        let mut fair_maps = Vec::new();
        let mut perf_maps = Vec::new();
        let mut names = Vec::new();
        for sweep in sweep_workloads_parallel(&cfg, &workloads, opts) {
            let (f, p) = heatmaps(&sweep);
            fair_maps.push(f);
            perf_maps.push(p);
            names.push(sweep.workload.clone());
        }
        out.push(ClassContours {
            class,
            fairness: mean_maps(fair_maps, format!("{}-fairness", class.label()), "fairness"),
            performance: mean_maps(
                perf_maps,
                format!("{}-performance", class.label()),
                "performance",
            ),
            workloads: names,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_contours_aggregate_and_peak() {
        let opts = RunOptions {
            scale: 0.02,
            deadline_s: 60.0,
            ..RunOptions::default()
        };
        let contours = run(&opts, 1);
        assert_eq!(contours.len(), 3);
        for c in &contours {
            assert_eq!(c.workloads.len(), 1);
            assert_eq!(c.fairness.values.len(), 4);
            let (qi, si) = ClassContours::peak(&c.fairness.values);
            assert!(qi < 4 && si < 8);
            assert!(c
                .fairness
                .values
                .iter()
                .flatten()
                .all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
        }
    }

    #[test]
    fn mean_maps_averages_pointwise() {
        let mk = |v: f64| Heatmap {
            workload: "x".into(),
            metric: "fairness",
            values: vec![vec![v; 8]; 4],
        };
        let m = mean_maps(vec![mk(0.4), mk(0.8)], "avg".into(), "fairness");
        assert!((m.values[0][0] - 0.6).abs() < 1e-12);
        assert!((m.values[3][7] - 0.6).abs() < 1e-12);
    }
}
