//! Design-choice ablations: what each Dike mechanism contributes.
//!
//! DESIGN.md §5 lists the choices worth isolating. Each ablation runs the
//! standard workload set with one mechanism altered and reports fairness,
//! performance and swap volume next to default Dike and the DIO/CFS
//! anchors:
//!
//! * **no-prediction** — the Decider accepts every Selector pair: shows the
//!   migration volume Eqns 1–3 prevent (the paper's central claim for
//!   Dike-vs-DIO);
//! * **no-cooldown** — threads may swap in consecutive quanta;
//! * **demand-gated CoreBW** — the capability-estimating variant of the
//!   Observer (deterministic corrective swaps, minimal churn);
//! * **observed-bandwidth core ranking** — fully dynamic core
//!   identification as sketched in Section III-A;
//! * **θ_f sensitivity** — tighter/looser fairness gates.

use crate::runner::{run_cell, CellResult, RunOptions, SchedKind};
use dike_machine::presets;
use dike_metrics::{mean, TextTable};
use dike_scheduler::{CoreBwEstimate, CoreRanking, DikeConfig};
use dike_workloads::paper;

/// The ablation variants, with display names.
pub fn variants() -> Vec<(String, SchedKind)> {
    let dike = DikeConfig::default();
    let mut v: Vec<(String, SchedKind)> = vec![
        ("Linux-CFS".into(), SchedKind::Cfs),
        ("DIO".into(), SchedKind::Dio),
        ("Dike".into(), SchedKind::DikeCustom(dike.clone())),
        (
            "Dike/no-prediction".into(),
            SchedKind::DikeCustom(DikeConfig {
                use_prediction: false,
                ..dike.clone()
            }),
        ),
        (
            "Dike/no-cooldown".into(),
            SchedKind::DikeCustom(DikeConfig {
                cooldown: false,
                ..dike.clone()
            }),
        ),
        (
            "Dike/gated-corebw".into(),
            SchedKind::DikeCustom(DikeConfig {
                core_bw_estimate: CoreBwEstimate::DemandGated,
                ..dike.clone()
            }),
        ),
        (
            "Dike/observed-rank".into(),
            SchedKind::DikeCustom(DikeConfig {
                core_ranking: CoreRanking::ObservedBandwidth,
                ..dike.clone()
            }),
        ),
    ];
    for theta in [0.05, 0.2] {
        v.push((
            format!("Dike/theta={theta}"),
            SchedKind::DikeCustom(DikeConfig {
                fairness_threshold: theta,
                ..dike.clone()
            }),
        ));
    }
    v
}

/// One variant's aggregated outcome over the workload set.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant name.
    pub name: String,
    /// Mean fairness.
    pub fairness: f64,
    /// Mean benchmark-app runtime (s).
    pub mean_app_runtime_s: f64,
    /// Mean swaps.
    pub swaps: f64,
    /// All cells.
    pub cells: Vec<CellResult>,
}

/// Run the ablation study over a representative workload subset (one per
/// class by default; pass more numbers for a fuller picture).
pub fn run(opts: &RunOptions, workload_numbers: &[usize]) -> Vec<AblationRow> {
    let cfg = presets::paper_machine(opts.seed);
    variants()
        .into_iter()
        .map(|(name, kind)| {
            let cells: Vec<CellResult> = workload_numbers
                .iter()
                .map(|&n| run_cell(&cfg, &paper::workload(n), &kind, opts))
                .collect();
            AblationRow {
                name,
                fairness: mean(&cells.iter().map(|c| c.fairness).collect::<Vec<_>>()),
                mean_app_runtime_s: mean(
                    &cells
                        .iter()
                        .map(|c| c.mean_app_runtime_s)
                        .collect::<Vec<_>>(),
                ),
                swaps: mean(&cells.iter().map(|c| c.swaps as f64).collect::<Vec<_>>()),
                cells,
            }
        })
        .collect()
}

/// Render the study.
pub fn render(rows: &[AblationRow]) -> TextTable {
    let mut t = TextTable::new(vec!["variant", "fairness", "meanApp(s)", "swaps"]);
    for r in rows {
        t.row(vec![
            r.name.clone(),
            format!("{:.4}", r.fairness),
            format!("{:.2}", r.mean_app_runtime_s),
            format!("{:.1}", r.swaps),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prediction_swaps_more_than_default() {
        let opts = RunOptions {
            scale: 0.1,
            deadline_s: 120.0,
            ..RunOptions::default()
        };
        let rows = run(&opts, &[1]);
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        let dike = by_name("Dike");
        let nopred = by_name("Dike/no-prediction");
        assert!(
            nopred.swaps > dike.swaps,
            "prediction should prevent migrations: {} vs {}",
            nopred.swaps,
            dike.swaps
        );
        // CFS never swaps; DIO swaps the most.
        assert_eq!(by_name("Linux-CFS").swaps, 0.0);
        assert!(by_name("DIO").swaps > nopred.swaps);
        let t = render(&rows);
        assert_eq!(t.len(), rows.len());
    }
}
