//! Figure 1: performance of standalone vs concurrent execution.
//!
//! The paper's motivation figure: each application is run alone on the
//! machine ("standalone") and inside its 4-app + KMEANS workload under the
//! baseline scheduler ("concurrent"); the slowdown ratio shows contention
//! loss is large and unevenly distributed (jacobi 2.3× vs srad 1.25× in
//! WL2), and that heterogeneity makes it worse (STREAM in WL15: 3.4× on
//! the homogeneous machine vs 4.6× on the heterogeneous one).

use crate::runner::RunOptions;
use dike_machine::{presets, Machine, MachineConfig, SimTime};
use dike_metrics::TextTable;
use dike_workloads::{paper, AppKind, Workload};

/// One application's standalone-vs-concurrent measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// Workload the app ran inside.
    pub workload: String,
    /// Application name.
    pub app: String,
    /// `"hetero"` or `"homo"` machine (the concurrent run's machine).
    pub machine: &'static str,
    /// Runtime alone on the same machine with the same relative placement
    /// (seconds) — the reference isolating *contention*.
    pub standalone_same_s: f64,
    /// Runtime alone on the homogeneous machine (seconds) — the ideal
    /// reference capturing contention *and* the heterogeneity penalty.
    pub standalone_homo_s: f64,
    /// Runtime inside the concurrent workload under the baseline (seconds).
    pub concurrent_s: f64,
}

impl Fig1Row {
    /// Contention slowdown (vs same-machine, same-placement standalone).
    pub fn slowdown(&self) -> f64 {
        self.concurrent_s / self.standalone_same_s
    }

    /// Total slowdown vs the homogeneous ideal (contention + slow-core
    /// half). On the homogeneous machine the two references coincide.
    pub fn total_slowdown(&self) -> f64 {
        self.concurrent_s / self.standalone_homo_s
    }
}

/// Run one app standalone (8 threads, alone on the machine) and return its
/// runtime (slowest thread).
///
/// The standalone threads are pinned to the *same relative placement* the
/// app receives inside a five-app workload (vcores 0, 5, 10, …). Figure 1
/// measures every standalone reference on the *homogeneous* machine: the
/// slowdown then captures everything the deployment does to the app —
/// co-runner contention, and (on the heterogeneous machine) the slow-core
/// half — which is exactly the paper's point that "the problem gets worse
/// on a heterogeneous system".
fn standalone_runtime(machine_cfg: &MachineConfig, app: AppKind, opts: &RunOptions) -> f64 {
    let mut cfg = machine_cfg.clone();
    cfg.seed = opts.seed;
    let mut machine = Machine::new(cfg);
    let mut threads = Vec::new();
    for k in 0..8u32 {
        let spec = app.thread_spec(
            dike_machine::AppId(0),
            opts.scale,
            dike_machine::BarrierId(0),
        );
        threads.push(machine.spawn(spec, dike_machine::VCoreId(k * 5)));
    }
    machine.run_until_done(SimTime::from_secs_f64(opts.deadline_s));
    threads
        .iter()
        .map(|&t| {
            machine
                .finish_time(t)
                .map(|f| f.as_secs_f64())
                .unwrap_or(opts.deadline_s)
        })
        .fold(0.0, f64::max)
}

/// Per-app concurrent runtimes inside a workload under the baseline.
fn concurrent_runtimes(
    machine_cfg: &MachineConfig,
    workload: &Workload,
    opts: &RunOptions,
) -> Vec<(String, f64)> {
    let mut cfg = machine_cfg.clone();
    cfg.seed = opts.seed;
    let mut machine = Machine::new(cfg);
    let spawned = workload.spawn(&mut machine, opts.placement, opts.scale);
    machine.run_until_done(SimTime::from_secs_f64(opts.deadline_s));
    spawned
        .benchmark_apps()
        .iter()
        .map(|&a| {
            let runtime = spawned
                .threads_of(a)
                .iter()
                .map(|&t| {
                    machine
                        .finish_time(t)
                        .map(|f| f.as_secs_f64())
                        .unwrap_or(opts.deadline_s)
                })
                .fold(0.0, f64::max);
            (spawned.app_names[a.index()].clone(), runtime)
        })
        .collect()
}

/// Run the Figure 1 experiment.
///
/// Measures the paper's two highlighted workloads (WL2 and WL15) on the
/// heterogeneous machine, plus WL15 on the homogeneous machine for the
/// STREAM homo-vs-hetero comparison.
pub fn run(opts: &RunOptions) -> Vec<Fig1Row> {
    let hetero = presets::paper_machine(opts.seed);
    let homo = presets::homogeneous_machine(opts.seed);
    let mut rows = Vec::new();
    for (machine_label, machine_cfg, wl_nums) in [
        ("hetero", &hetero, vec![2usize, 15]),
        ("homo", &homo, vec![15]),
    ] {
        for n in wl_nums {
            let w = paper::workload(n);
            let concurrent = concurrent_runtimes(machine_cfg, &w, opts);
            for (app_kind, (app, concurrent_s)) in w.apps.iter().zip(concurrent) {
                let standalone_same_s = standalone_runtime(machine_cfg, *app_kind, opts);
                let standalone_homo_s = standalone_runtime(&homo, *app_kind, opts);
                rows.push(Fig1Row {
                    workload: w.name.clone(),
                    app,
                    machine: machine_label,
                    standalone_same_s,
                    standalone_homo_s,
                    concurrent_s,
                });
            }
        }
    }
    rows
}

/// Render the rows as the paper's bar-chart series.
pub fn render(rows: &[Fig1Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "workload",
        "app",
        "machine",
        "standalone_s",
        "concurrent_s",
        "contention",
        "total",
    ]);
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.app.clone(),
            r.machine.to_string(),
            format!("{:.2}", r.standalone_same_s),
            format!("{:.2}", r.concurrent_s),
            format!("{:.2}x", r.slowdown()),
            format!("{:.2}x", r.total_slowdown()),
        ]);
    }
    t
}

/// Sanity entry used by tests: slowdowns must exceed 1 and memory apps
/// must suffer more than compute apps within a workload.
pub fn quick_check(rows: &[Fig1Row]) -> Result<(), String> {
    for r in rows {
        if r.slowdown() < 1.0 {
            return Err(format!(
                "{} in {} speeds up under contention ({:.2}x)",
                r.app,
                r.workload,
                r.slowdown()
            ));
        }
    }
    // Within hetero WL2: jacobi (memory) must slow more than srad (compute).
    let slow = |app: &str| {
        rows.iter()
            .find(|r| r.app == app && r.machine == "hetero" && r.workload == "WL2")
            .map(|r| r.slowdown())
    };
    if let (Some(j), Some(s)) = (slow("jacobi"), slow("srad")) {
        if j <= s {
            return Err(format!(
                "jacobi ({j:.2}x) should slow more than srad ({s:.2}x)"
            ));
        }
    }
    // STREAM must suffer more on the heterogeneous machine, relative to
    // the homogeneous ideal (the paper's 3.4x -> 4.6x comparison).
    let stream = |machine: &str| {
        rows.iter()
            .find(|r| r.app == "stream_omp" && r.machine == machine)
            .map(|r| r.total_slowdown())
    };
    if let (Some(het), Some(hom)) = (stream("hetero"), stream("homo")) {
        if het <= hom {
            return Err(format!(
                "stream should slow more on hetero ({het:.2}x) than homo ({hom:.2}x)"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_holds_at_reduced_scale() {
        let opts = RunOptions {
            scale: 0.08,
            deadline_s: 120.0,
            ..RunOptions::default()
        };
        let rows = run(&opts);
        assert_eq!(rows.len(), 4 + 4 + 4); // WL2 + WL15 hetero, WL15 homo
        quick_check(&rows).unwrap();
        let table = render(&rows);
        assert_eq!(table.len(), rows.len());
    }

    #[test]
    fn standalone_is_faster_than_concurrent() {
        let opts = RunOptions {
            scale: 0.05,
            deadline_s: 120.0,
            ..RunOptions::default()
        };
        let cfg = presets::paper_machine(1);
        let solo = standalone_runtime(&cfg, AppKind::Jacobi, &opts);
        let conc = concurrent_runtimes(&cfg, &paper::workload(2), &opts);
        let jacobi = conc.iter().find(|(a, _)| a == "jacobi").unwrap().1;
        assert!(jacobi > solo, "concurrent {jacobi} <= standalone {solo}");
    }
}
