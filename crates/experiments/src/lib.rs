//! # dike-experiments — drivers reproducing every table and figure
//!
//! One module per experiment; each produces the same rows/series the paper
//! reports and is exercised both by a binary (`cargo run -p
//! dike-experiments --release --bin figN`) and by a Criterion bench
//! target. See `DESIGN.md` §3 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured values.
//!
//! | module | paper artefact |
//! |---|---|
//! | [`fig1`] | Figure 1 — standalone vs concurrent slowdown |
//! | [`fig2`] | Figure 2 — optimal/default/worst configurations |
//! | [`fig4`] | Figure 4 — configuration heatmaps |
//! | [`fig5`] | Figure 5 — per-class optimisation contours |
//! | [`fig6`] | Figure 6 — fairness & performance comparison |
//! | [`fig7`] | Figure 7 — prediction error per workload |
//! | [`fig8`] | Figure 8 — prediction-error traces |
//! | [`table3`] | Table III — swap counts |
//! | [`ablations`] | DESIGN.md §5 design-choice ablations |
//! | [`scale`] | beyond-paper: 40/160/320-vcore NUMA scale sweep |
//! | [`open`] | beyond-paper: open-system arrivals/departures |
//! | [`fleet`] | beyond-paper: fleet-scale multi-tenancy roll-up |
//! | [`failover`] | beyond-paper: fleet fault tolerance (crash/brownout sweep) |
//! | [`robustness`] | beyond-paper: fault-injection degradation curves |
//! | [`cachepart`] | beyond-paper: LLC way-partitioning actuator comparison |
//!
//! [`roster`] is the shared `SchedKind → scheduler` constructor all of the
//! above build policies through.

pub mod ablations;
pub mod cachepart;
pub mod cli;
pub mod failover;
pub mod fig1;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fleet;
pub mod open;
pub mod robustness;
pub mod roster;
pub mod runner;
pub mod scale;
pub mod sweep;
pub mod table3;

pub use roster::PolicyHandle;
pub use runner::{run_cell, run_cell_with, CellResult, RunOptions, SchedKind};
