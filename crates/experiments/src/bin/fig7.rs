//! Regenerates Figure 7: Dike's prediction error (min/avg/max of signed
//! relative error) for every workload.

use dike_experiments::{cli, fig7};

fn main() {
    let args = cli::from_env();
    let rows = fig7::run(&args.opts);
    let t = fig7::render(&rows);
    println!("Figure 7 — Dike prediction error\n");
    print!("{}", t.render());
    if args.csv {
        print!("\n{}", t.to_csv());
    }
}
