//! Regenerates Figure 4: normalised fairness/performance heatmaps over the
//! 8x4 <swapSize, quantaLength> grid for WL3 and WL9.

use dike_experiments::{cli, fig4};

fn main() {
    let args = cli::from_env();
    println!("Figure 4 — configuration heatmaps (normalised to grid best)\n");
    for map in fig4::run(&args.opts) {
        let t = map.render();
        println!("{}", t.render());
        if args.csv {
            println!("{}", t.to_csv());
        }
    }
}
