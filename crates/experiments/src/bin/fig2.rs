//! Regenerates Figure 2: optimal vs default vs worst Dike configuration
//! (normalised fairness/performance) for WL2, WL7 and WL13.

use dike_experiments::{cli, fig2};

fn main() {
    let args = cli::from_env();
    let rows = fig2::run(&args.opts);
    let table = fig2::render(&rows);
    println!("Figure 2 — optimal/default/worst scheduler configurations\n");
    print!("{}", table.render());
    if args.csv {
        print!("\n{}", table.to_csv());
    }
}
