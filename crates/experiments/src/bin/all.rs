//! Runs every experiment in sequence (the full reproduction). At the
//! default --scale 1.0 this takes roughly an hour on one core; use
//! --quick for a ~6x faster smoke pass. The grid sweeps and comparison
//! sets shard their cells across a work-sharing pool — set `DIKE_THREADS`
//! to override the worker count (1 = the serial path; output is
//! byte-identical either way).

use dike_experiments::{cli, fig1, fig2, fig4, fig5, fig6, fig7, fig8, table3};
use dike_util::pool;

fn main() {
    let args = cli::from_env();
    let opts = &args.opts;
    println!(
        "experiment pool: {} worker thread(s)\n",
        pool::num_threads()
    );

    println!("=== Figure 1 ===\n");
    print!("{}", fig1::render(&fig1::run(opts)).render());

    println!("\n=== Figure 2 ===\n");
    print!("{}", fig2::render(&fig2::run(opts)).render());

    println!("\n=== Figure 4 ===\n");
    for map in fig4::run(opts) {
        println!("{}", map.render().render());
    }

    println!("\n=== Figure 5 (2 workloads/class) ===\n");
    for c in fig5::run(opts, 2) {
        println!("{}", c.fairness.render().render());
        println!("{}", c.performance.render().render());
    }

    println!("\n=== Figure 6 ===\n");
    let fig = fig6::run(opts);
    print!("{}", fig6::render_fairness(&fig).render());
    println!();
    print!("{}", fig6::render_performance(&fig).render());

    println!("\n=== Figure 7 ===\n");
    print!("{}", fig7::render(&fig7::run(opts)).render());

    println!("\n=== Figure 8 ===\n");
    for trace in fig8::run(opts) {
        println!("{}", trace.workload);
        println!("{}", fig8::render(&trace, 30).render());
    }

    println!("\n=== Table III ===\n");
    print!("{}", table3::render(&table3::run(opts)).render());
}
