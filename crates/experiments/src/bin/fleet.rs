//! Fleet-scale multi-tenancy driver: route tenants' Poisson arrival
//! streams over a fleet of independent machines and roll per-tenant
//! fairness up across the fleet. See the `fleet` module docs.
//!
//! Flags (the other binaries' common flags do not fit a fleet, so this
//! binary parses its own):
//!
//! * `--machines <n>` — fleet size (default 64);
//! * `--tenants <n>`  — tenant count (default 96);
//! * `--seed <n>`     — fleet seed (default 42);
//! * `--quick`        — the 8-machine, 12-tenant smoke fleet;
//! * `--json <path>`  — also write the full `FleetResult` as JSON (the
//!   byte-identity artefact the determinism gate diffs);
//! * `--per-machine`  — print the per-machine table too.

use dike_experiments::fleet;
use dike_util::{json, Pool};
use std::time::Instant;

struct Args {
    machines: usize,
    tenants: usize,
    seed: u64,
    quick: bool,
    json_path: Option<String>,
    per_machine: bool,
}

fn parse() -> Result<Args, String> {
    let mut a = Args {
        machines: fleet::FLEET_MACHINES,
        tenants: fleet::FLEET_TENANTS,
        seed: fleet::FLEET_SEED,
        quick: false,
        json_path: None,
        per_machine: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--machines" => {
                let v = iter.next().ok_or("--machines needs a value")?;
                a.machines = v
                    .parse()
                    .map_err(|e| format!("bad --machines {v:?}: {e}"))?;
            }
            "--tenants" => {
                let v = iter.next().ok_or("--tenants needs a value")?;
                a.tenants = v.parse().map_err(|e| format!("bad --tenants {v:?}: {e}"))?;
            }
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a value")?;
                a.seed = v.parse().map_err(|e| format!("bad --seed {v:?}: {e}"))?;
            }
            "--quick" => a.quick = true,
            "--json" => a.json_path = Some(iter.next().ok_or("--json needs a path")?),
            "--per-machine" => a.per_machine = true,
            "--help" | "-h" => {
                return Err(
                    "flags: --machines <n> (default 64), --tenants <n> (default 96), \
                     --seed <n>, --quick, --json <path>, --per-machine"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other}; try --help")),
        }
    }
    if a.machines == 0 || a.tenants == 0 {
        return Err("--machines and --tenants must be >= 1".into());
    }
    Ok(a)
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = if args.quick {
        fleet::smoke_config(args.seed)
    } else {
        fleet::fleet_config(args.machines, args.tenants, args.seed)
    };
    let offered = cfg.offered_threads();
    println!(
        "Fleet — {} machines, {} tenants, {} offered thread-arrivals\n",
        cfg.machines.len(),
        cfg.tenants.len(),
        offered
    );
    let t0 = Instant::now();
    let result = fleet::run_fleet_pool(&cfg, &Pool::from_env());
    let host_s = t0.elapsed().as_secs_f64();

    println!("{}\n", fleet::summary(&result));
    print!("{}", fleet::render_tenants(&result).render());
    if args.per_machine {
        print!("\n{}", fleet::render_machines(&result).render());
    }
    println!(
        "\nhost wall-clock: {host_s:.1}s ({:.0} arrivals/sec)",
        result.total_arrivals as f64 / host_s
    );
    if let Some(path) = args.json_path {
        std::fs::write(&path, json::to_string(&result) + "\n").expect("write --json");
        println!("wrote {path}");
    }
}
