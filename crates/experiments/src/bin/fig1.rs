//! Regenerates Figure 1: standalone vs concurrent slowdown per app on the
//! heterogeneous and homogeneous machines.

use dike_experiments::{cli, fig1};

fn main() {
    let args = cli::from_env();
    let rows = fig1::run(&args.opts);
    let table = fig1::render(&rows);
    println!("Figure 1 — standalone vs concurrent execution\n");
    print!("{}", table.render());
    if args.csv {
        print!("\n{}", table.to_csv());
    }
    if let Err(e) = fig1::quick_check(&rows) {
        eprintln!("shape check FAILED: {e}");
        std::process::exit(1);
    }
    eprintln!("\nshape check passed: contention slows everyone, memory apps most, hetero worst");
}
