//! Open-system driver: the comparison set plus the null floor under
//! WL1-derived Poisson arrivals at three load levels. See `open` module
//! docs.

use dike_experiments::{cli, open};
use std::time::Instant;

fn main() {
    let args = cli::from_env();
    let t0 = Instant::now();
    let points = open::run_open_experiment(&args.opts);
    let host_s = t0.elapsed().as_secs_f64();
    let t = open::render(&points);
    println!("Open system — mid-run arrivals/departures at three load levels\n");
    print!("{}", t.render());
    if args.csv {
        print!("\n{}", t.to_csv());
    }
    println!("\nhost wall-clock: {host_s:.1}s");
}
