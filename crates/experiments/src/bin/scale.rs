//! Scale sweep driver: the Figure 6 comparison set on 1-, 4- and
//! 8-controller machines (40/160/320 vcores). See `scale` module docs.

use dike_experiments::{cli, scale};
use std::time::Instant;

fn main() {
    let args = cli::from_env();
    let t0 = Instant::now();
    let points = scale::run_scale(&args.opts);
    let host_s = t0.elapsed().as_secs_f64();
    let t = scale::render(&points);
    println!("Scale sweep — comparison set at 40/160/320 vcores\n");
    print!("{}", t.render());
    if args.csv {
        print!("\n{}", t.to_csv());
    }
    println!("\nhost wall-clock: {host_s:.1}s");
}
