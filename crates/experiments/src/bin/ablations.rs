//! Runs the design-choice ablation study (DESIGN.md section 5): default
//! Dike vs no-prediction / no-cooldown / alternate CoreBW estimators /
//! fairness-threshold settings, anchored by CFS and DIO. Positional
//! arguments select workload numbers (default: 1 9 13, one per class).

use dike_experiments::{ablations, cli};

fn main() {
    let args = cli::from_env();
    let workloads: Vec<usize> = if args.rest.is_empty() {
        vec![1, 9, 13]
    } else {
        args.rest.iter().filter_map(|s| s.parse().ok()).collect()
    };
    println!("Ablation study over workloads {workloads:?}\n");
    let rows = ablations::run(&args.opts, &workloads);
    let t = ablations::render(&rows);
    print!("{}", t.render());
    if args.csv {
        print!("\n{}", t.to_csv());
    }
}
