//! Robustness driver: degradation curves under injected telemetry and
//! actuation faults, hardened Dike-H vs the trusting paper pipeline vs
//! the CFS/DIO baselines. See the `robustness` module docs.

use dike_experiments::{cli, robustness};
use std::time::Instant;

fn main() {
    let args = cli::from_env();
    let t0 = Instant::now();
    let points = robustness::run_robustness_experiment(&args.opts);
    let host_s = t0.elapsed().as_secs_f64();
    let t = robustness::render(&points);
    println!("Robustness — fairness degradation under injected faults\n");
    print!("{}", t.render());
    if args.csv {
        print!("\n{}", t.to_csv());
    }
    println!("\nhost wall-clock: {host_s:.1}s");
}
