//! Cache-partitioning driver: the LLC way-partitioning actuator
//! comparison — CFS/DIO/Dike (migration-only) vs LFOC (partition-only)
//! vs the Dike+LFOC hybrid, across two paper mixes and three fault
//! environments. See the `cachepart` module docs.

use dike_experiments::{cachepart, cli};
use std::time::Instant;

fn main() {
    let args = cli::from_env();
    let t0 = Instant::now();
    let points = cachepart::run_cachepart_experiment(&args.opts);
    let host_s = t0.elapsed().as_secs_f64();
    let t = cachepart::render(&points);
    println!("Cache partitioning — migration vs partition vs both\n");
    print!("{}", t.render());
    if args.csv {
        print!("\n{}", t.to_csv());
    }
    println!("\nhost wall-clock: {host_s:.1}s");
}
