//! Regenerates Figure 5: per-class (B/UC/UM) optimisation contours, the
//! data behind Algorithm 2's adaptation rules. Pass a positional integer
//! to limit workloads per class (default 2; the full figure uses 6).

use dike_experiments::fig4::Heatmap;
use dike_experiments::fig5::ClassContours;
use dike_experiments::{cli, fig5};

fn main() {
    let args = cli::from_env();
    let per_class: usize = args.rest.first().and_then(|s| s.parse().ok()).unwrap_or(2);
    println!("Figure 5 — per-class optimisation space ({per_class} workloads/class)\n");
    for c in fig5::run(&args.opts, per_class) {
        println!(
            "class {} (workloads: {})",
            c.class.label(),
            c.workloads.join(", ")
        );
        for map in [&c.fairness, &c.performance] {
            let t = map.render();
            println!("{}", t.render());
            if args.csv {
                println!("{}", t.to_csv());
            }
        }
        let (fq, fs) = ClassContours::peak(&c.fairness.values);
        let (pq, ps) = ClassContours::peak(&c.performance.values);
        println!(
            "  fairness peak: quantum={}ms swapSize={}   performance peak: quantum={}ms swapSize={}\n",
            Heatmap::quanta_ms()[fq],
            Heatmap::swap_sizes()[fs],
            Heatmap::quanta_ms()[pq],
            Heatmap::swap_sizes()[ps],
        );
    }
}
