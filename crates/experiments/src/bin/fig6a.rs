//! Regenerates Figure 6a: fairness improvement over the Linux baseline for
//! DIO, Dike, Dike-AF and Dike-AP on all sixteen workloads.

use dike_experiments::{cli, fig6};

fn main() {
    let args = cli::from_env();
    let fig = fig6::run(&args.opts);
    let t = fig6::render_fairness(&fig);
    println!("Figure 6a — fairness improvement over Linux-CFS\n");
    print!("{}", t.render());
    if args.csv {
        print!("\n{}", t.to_csv());
    }
}
