//! Calibration scratchpad (not part of the paper reproduction): prints the
//! headline comparison for a few workloads so model parameters can be
//! sanity-checked quickly. Kept in-tree because it is the fastest way to
//! eyeball the simulator after a model change.

use dike_experiments::{run_cell, RunOptions, SchedKind};
use dike_machine::presets;
use dike_workloads::paper;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3);
    let cfg = presets::paper_machine(1);
    let opts = RunOptions {
        scale,
        deadline_s: 600.0,
        ..RunOptions::default()
    };
    println!(
        "{:<6} {:<10} {:>9} {:>9} {:>9} {:>7} {:>7} {:>5}",
        "wl", "sched", "fairness", "meanApp", "makespan", "swaps", "quanta", "done"
    );
    for n in [1usize, 9, 13] {
        let w = paper::workload(n);
        for kind in SchedKind::comparison_set() {
            let c = run_cell(&cfg, &w, &kind, &opts);
            println!(
                "{:<6} {:<10} {:>9.4} {:>9.2} {:>9.2} {:>7} {:>7} {:>5}  fairq={} prop={} rejP={} rejC={}",
                c.workload,
                c.scheduler,
                c.fairness,
                c.mean_app_runtime_s,
                c.makespan_s,
                c.swaps,
                c.quanta,
                c.completed,
                c.fair_quanta,
                c.pairs_proposed,
                c.rejected_profit,
                c.rejected_cooldown
            );
        }
        println!();
    }
}
