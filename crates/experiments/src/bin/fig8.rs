//! Regenerates Figure 8: the prediction-error trend over time for WL6 and
//! WL11 (per-quantum mean signed relative error).

use dike_experiments::{cli, fig8};

fn main() {
    let args = cli::from_env();
    println!("Figure 8 — prediction-error trend\n");
    for trace in fig8::run(&args.opts) {
        println!("{} ({} quanta scored)", trace.workload, trace.series.len());
        let t = fig8::render(&trace, 40);
        println!("{}", t.render());
        if args.csv {
            println!("{}", t.to_csv());
        }
    }
}
