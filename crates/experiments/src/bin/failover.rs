//! Fleet fault-tolerance driver: sweep crash rate × brownout rate ×
//! retry budget over the blind and health-aware dispatchers and record
//! the conservation ledger of every cell. See the `failover` module
//! docs.
//!
//! Flags:
//!
//! * `--seed <n>`    — fleet (arrival/dispatch) seed (default 42);
//! * `--quick`       — only the harshest cell pair (the smoke lap);
//! * `--json <path>` — also write the grid as JSON (the byte-identity
//!   artefact the determinism gate diffs);
//! * `--soak`        — long-churn soak instead of the grid: a 30 s
//!   arrival window under worst-case per-machine faults *and* heavy
//!   machine-scope crash/brownout churn, both dispatchers. Passes when
//!   no machine panics and conservation holds (asserted per run).

use dike_experiments::failover;
use dike_fleet::FleetRunner;
use dike_machine::FaultConfig;
use dike_util::{json, Pool};
use std::time::Instant;

struct Args {
    seed: u64,
    quick: bool,
    json_path: Option<String>,
    soak: bool,
}

fn parse() -> Result<Args, String> {
    let mut a = Args {
        seed: failover::FAILOVER_SEED,
        quick: false,
        json_path: None,
        soak: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a value")?;
                a.seed = v.parse().map_err(|e| format!("bad --seed {v:?}: {e}"))?;
            }
            "--quick" => a.quick = true,
            "--json" => a.json_path = Some(iter.next().ok_or("--json needs a path")?),
            "--soak" => a.soak = true,
            "--help" | "-h" => {
                return Err("flags: --seed <n> (default 42), --quick, --json <path>, --soak".into())
            }
            other => return Err(format!("unknown flag {other}; try --help")),
        }
    }
    Ok(a)
}

/// The soak lap: the smoke fleet stretched to a 30 s arrival window,
/// every machine carrying the worst-case per-machine fault plan, plus a
/// machine-scope fault stream well above the swept grid. Conservation is
/// asserted inside the run; surviving to the summary line *is* the pass.
fn soak(seed: u64, pool: &Pool) {
    let mut cfg = dike_experiments::fleet::smoke_config(seed);
    for (i, m) in cfg.machines.iter_mut().enumerate() {
        m.faults = FaultConfig::combined_worst(seed ^ (i as u64 + 1));
    }
    for t in &mut cfg.tenants {
        t.arrivals.horizon_ms = 30_000;
    }
    let runner = FleetRunner::new(cfg);
    for failover_on in [false, true] {
        let fo = dike_fleet::FailoverConfig {
            retry_budget: 3,
            failover: failover_on,
            faults: dike_machine::MachineFaultConfig::axis(0.3, 0.3, failover::FAILOVER_FAULT_SEED),
            ..Default::default()
        };
        let t0 = Instant::now();
        let r = runner.run_failover(pool, &fo);
        r.ledger
            .assert_holds(&format!("soak failover={failover_on}"));
        println!(
            "soak {}: {} epochs | dispatched {} drained {} in_flight {} lost {} | \
             quarantines {} readmissions {} | {:.1}s host",
            if failover_on { "failover" } else { "blind" },
            r.epochs,
            r.ledger.dispatched,
            r.ledger.drained,
            r.ledger.in_flight,
            r.ledger.lost,
            r.quarantines,
            r.readmissions,
            t0.elapsed().as_secs_f64()
        );
    }
    println!("soak passed: conservation held under combined worst-case faults");
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let pool = Pool::from_env();
    if args.soak {
        soak(args.seed, &pool);
        return;
    }
    let t0 = Instant::now();
    let points = if args.quick {
        failover::run_quick_pool(args.seed, &pool)
    } else {
        failover::run_grid_pool(args.seed, &pool)
    };
    let host_s = t0.elapsed().as_secs_f64();

    println!("Fleet failover — seed {}\n", args.seed);
    print!("{}", failover::render(&points).render());
    println!("\n{}", failover::summary(&points));
    println!("host wall-clock: {host_s:.1}s");
    if let Some(path) = args.json_path {
        std::fs::write(&path, json::to_string(&points) + "\n").expect("write --json");
        println!("wrote {path}");
    }
}
