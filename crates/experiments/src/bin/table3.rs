//! Regenerates Table III: swap counts per workload under DIO, Dike,
//! Dike-AF and Dike-AP.

use dike_experiments::{cli, table3};

fn main() {
    let args = cli::from_env();
    let t3 = table3::run(&args.opts);
    let t = table3::render(&t3);
    println!("Table III — swap counts\n");
    print!("{}", t.render());
    if args.csv {
        print!("\n{}", t.to_csv());
    }
}
