//! Regenerates Figure 6b: per-workload speedup over the Linux baseline for
//! DIO, Dike, Dike-AF and Dike-AP.

use dike_experiments::{cli, fig6};

fn main() {
    let args = cli::from_env();
    let fig = fig6::run(&args.opts);
    let t = fig6::render_performance(&fig);
    println!("Figure 6b — speedup over Linux-CFS (mean benchmark runtime)\n");
    print!("{}", t.render());
    if args.csv {
        print!("\n{}", t.to_csv());
    }
}
