//! Scale sweep: does the pipeline still deliver fairness when the machine
//! grows from the paper's 40 vcores to hundreds of cores spread across
//! multiple memory controllers?
//!
//! Each sweep point pairs a `k`-controller machine
//! ([`dike_machine::presets::numa_machine`], 40 vcores per domain) with the
//! paper's WL1 application mix replicated `k`× (plus the usual single
//! KMEANS background), so per-controller pressure stays comparable to the
//! paper machine while the global problem grows. Every point runs the full
//! Figure 6 comparison set; the `(point × scheduler)` cells are flattened
//! into one task list over the [`dike_util::pool`] workers, and results are
//! reassembled in input order so the output is byte-identical to a serial
//! run (the same contract as the Fig 2/4/5 sweeps).
//!
//! Host wall-clock per point is *not* part of the result struct — it would
//! break the parallel-determinism contract. `scripts/bench.sh` records it
//! separately into `results/BENCH_scale.json` via the `scale` bench target.

use crate::runner::{run_cell, CellResult, RunOptions, SchedKind};
use dike_machine::{presets, MachineConfig};
use dike_metrics::{relative_improvement, TextTable};
use dike_util::{json_struct, Pool};
use dike_workloads::{paper, Workload};

/// One machine size in the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Memory controllers (NUMA domains).
    pub domains: u32,
    /// Total virtual cores.
    pub vcores: u32,
    /// Threads the workload spawns.
    pub threads: u32,
    /// One result per scheduler of [`SchedKind::comparison_set`], in order.
    pub cells: Vec<CellResult>,
}

json_struct!(ScalePoint {
    domains,
    vcores,
    threads,
    cells,
});

/// The sweep's machine sizes: the paper machine plus 4-, 8-, 16- and
/// 26-controller scale-ups (40 / 160 / 320 / 640 / 1040 vcores). The two
/// largest cells exist to demonstrate sub-quadratic growth of the
/// hierarchical selection + incremental contention-solve pipeline.
pub const SCALE_DOMAINS: [u32; 5] = [1, 4, 8, 16, 26];

/// The paper's WL1 mix replicated `k`×, plus one KMEANS background — sized
/// so a `k`-domain machine sees the paper machine's per-controller load.
pub fn scale_workload(k: usize) -> Workload {
    assert!(k >= 1, "need at least one mix replica");
    let mut apps = Vec::with_capacity(4 * k);
    for _ in 0..k {
        apps.extend(paper::TABLE2[0]);
    }
    Workload::with_kmeans(format!("WL1x{k}"), apps)
}

/// Machine configuration for `domains` controllers (1 = the paper machine,
/// byte-identical to [`presets::paper_machine`]).
pub fn scale_machine(domains: u32, seed: u64) -> MachineConfig {
    if domains == 1 {
        presets::paper_machine(seed)
    } else {
        presets::numa_machine(domains as usize, seed)
    }
}

/// Run the comparison set at every size in [`SCALE_DOMAINS`] on the
/// environment-sized pool.
pub fn run_scale(opts: &RunOptions) -> Vec<ScalePoint> {
    run_scale_points_pool(&SCALE_DOMAINS, opts, &Pool::from_env())
}

/// Run the comparison set at explicit machine sizes on an explicit pool
/// (tests pin both).
pub fn run_scale_points_pool(domains: &[u32], opts: &RunOptions, pool: &Pool) -> Vec<ScalePoint> {
    let kinds = SchedKind::comparison_set();
    let machines: Vec<MachineConfig> = domains
        .iter()
        .map(|&d| scale_machine(d, opts.seed))
        .collect();
    let workloads: Vec<Workload> = domains
        .iter()
        .map(|&d| scale_workload(d as usize))
        .collect();
    let per = kinds.len();
    let results = pool.map_indexed(domains.len() * per, |task| {
        let (p, s) = (task / per, task % per);
        run_cell(&machines[p], &workloads[p], &kinds[s], opts)
    });
    let mut iter = results.into_iter();
    domains
        .iter()
        .zip(&machines)
        .zip(&workloads)
        .map(|((&d, m), w)| ScalePoint {
            domains: d,
            vcores: m.topology.num_vcores() as u32,
            threads: w.num_threads() as u32,
            cells: (0..per)
                .map(|_| iter.next().expect("cell present"))
                .collect(),
        })
        .collect()
}

/// Render the sweep: per machine size, each policy's fairness improvement
/// over the Linux baseline plus Dike's makespan.
pub fn render(points: &[ScalePoint]) -> TextTable {
    let kinds = SchedKind::comparison_set();
    let mut header = vec!["machine".to_string(), "threads".to_string()];
    for k in kinds.iter().skip(1) {
        header.push(format!("{} Δfairness", k.label()));
    }
    header.push("Dike makespan(s)".into());
    let mut t = TextTable::new(header);
    for p in points {
        let baseline = &p.cells[0];
        let mut row = vec![
            format!("{}dom/{}c", p.domains, p.vcores),
            p.threads.to_string(),
        ];
        for c in p.cells.iter().skip(1) {
            let d = relative_improvement(c.fairness, baseline.fairness);
            row.push(format!("{:+.1}%", d * 100.0));
        }
        let dike = p
            .cells
            .iter()
            .find(|c| c.scheduler == "Dike")
            .expect("Dike in comparison set");
        row.push(format!("{:.1}", dike.makespan_s));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_workloads_fit_their_machines() {
        for &d in &SCALE_DOMAINS {
            let m = scale_machine(d, 42);
            let w = scale_workload(d as usize);
            assert!(
                w.num_threads() <= m.topology.num_vcores(),
                "{}dom: {} threads > {} vcores",
                d,
                w.num_threads(),
                m.topology.num_vcores()
            );
            assert_eq!(m.topology.num_domains(), d as usize);
            assert_eq!(m.topology.num_vcores(), 40 * d as usize);
        }
        // The 1-domain point is the paper machine and workload scale.
        assert_eq!(scale_workload(1).num_threads(), 40);
        assert_eq!(scale_workload(8).num_threads(), 264);
        assert_eq!(scale_workload(16).num_threads(), 520);
        assert_eq!(scale_workload(26).num_threads(), 840);
    }

    #[test]
    fn small_scale_sweep_runs_the_comparison_set() {
        let opts = RunOptions {
            scale: 0.02,
            deadline_s: 60.0,
            ..RunOptions::default()
        };
        let points = run_scale_points_pool(&[1, 2], &opts, &Pool::new(2));
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].vcores, 40);
        assert_eq!(points[1].vcores, 80);
        assert_eq!(points[1].threads, 72);
        for p in &points {
            assert_eq!(p.cells.len(), SchedKind::comparison_set().len());
            for c in &p.cells {
                assert!(
                    c.completed,
                    "{}dom {} hit the deadline",
                    p.domains, c.scheduler
                );
                assert!(c.fairness > 0.0 && c.fairness <= 1.0);
            }
        }
        let t = render(&points);
        assert_eq!(t.len(), 2);
    }
}
