//! Robustness experiment: degradation curves under injected faults.
//!
//! The paper assumes perfect telemetry and instant, reliable actuation.
//! Real machines offer neither: counters drop samples, return garbage, or
//! replay stale values; affinity requests fail or land late. This
//! experiment sweeps seeded fault rates along two axes — telemetry
//! (dropout + corruption + stale replay + noise) and actuation (failed +
//! delayed migrations) — plus one combined worst-case point, and runs the
//! comparison set (CFS, DIO, paper Dike, hardened Dike-H) through each
//! level on WL1. Every cell reports the whole-run fairness (Eqn 4) and
//! the windowed fairness series, so the output is a degradation curve per
//! policy: how gracefully does fairness decay as the fault rate climbs?
//!
//! The zero-fault points use an all-zero [`FaultConfig`], which the driver
//! treats as "layer absent" — those cells are byte-identical to the
//! ordinary Figure 6 cells (the golden-stability suite proves it).
//!
//! Cells are flattened into one task list over the [`dike_util::pool`]
//! workers and reassembled in input order, so output is byte-identical to
//! a serial run at any `DIKE_THREADS` — the same contract as every other
//! experiment in this crate.

use crate::open::drive_open;
use crate::runner::{RunOptions, SchedKind};
use dike_machine::{presets, FaultConfig, Machine, MachineConfig, SimTime};
use dike_metrics::{mean, windowed_fairness, RuntimeMatrix, TextTable, ThreadSpan};
use dike_scheduler::SchedConfig;
use dike_util::{json_struct, Pool};
use dike_workloads::paper;

/// Telemetry-axis fault levels: the dropout rate; corruption, stale
/// replay, and noise ride along at half that (see
/// [`FaultConfig::telemetry_axis`]).
pub const TELEMETRY_LEVELS: [f64; 4] = [0.0, 0.10, 0.20, 0.30];

/// Actuation-axis fault levels: the migration-failure rate; delayed
/// migrations ride along at half that (see [`FaultConfig::actuation_axis`]).
pub const ACTUATION_LEVELS: [f64; 3] = [0.0, 0.05, 0.10];

/// Sliding-window length for windowed fairness, in seconds (matches the
/// open experiment).
pub const WINDOW_S: f64 = 5.0;

/// Window step (half-overlapping windows), in seconds.
pub const WINDOW_STEP_S: f64 = 2.5;

/// The robustness comparison set: the unhardened paper pipeline against
/// its hardened sibling, with the CFS and DIO baselines for context.
pub fn robustness_comparison_set() -> Vec<SchedKind> {
    vec![
        SchedKind::Cfs,
        SchedKind::Dio,
        SchedKind::Dike(SchedConfig::DEFAULT),
        SchedKind::DikeHardened,
    ]
}

/// One `(fault level × scheduler)` cell of the robustness experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessPoint {
    /// Which fault axis this level belongs to: `telemetry`, `actuation`,
    /// or `combined`.
    pub axis: String,
    /// The axis' primary fault rate (dropout for telemetry, migration
    /// failure for actuation).
    pub level: f64,
    /// Scheduler label.
    pub scheduler: String,
    /// Whole-run fairness (Eqn 4) over benchmark apps.
    pub fairness: f64,
    /// Mean of the per-window fairness scores over the run.
    pub mean_windowed_fairness: f64,
    /// Worst window of the run.
    pub min_windowed_fairness: f64,
    /// Mean benchmark-app runtime (seconds).
    pub mean_app_runtime_s: f64,
    /// Completion time of the last thread (or the deadline).
    pub makespan_s: f64,
    /// Swap operations performed.
    pub swaps: u64,
    /// Whether all threads finished before the deadline.
    pub completed: bool,
}

json_struct!(RobustnessPoint {
    axis,
    level,
    scheduler,
    fairness,
    mean_windowed_fairness,
    min_windowed_fairness,
    mean_app_runtime_s,
    makespan_s,
    swaps,
    completed,
});

/// Run one robustness cell: WL1, closed, on a machine whose config
/// carries the cell's [`FaultConfig`].
pub fn run_robustness_cell(
    axis: &str,
    level: f64,
    machine_cfg: &MachineConfig,
    kind: &SchedKind,
    opts: &RunOptions,
) -> RobustnessPoint {
    let mut cfg = machine_cfg.clone();
    cfg.seed = opts.seed;
    let mut machine = Machine::new(cfg);
    let workload = paper::workload(1);
    let spawned = workload.spawn(&mut machine, opts.placement, opts.scale);
    let deadline = SimTime::from_secs_f64(opts.deadline_s);
    // Closed run through the open driver with an empty arrival plan —
    // byte-identical to the closed loop (the golden suite enforces it).
    let result = drive_open(&mut machine, kind, deadline, vec![]);

    let bench_apps = spawned.benchmark_apps();
    let per_app: Vec<Vec<f64>> = bench_apps
        .iter()
        .map(|a| result.app_runtimes(a.0))
        .collect();
    let matrix = RuntimeMatrix::new(per_app);

    let wall = result.wall.as_secs_f64();
    let spans: Vec<ThreadSpan> = result
        .threads
        .iter()
        .map(|t| ThreadSpan {
            app: t.app,
            spawned_at: t.spawned_at.as_secs_f64(),
            finished_at: t.finished_at.map(|f| f.as_secs_f64()),
        })
        .collect();
    let windows = windowed_fairness(&spans, WINDOW_S, WINDOW_STEP_S, wall.max(WINDOW_S));
    let fair: Vec<f64> = windows.iter().map(|w| w.fairness).collect();

    RobustnessPoint {
        axis: axis.to_string(),
        level,
        scheduler: kind.label(),
        fairness: matrix.fairness(),
        mean_windowed_fairness: mean(&fair),
        min_windowed_fairness: fair.iter().copied().fold(f64::INFINITY, f64::min),
        mean_app_runtime_s: matrix.mean_app_runtime(),
        makespan_s: wall,
        swaps: result.swaps,
        completed: result.completed,
    }
}

/// The swept `(axis, level, FaultConfig)` grid: every telemetry level,
/// every actuation level, plus the combined worst case.
pub fn fault_grid(
    telemetry: &[f64],
    actuation: &[f64],
    combined: bool,
    seed: u64,
) -> Vec<(String, f64, FaultConfig)> {
    let mut grid: Vec<(String, f64, FaultConfig)> = Vec::new();
    for &d in telemetry {
        grid.push(("telemetry".into(), d, FaultConfig::telemetry_axis(d, seed)));
    }
    for &f in actuation {
        grid.push(("actuation".into(), f, FaultConfig::actuation_axis(f, seed)));
    }
    if combined {
        grid.push(("combined".into(), 0.30, FaultConfig::combined_worst(seed)));
    }
    grid
}

/// Run the full degradation sweep on the environment-sized pool.
pub fn run_robustness_experiment(opts: &RunOptions) -> Vec<RobustnessPoint> {
    run_robustness_pool(
        &TELEMETRY_LEVELS,
        &ACTUATION_LEVELS,
        true,
        opts,
        &Pool::from_env(),
    )
}

/// Run the sweep over explicit fault levels on an explicit pool (tests pin
/// both). Cells fan out in `(level, scheduler)` order and come back in
/// input order — byte-identical at any worker count.
pub fn run_robustness_pool(
    telemetry: &[f64],
    actuation: &[f64],
    combined: bool,
    opts: &RunOptions,
    pool: &Pool,
) -> Vec<RobustnessPoint> {
    let kinds = robustness_comparison_set();
    let grid = fault_grid(telemetry, actuation, combined, opts.seed);
    let base = presets::paper_machine(opts.seed);
    let per = kinds.len();
    pool.map_indexed(grid.len() * per, |task| {
        let (g, s) = (task / per, task % per);
        let (axis, level, faults) = &grid[g];
        let mut cfg = base.clone();
        cfg.faults = *faults;
        run_robustness_cell(axis, *level, &cfg, &kinds[s], opts)
    })
}

/// Render the sweep as a degradation-curve table.
pub fn render(points: &[RobustnessPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "axis".to_string(),
        "level".to_string(),
        "scheduler".to_string(),
        "fairness".to_string(),
        "fair(win)".to_string(),
        "fair(min)".to_string(),
        "runtime(s)".to_string(),
        "swaps".to_string(),
        "done".to_string(),
    ]);
    for p in points {
        t.row(vec![
            p.axis.clone(),
            format!("{:.2}", p.level),
            p.scheduler.clone(),
            format!("{:.3}", p.fairness),
            format!("{:.3}", p.mean_windowed_fairness),
            format!("{:.3}", p.min_windowed_fairness),
            format!("{:.2}", p.mean_app_runtime_s),
            p.swaps.to_string(),
            if p.completed { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_util::json;

    fn small_opts() -> RunOptions {
        RunOptions {
            scale: 0.05,
            deadline_s: 240.0,
            ..RunOptions::default()
        }
    }

    #[test]
    fn zero_fault_cell_is_byte_identical_to_a_faultless_run() {
        // telemetry_axis(0.0) keeps every rate at zero, so the driver must
        // take the exact pre-fault code path: the cell serializes to the
        // same bytes as one run on a machine with no fault config at all.
        let opts = small_opts();
        let base = presets::paper_machine(opts.seed);
        let kind = SchedKind::Dike(SchedConfig::DEFAULT);
        let plain = run_robustness_cell("telemetry", 0.0, &base, &kind, &opts);
        let mut faulted_cfg = base.clone();
        faulted_cfg.faults = FaultConfig::telemetry_axis(0.0, opts.seed);
        let faulted = run_robustness_cell("telemetry", 0.0, &faulted_cfg, &kind, &opts);
        assert_eq!(json::to_string(&plain), json::to_string(&faulted));
    }

    #[test]
    fn sweep_reports_all_cells_in_order_with_finite_metrics() {
        let opts = small_opts();
        let points = run_robustness_pool(&[0.0, 0.30], &[0.10], true, &opts, &Pool::new(2));
        let per = robustness_comparison_set().len();
        assert_eq!(points.len(), 4 * per);
        for p in &points {
            assert!(
                p.completed,
                "{} @ {}:{}: hit deadline",
                p.scheduler, p.axis, p.level
            );
            assert!(p.fairness.is_finite() && p.fairness <= 1.0, "{p:?}");
            assert!(p.mean_windowed_fairness.is_finite(), "{p:?}");
            assert!(p.min_windowed_fairness.is_finite(), "{p:?}");
            assert!(p.mean_app_runtime_s.is_finite() && p.mean_app_runtime_s > 0.0);
        }
        // Serialization round-trip (results are archived as JSON).
        let s = json::to_string(&points[0]);
        let back: RobustnessPoint = json::from_str(&s).unwrap();
        assert_eq!(back, points[0]);
    }

    #[test]
    fn hardened_dike_degrades_more_gracefully_than_unhardened() {
        // The ISSUE's headline acceptance: at >= 10% counter dropout the
        // hardened pipeline retains strictly higher windowed fairness than
        // the trusting paper pipeline. Averaged over three machine seeds
        // so the comparison measures the pipeline, not one seed's phase
        // noise; everything is deterministic, so this cannot flake.
        let mut plain = 0.0;
        let mut hard = 0.0;
        for seed in [42, 43, 44] {
            let opts = RunOptions {
                seed,
                ..small_opts()
            };
            let mut cfg = presets::paper_machine(seed);
            cfg.faults = FaultConfig::telemetry_axis(0.10, seed);
            let kind = SchedKind::Dike(SchedConfig::DEFAULT);
            plain +=
                run_robustness_cell("telemetry", 0.10, &cfg, &kind, &opts).mean_windowed_fairness;
            let cell =
                run_robustness_cell("telemetry", 0.10, &cfg, &SchedKind::DikeHardened, &opts);
            hard += cell.mean_windowed_fairness;
        }
        assert!(
            hard > plain,
            "hardened {:.4} <= unhardened {:.4} (mean windowed fairness x3 seeds)",
            hard / 3.0,
            plain / 3.0
        );
    }
}
