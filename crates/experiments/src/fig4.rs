//! Figure 4: heatmaps of normalised fairness/performance over the full
//! 8×4 ⟨swapSize, quantaLength⟩ grid for two selected workloads.

use crate::runner::RunOptions;
use crate::sweep::Sweep;
use dike_machine::presets;
use dike_metrics::TextTable;
use dike_scheduler::config::{QUANTA_LADDER_MS, SWAP_SIZE_MAX, SWAP_SIZE_MIN};
use dike_workloads::paper;

/// A rendered heatmap: rows = quanta ladder, columns = swap sizes, values
/// normalised to the grid's best cell (1.0).
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    /// Workload name.
    pub workload: String,
    /// `"fairness"` or `"performance"`.
    pub metric: &'static str,
    /// `values[quantum_rung][swap_rung]` in `[0, 1]`.
    pub values: Vec<Vec<f64>>,
}

impl Heatmap {
    /// Swap-size axis labels.
    pub fn swap_sizes() -> Vec<u32> {
        (SWAP_SIZE_MIN..=SWAP_SIZE_MAX).step_by(2).collect()
    }

    /// Quantum axis labels (ms).
    pub fn quanta_ms() -> Vec<u64> {
        QUANTA_LADDER_MS.to_vec()
    }

    /// Render as a table with one row per quantum.
    pub fn render(&self) -> TextTable {
        let mut header = vec![format!("{} {}", self.workload, self.metric)];
        header.extend(Self::swap_sizes().iter().map(|s| format!("ss={s}")));
        let mut t = TextTable::new(header);
        for (qi, q) in Self::quanta_ms().iter().enumerate() {
            let mut row = vec![format!("q={q}ms")];
            row.extend(self.values[qi].iter().map(|v| format!("{v:.3}")));
            t.row(row);
        }
        t
    }
}

/// Build both heatmaps (fairness + performance) from one sweep.
///
/// Grid order from [`dike_scheduler::SchedConfig::grid`] is quantum-major,
/// so cell `(qi, si)` is index `qi * 8 + si`.
pub fn heatmaps(sweep: &Sweep) -> (Heatmap, Heatmap) {
    let n_swaps = Heatmap::swap_sizes().len();
    let shape = |values: Vec<f64>| -> Vec<Vec<f64>> {
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        values
            .chunks(n_swaps)
            .map(|row| row.iter().map(|v| v / max).collect())
            .collect()
    };
    let fairness = shape(sweep.cells.iter().map(|c| c.result.fairness).collect());
    let speed = shape(sweep.speedups());
    (
        Heatmap {
            workload: sweep.workload.clone(),
            metric: "fairness",
            values: fairness,
        },
        Heatmap {
            workload: sweep.workload.clone(),
            metric: "performance",
            values: speed,
        },
    )
}

/// The two selected workloads (one balanced, one unbalanced).
pub const SELECTED: [usize; 2] = [3, 9];

/// Run the Figure 4 experiment: both workloads' sweeps share one
/// flattened parallel task list.
pub fn run(opts: &RunOptions) -> Vec<Heatmap> {
    let cfg = presets::paper_machine(opts.seed);
    let workloads: Vec<_> = SELECTED.iter().map(|&n| paper::workload(n)).collect();
    let mut out = Vec::new();
    for sweep in crate::sweep::sweep_workloads_parallel(&cfg, &workloads, opts) {
        let (f, p) = heatmaps(&sweep);
        out.push(f);
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep_workload;

    #[test]
    fn heatmaps_are_normalised_grids() {
        let opts = RunOptions {
            scale: 0.02,
            deadline_s: 60.0,
            ..RunOptions::default()
        };
        let cfg = presets::paper_machine(1);
        let sweep = sweep_workload(&cfg, &paper::workload(3), &opts);
        let (f, p) = heatmaps(&sweep);
        for h in [&f, &p] {
            assert_eq!(h.values.len(), 4);
            assert!(h.values.iter().all(|r| r.len() == 8));
            let max = h.values.iter().flatten().copied().fold(f64::MIN, f64::max);
            assert!((max - 1.0).abs() < 1e-12, "{} max {max}", h.metric);
            assert!(h.values.iter().flatten().all(|&v| v > 0.0 && v <= 1.0));
            let t = h.render();
            assert_eq!(t.len(), 4);
        }
    }
}
