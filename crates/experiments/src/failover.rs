//! Failover experiment: fleet fault tolerance under machine-scope
//! faults, swept over crash rate × brownout rate × retry budget for both
//! dispatchers.
//!
//! Every cell runs the same smoke fleet (8 machines, 12 tenants, 10 s
//! arrival window — [`crate::fleet::smoke_config`]) through the
//! epoch-driven loop ([`dike_fleet::FleetRunner::run_failover`]) twice:
//! once with the blind decayed-load dispatcher (`failover: false`, the
//! no-failover baseline that keeps routing into dead machines) and once
//! with the health-aware dispatcher (quarantine, orphan re-dispatch with
//! bounded retry, decayed-trust re-admission). The recorded claim is the
//! conservation ledger per cell — `dispatched = drained + in_flight +
//! lost` at every fault level — and that whenever crashes actually
//! strand work, failover loses strictly fewer threads than the blind
//! baseline at the same fault stream.
//!
//! The fault stream is seeded independently of the fleet seed
//! ([`FAILOVER_FAULT_SEED`]) so the arrival/dispatch side of a cell is
//! identical across the whole grid; only the machine-fault channel
//! changes between cells.

use crate::fleet;
use dike_fleet::{FailoverConfig, FailoverResult, FleetRunner};
use dike_machine::MachineFaultConfig;
use dike_metrics::TextTable;
use dike_util::{json_struct, Pool};

/// Crash probabilities per (machine, epoch) swept by the grid.
pub const FAILOVER_CRASH_RATES: [f64; 3] = [0.0, 0.08, 0.2];

/// Brownout probabilities per (machine, epoch) swept by the grid.
pub const FAILOVER_BROWNOUT_RATES: [f64; 2] = [0.0, 0.15];

/// Orphan re-dispatch budgets swept by the grid.
pub const FAILOVER_BUDGETS: [u32; 2] = [0, 2];

/// Fleet (arrival/dispatch) seed — the same smoke fleet in every cell.
pub const FAILOVER_SEED: u64 = 42;

/// Machine-fault stream seed, independent of the fleet seed.
pub const FAILOVER_FAULT_SEED: u64 = 1009;

/// Epoch length of the failover loop, milliseconds.
pub const FAILOVER_EPOCH_MS: u64 = 2_000;

/// One grid cell: a (crash, brownout, budget, dispatcher) tuple and the
/// scalars its run reduced to. The full conservation balance sheet rides
/// along so the recorded artefact *is* the invariant, not a summary of
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverPoint {
    /// Crash probability per (machine, epoch).
    pub crash_rate: f64,
    /// Brownout probability per (machine, epoch).
    pub brownout_rate: f64,
    /// Orphan re-dispatch budget.
    pub retry_budget: u32,
    /// Health-aware dispatcher on (`false` = blind baseline).
    pub failover: bool,
    /// Threads offered to the fleet.
    pub dispatched: u64,
    /// Threads that finished.
    pub drained: u64,
    /// Threads admitted/queued/orphaned but unfinished at run end.
    pub in_flight: u64,
    /// Threads explicitly lost (stranded on dead machines, routed into
    /// one, or re-dispatch budget exhausted).
    pub lost: u64,
    /// Hard crashes the fault stream dealt this cell.
    pub crashes: u64,
    /// Brownout windows entered.
    pub brownouts: u64,
    /// Quarantine decisions at epoch barriers.
    pub quarantines: u64,
    /// Recovered machines re-admitted to routing.
    pub readmissions: u64,
    /// Events orphaned off crashed machines.
    pub orphaned: u64,
    /// Orphaned events re-dispatched to a healthy peer.
    pub redispatched: u64,
    /// Epochs the loop actually executed.
    pub epochs: u64,
    /// Mean windowed fleet fairness (Eqn 4 per window, by tenant).
    pub mean_windowed_fairness: f64,
    /// Mean sojourn over admitted threads, seconds.
    pub mean_sojourn_s: f64,
    /// Fleet wall, seconds.
    pub makespan_s: f64,
}

json_struct!(FailoverPoint {
    crash_rate,
    brownout_rate,
    retry_budget,
    failover,
    dispatched,
    drained,
    in_flight,
    lost,
    crashes,
    brownouts,
    quarantines,
    readmissions,
    orphaned,
    redispatched,
    epochs,
    mean_windowed_fairness,
    mean_sojourn_s,
    makespan_s,
});

/// The failover knobs for one cell.
pub fn cell_config(crash: f64, brownout: f64, budget: u32, failover: bool) -> FailoverConfig {
    FailoverConfig {
        epoch_ms: FAILOVER_EPOCH_MS,
        failover,
        retry_budget: budget,
        faults: MachineFaultConfig::axis(crash, brownout, FAILOVER_FAULT_SEED),
        ..FailoverConfig::default()
    }
}

/// Reduce a full [`FailoverResult`] to its recorded grid point.
fn reduce(fo: &FailoverConfig, r: &FailoverResult) -> FailoverPoint {
    FailoverPoint {
        crash_rate: fo.faults.crash_rate,
        brownout_rate: fo.faults.brownout_rate,
        retry_budget: fo.retry_budget,
        failover: fo.failover,
        dispatched: r.ledger.dispatched,
        drained: r.ledger.drained,
        in_flight: r.ledger.in_flight,
        lost: r.ledger.lost,
        crashes: r.machines.iter().map(|m| m.crashes).sum(),
        brownouts: r.machines.iter().map(|m| m.brownouts).sum(),
        quarantines: r.quarantines,
        readmissions: r.readmissions,
        orphaned: r.orphaned,
        redispatched: r.redispatched,
        epochs: r.epochs,
        mean_windowed_fairness: r.mean_windowed_fairness,
        mean_sojourn_s: r.mean_sojourn_s,
        makespan_s: r.makespan_s,
    }
}

/// Run one cell of the grid on the shared smoke fleet.
pub fn run_cell_pool(
    runner: &FleetRunner,
    crash: f64,
    brownout: f64,
    budget: u32,
    failover: bool,
    pool: &Pool,
) -> FailoverPoint {
    let fo = cell_config(crash, brownout, budget, failover);
    let r = runner.run_failover(pool, &fo);
    r.ledger
        .assert_holds(&format!("failover cell c={crash} b={brownout} k={budget}"));
    reduce(&fo, &r)
}

/// The full crash × brownout × budget × dispatcher grid, in deterministic
/// row order (crash-major, dispatcher last: the blind baseline of a cell
/// immediately precedes its failover twin).
pub fn run_grid_pool(seed: u64, pool: &Pool) -> Vec<FailoverPoint> {
    let runner = FleetRunner::new(fleet::smoke_config(seed));
    let mut points = Vec::new();
    for &c in &FAILOVER_CRASH_RATES {
        for &b in &FAILOVER_BROWNOUT_RATES {
            for &k in &FAILOVER_BUDGETS {
                for failover in [false, true] {
                    points.push(run_cell_pool(&runner, c, b, k, failover, pool));
                }
            }
        }
    }
    points
}

/// The quick pair for smoke laps and the bench: the harshest cell
/// (maximum swept crash + brownout, full budget) under both dispatchers.
pub fn run_quick_pool(seed: u64, pool: &Pool) -> Vec<FailoverPoint> {
    let runner = FleetRunner::new(fleet::smoke_config(seed));
    let c = FAILOVER_CRASH_RATES[FAILOVER_CRASH_RATES.len() - 1];
    let b = FAILOVER_BROWNOUT_RATES[FAILOVER_BROWNOUT_RATES.len() - 1];
    let k = FAILOVER_BUDGETS[FAILOVER_BUDGETS.len() - 1];
    vec![
        run_cell_pool(&runner, c, b, k, false, pool),
        run_cell_pool(&runner, c, b, k, true, pool),
    ]
}

/// Grid table for the binary's stdout.
pub fn render(points: &[FailoverPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "crash".to_string(),
        "brownout".to_string(),
        "budget".to_string(),
        "dispatcher".to_string(),
        "dispatched".to_string(),
        "drained".to_string(),
        "in_flight".to_string(),
        "lost".to_string(),
        "crashes".to_string(),
        "redisp".to_string(),
        "fairness".to_string(),
    ]);
    for p in points {
        t.row(vec![
            format!("{:.2}", p.crash_rate),
            format!("{:.2}", p.brownout_rate),
            p.retry_budget.to_string(),
            if p.failover { "failover" } else { "blind" }.to_string(),
            p.dispatched.to_string(),
            p.drained.to_string(),
            p.in_flight.to_string(),
            p.lost.to_string(),
            p.crashes.to_string(),
            p.redispatched.to_string(),
            format!("{:.3}", p.mean_windowed_fairness),
        ]);
    }
    t
}

/// One-paragraph summary: total lost per dispatcher over the faulted
/// cells, the headline fault-tolerance claim.
pub fn summary(points: &[FailoverPoint]) -> String {
    let lost = |fo: bool| -> u64 {
        points
            .iter()
            .filter(|p| p.failover == fo && p.crash_rate > 0.0)
            .map(|p| p.lost)
            .sum()
    };
    let cells = points.len();
    format!(
        "failover grid: {cells} cells | lost under crashes: blind {} vs failover {} | \
         conservation held in every cell",
        lost(false),
        lost(true)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_util::json;

    #[test]
    fn quick_pair_conserves_and_failover_loses_fewer() {
        let pts = run_quick_pool(FAILOVER_SEED, &Pool::new(1));
        assert_eq!(pts.len(), 2);
        let (blind, fo) = (&pts[0], &pts[1]);
        assert!(!blind.failover && fo.failover);
        // The harsh cell must actually exercise the fault machinery…
        assert!(blind.crashes > 0, "no crashes drawn in the harsh cell");
        assert!(blind.lost > 0, "blind baseline lost nothing to crashes");
        // …and the tentpole claim holds strictly there.
        assert!(
            fo.lost < blind.lost,
            "failover lost {} vs blind {}",
            fo.lost,
            blind.lost
        );
        assert!(fo.redispatched > 0, "failover never re-dispatched");
        for p in &pts {
            assert_eq!(p.dispatched, p.drained + p.in_flight + p.lost);
        }
        // JSON round-trip for the recorded artefact.
        let s = json::to_string(&pts);
        let back: Vec<FailoverPoint> = json::from_str(&s).expect("round-trip");
        assert_eq!(back, pts);
    }

    #[test]
    fn grid_conserves_everywhere_and_zero_fault_cells_lose_nothing() {
        let pts = run_grid_pool(FAILOVER_SEED, &Pool::new(1));
        let expected =
            FAILOVER_CRASH_RATES.len() * FAILOVER_BROWNOUT_RATES.len() * FAILOVER_BUDGETS.len() * 2;
        assert_eq!(pts.len(), expected);
        for p in &pts {
            assert_eq!(
                p.dispatched,
                p.drained + p.in_flight + p.lost,
                "conservation violated at c={} b={} k={} fo={}",
                p.crash_rate,
                p.brownout_rate,
                p.retry_budget,
                p.failover
            );
            assert!(p.dispatched > 0);
            if p.crash_rate == 0.0 {
                assert_eq!(p.lost, 0, "no crashes, nothing may be lost");
            } else {
                assert!(
                    p.crashes > 0,
                    "crash cell c={} drew no crashes",
                    p.crash_rate
                );
            }
        }
        // Cell-by-cell: failover never loses more than its blind twin,
        // and strictly fewer wherever the blind baseline lost anything.
        for pair in pts.chunks(2) {
            let (blind, fo) = (&pair[0], &pair[1]);
            assert!(!blind.failover && fo.failover);
            assert!(
                fo.lost <= blind.lost,
                "failover lost more at c={} b={} k={}: {} vs {}",
                blind.crash_rate,
                blind.brownout_rate,
                blind.retry_budget,
                fo.lost,
                blind.lost
            );
            if blind.lost > 0 && fo.retry_budget > 0 {
                assert!(
                    fo.lost < blind.lost,
                    "failover not strictly better at c={} b={} k={}",
                    blind.crash_rate,
                    blind.brownout_rate,
                    blind.retry_budget
                );
            }
        }
    }
}
