//! Configuration-grid sweeps over ⟨swapSize, quantaLength⟩ — the engine
//! behind Figures 2, 4 and 5.
//!
//! Every cell of a sweep is independent, so the drivers shard cells across
//! the [`dike_util::pool`] workers. Results are reassembled in
//! [`SchedConfig::grid`] order regardless of completion order, which makes
//! the parallel output — including its serialized JSON — byte-identical to
//! the serial path (`DIKE_THREADS=1`).

use crate::runner::{run_cell, CellResult, RunOptions, SchedKind};
use dike_machine::MachineConfig;
use dike_metrics::relative_improvement;
use dike_scheduler::SchedConfig;
use dike_util::{json_struct, Pool};
use dike_workloads::Workload;

/// One grid cell: a configuration and its measured outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// The configuration.
    pub config: SchedConfig,
    /// Full cell result.
    pub result: CellResult,
}

json_struct!(SweepCell { config, result });

/// A full 32-point sweep for one workload, plus the baseline cell used for
/// normalisation.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Workload name.
    pub workload: String,
    /// Baseline (Linux-CFS) result.
    pub baseline: CellResult,
    /// One cell per configuration, in [`SchedConfig::grid`] order.
    pub cells: Vec<SweepCell>,
}

json_struct!(Sweep {
    workload,
    baseline,
    cells,
});

impl Sweep {
    /// Fairness improvement over the baseline for each cell.
    pub fn fairness_improvements(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|c| relative_improvement(c.result.fairness, self.baseline.fairness))
            .collect()
    }

    /// Speedup over the baseline (mean benchmark-app runtime) per cell.
    pub fn speedups(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|c| self.baseline.mean_app_runtime_s / c.result.mean_app_runtime_s)
            .collect()
    }

    /// Index of the best cell by fairness.
    pub fn best_fairness(&self) -> usize {
        argmax(
            &self
                .cells
                .iter()
                .map(|c| c.result.fairness)
                .collect::<Vec<_>>(),
        )
    }

    /// Index of the worst cell by fairness.
    pub fn worst_fairness(&self) -> usize {
        argmin(
            &self
                .cells
                .iter()
                .map(|c| c.result.fairness)
                .collect::<Vec<_>>(),
        )
    }

    /// Index of the best cell by performance (lowest mean app runtime).
    pub fn best_performance(&self) -> usize {
        argmin(
            &self
                .cells
                .iter()
                .map(|c| c.result.mean_app_runtime_s)
                .collect::<Vec<_>>(),
        )
    }

    /// Index of the worst cell by performance.
    pub fn worst_performance(&self) -> usize {
        argmax(
            &self
                .cells
                .iter()
                .map(|c| c.result.mean_app_runtime_s)
                .collect::<Vec<_>>(),
        )
    }

    /// The cell for a specific configuration.
    pub fn cell(&self, config: SchedConfig) -> Option<&SweepCell> {
        self.cells.iter().find(|c| c.config == config)
    }
}

// `total_cmp` instead of `partial_cmp(..).expect("finite")`: a NaN-poisoned
// cell (e.g. a degenerate runtime matrix) must yield *some* index, never a
// panic deep inside a figure driver. NaN sorts above +inf in the total
// order, so argmax prefers it; callers that care filter beforehand.
fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty sweep")
}

fn argmin(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty sweep")
}

/// Sweep all 32 configurations of one workload with non-adaptive Dike,
/// sharding the 33 cells (baseline + grid) across the environment-sized
/// pool.
pub fn sweep_workload(
    machine_cfg: &MachineConfig,
    workload: &Workload,
    opts: &RunOptions,
) -> Sweep {
    sweep_workload_pool(machine_cfg, workload, opts, &Pool::from_env())
}

/// [`sweep_workload`] on an explicit pool (tests pin the thread count).
pub fn sweep_workload_pool(
    machine_cfg: &MachineConfig,
    workload: &Workload,
    opts: &RunOptions,
    pool: &Pool,
) -> Sweep {
    let grid = SchedConfig::grid();
    // Task 0 is the CFS baseline; tasks 1..=32 are the grid cells, so the
    // slowest cell no longer serializes behind the whole grid.
    let mut results = pool.map_indexed(grid.len() + 1, |i| {
        if i == 0 {
            run_cell(machine_cfg, workload, &SchedKind::Cfs, opts)
        } else {
            run_cell(machine_cfg, workload, &SchedKind::Dike(grid[i - 1]), opts)
        }
    });
    let baseline = results.remove(0);
    let cells = grid
        .into_iter()
        .zip(results)
        .map(|(config, result)| SweepCell { config, result })
        .collect();
    Sweep {
        workload: workload.name.clone(),
        baseline,
        cells,
    }
}

/// Sweep several workloads at once, flattening all `(workload × cell)`
/// pairs into one task list so the pool stays saturated across workload
/// boundaries. Results come back in input order, each sweep's cells in
/// [`SchedConfig::grid`] order.
pub fn sweep_workloads_parallel(
    machine_cfg: &MachineConfig,
    workloads: &[Workload],
    opts: &RunOptions,
) -> Vec<Sweep> {
    sweep_workloads_pool(machine_cfg, workloads, opts, &Pool::from_env())
}

/// [`sweep_workloads_parallel`] on an explicit pool.
pub fn sweep_workloads_pool(
    machine_cfg: &MachineConfig,
    workloads: &[Workload],
    opts: &RunOptions,
    pool: &Pool,
) -> Vec<Sweep> {
    let grid = SchedConfig::grid();
    let per_workload = grid.len() + 1;
    let results = pool.map_indexed(workloads.len() * per_workload, |task| {
        let (w, cell) = (task / per_workload, task % per_workload);
        if cell == 0 {
            run_cell(machine_cfg, &workloads[w], &SchedKind::Cfs, opts)
        } else {
            run_cell(
                machine_cfg,
                &workloads[w],
                &SchedKind::Dike(grid[cell - 1]),
                opts,
            )
        }
    });
    let mut out = Vec::with_capacity(workloads.len());
    let mut iter = results.into_iter();
    for w in workloads {
        let baseline = iter.next().expect("baseline cell present");
        let cells = grid
            .iter()
            .map(|&config| SweepCell {
                config,
                result: iter.next().expect("grid cell present"),
            })
            .collect();
        out.push(Sweep {
            workload: w.name.clone(),
            baseline,
            cells,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_machine::presets;
    use dike_workloads::paper;

    #[test]
    fn sweep_covers_the_grid_and_finds_extremes() {
        // Tiny scale: this runs 33 cells.
        let opts = RunOptions {
            scale: 0.02,
            deadline_s: 60.0,
            ..RunOptions::default()
        };
        let cfg = presets::paper_machine(1);
        let sweep = sweep_workload(&cfg, &paper::workload(1), &opts);
        assert_eq!(sweep.cells.len(), 32);
        assert_eq!(sweep.fairness_improvements().len(), 32);
        assert_eq!(sweep.speedups().len(), 32);
        let bf = sweep.best_fairness();
        let wf = sweep.worst_fairness();
        assert!(
            sweep.cells[bf].result.fairness >= sweep.cells[wf].result.fairness,
            "best fairness below worst"
        );
        let bp = sweep.best_performance();
        let wp = sweep.worst_performance();
        assert!(
            sweep.cells[bp].result.mean_app_runtime_s <= sweep.cells[wp].result.mean_app_runtime_s
        );
        assert!(sweep.cell(SchedConfig::DEFAULT).is_some());
    }

    #[test]
    fn extremes_survive_a_nan_poisoned_cell() {
        // Regression: argmax/argmin used `partial_cmp(..).expect("finite")`
        // and panicked on NaN. A degenerate cell must not take down a
        // whole figure driver.
        let opts = RunOptions {
            scale: 0.02,
            deadline_s: 60.0,
            ..RunOptions::default()
        };
        let cfg = presets::paper_machine(1);
        let mut sweep = sweep_workload_pool(&cfg, &paper::workload(1), &opts, &Pool::new(1));
        sweep.cells[5].result.fairness = f64::NAN;
        sweep.cells[11].result.mean_app_runtime_s = f64::NAN;
        for idx in [
            sweep.best_fairness(),
            sweep.worst_fairness(),
            sweep.best_performance(),
            sweep.worst_performance(),
        ] {
            assert!(idx < sweep.cells.len());
        }
        // NaN sorts above every finite value in the total order, so the
        // poisoned cells land at the max end, not the min end.
        assert_eq!(sweep.best_fairness(), 5);
        assert_eq!(sweep.worst_performance(), 11);
        assert_ne!(sweep.worst_fairness(), 5);
        assert_ne!(sweep.best_performance(), 11);
    }

    #[test]
    fn parallel_sweep_equals_serial_sweep() {
        let opts = RunOptions {
            scale: 0.02,
            deadline_s: 60.0,
            ..RunOptions::default()
        };
        let cfg = presets::paper_machine(1);
        let w = paper::workload(1);
        let serial = sweep_workload_pool(&cfg, &w, &opts, &Pool::new(1));
        let parallel = sweep_workload_pool(&cfg, &w, &opts, &Pool::new(4));
        assert_eq!(serial, parallel);
    }
}
