//! Configuration-grid sweeps over ⟨swapSize, quantaLength⟩ — the engine
//! behind Figures 2, 4 and 5.

use crate::runner::{run_cell, CellResult, RunOptions, SchedKind};
use dike_machine::MachineConfig;
use dike_metrics::relative_improvement;
use dike_scheduler::SchedConfig;
use dike_workloads::Workload;

/// One grid cell: a configuration and its measured outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// The configuration.
    pub config: SchedConfig,
    /// Full cell result.
    pub result: CellResult,
}

/// A full 32-point sweep for one workload, plus the baseline cell used for
/// normalisation.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Workload name.
    pub workload: String,
    /// Baseline (Linux-CFS) result.
    pub baseline: CellResult,
    /// One cell per configuration, in [`SchedConfig::grid`] order.
    pub cells: Vec<SweepCell>,
}

impl Sweep {
    /// Fairness improvement over the baseline for each cell.
    pub fn fairness_improvements(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|c| relative_improvement(c.result.fairness, self.baseline.fairness))
            .collect()
    }

    /// Speedup over the baseline (mean benchmark-app runtime) per cell.
    pub fn speedups(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|c| self.baseline.mean_app_runtime_s / c.result.mean_app_runtime_s)
            .collect()
    }

    /// Index of the best cell by fairness.
    pub fn best_fairness(&self) -> usize {
        argmax(&self.cells.iter().map(|c| c.result.fairness).collect::<Vec<_>>())
    }

    /// Index of the worst cell by fairness.
    pub fn worst_fairness(&self) -> usize {
        argmin(&self.cells.iter().map(|c| c.result.fairness).collect::<Vec<_>>())
    }

    /// Index of the best cell by performance (lowest mean app runtime).
    pub fn best_performance(&self) -> usize {
        argmin(
            &self
                .cells
                .iter()
                .map(|c| c.result.mean_app_runtime_s)
                .collect::<Vec<_>>(),
        )
    }

    /// Index of the worst cell by performance.
    pub fn worst_performance(&self) -> usize {
        argmax(
            &self
                .cells
                .iter()
                .map(|c| c.result.mean_app_runtime_s)
                .collect::<Vec<_>>(),
        )
    }

    /// The cell for a specific configuration.
    pub fn cell(&self, config: SchedConfig) -> Option<&SweepCell> {
        self.cells.iter().find(|c| c.config == config)
    }
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty sweep")
}

fn argmin(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty sweep")
}

/// Sweep all 32 configurations of one workload with non-adaptive Dike.
pub fn sweep_workload(
    machine_cfg: &MachineConfig,
    workload: &Workload,
    opts: &RunOptions,
) -> Sweep {
    let baseline = run_cell(machine_cfg, workload, &SchedKind::Cfs, opts);
    let cells = SchedConfig::grid()
        .into_iter()
        .map(|config| SweepCell {
            config,
            result: run_cell(machine_cfg, workload, &SchedKind::Dike(config), opts),
        })
        .collect();
    Sweep {
        workload: workload.name.clone(),
        baseline,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_machine::presets;
    use dike_workloads::paper;

    #[test]
    fn sweep_covers_the_grid_and_finds_extremes() {
        // Tiny scale: this runs 33 cells.
        let opts = RunOptions {
            scale: 0.02,
            deadline_s: 60.0,
            ..RunOptions::default()
        };
        let cfg = presets::paper_machine(1);
        let sweep = sweep_workload(&cfg, &paper::workload(1), &opts);
        assert_eq!(sweep.cells.len(), 32);
        assert_eq!(sweep.fairness_improvements().len(), 32);
        assert_eq!(sweep.speedups().len(), 32);
        let bf = sweep.best_fairness();
        let wf = sweep.worst_fairness();
        assert!(
            sweep.cells[bf].result.fairness >= sweep.cells[wf].result.fairness,
            "best fairness below worst"
        );
        let bp = sweep.best_performance();
        let wp = sweep.worst_performance();
        assert!(
            sweep.cells[bp].result.mean_app_runtime_s
                <= sweep.cells[wp].result.mean_app_runtime_s
        );
        assert!(sweep.cell(SchedConfig::DEFAULT).is_some());
    }
}
