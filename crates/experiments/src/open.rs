//! Open-system experiment: the comparison policies under mid-run arrivals
//! and departures.
//!
//! The paper evaluates closed workloads — every thread exists at time
//! zero and the run ends when the last finishes. Real consolidated
//! servers are open: applications arrive, run, and leave while others are
//! mid-flight. This experiment subjects the comparison set (plus the null
//! scheduler, the do-nothing floor) to WL1-derived Poisson arrival traces
//! at three offered-load levels and scores each policy by the open-system
//! analogues of the paper's metrics: *mean sojourn time* (completion −
//! arrival, the performance headline) and *windowed fairness* (Eqn 4 over
//! each sliding window's departures — see [`dike_metrics::windowed`]).
//!
//! The `(load level × scheduler)` cells are flattened into one task list
//! over the [`dike_util::pool`] workers and reassembled in input order, so
//! output is byte-identical to a serial run — the same contract as every
//! other experiment in this crate.

use crate::roster::PolicyHandle;
use crate::runner::{RunOptions, SchedKind};
use dike_machine::{presets, Machine, MachineConfig, SimTime};
use dike_metrics::{
    fairness_summary, mean_sojourn, windowed_fairness, TextTable, ThreadSpan, WindowPoint,
};
use dike_sched_core::{run_open, RunResult, TimedSpawn};
use dike_scheduler::SchedConfig;
use dike_util::{json_struct, Pool};
use dike_workloads::{paper, ArrivalConfig, ArrivalTrace};

/// Offered-load levels: mean inter-arrival time in milliseconds, from
/// light (one app every 4 s) to heavy (one every second).
pub const LOAD_LEVELS_MS: [f64; 3] = [4000.0, 2000.0, 1000.0];

/// Arrivals stop after this horizon; each run continues until the last
/// admitted thread departs (or the deadline cuts it off).
pub const HORIZON_MS: u64 = 30_000;

/// Sliding-window length for windowed fairness, in seconds.
pub const WINDOW_S: f64 = 5.0;

/// Window step (half-overlapping windows), in seconds.
pub const WINDOW_STEP_S: f64 = 2.5;

/// The open-system comparison set: Dike against the CFS/DIO/random
/// baselines and the null-scheduler floor.
pub fn open_comparison_set() -> Vec<SchedKind> {
    vec![
        SchedKind::Null,
        SchedKind::Cfs,
        SchedKind::Dio,
        SchedKind::Random(1),
        SchedKind::Dike(SchedConfig::DEFAULT),
    ]
}

/// One `(arrival trace × scheduler)` cell of the open experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenPoint {
    /// Arrival-trace name.
    pub trace: String,
    /// The trace's mean inter-arrival time (the load knob).
    pub mean_interarrival_ms: f64,
    /// Scheduler label.
    pub scheduler: String,
    /// Threads that arrived over the run.
    pub arrivals: u64,
    /// Threads that departed before the deadline.
    pub departures: u64,
    /// Whether every arrived thread departed before the deadline.
    pub completed: bool,
    /// Time the last departure (or the deadline) was reached.
    pub makespan_s: f64,
    /// Mean sojourn time; unfinished threads charged up to the wall.
    pub mean_sojourn_s: f64,
    /// Mean of the per-window fairness scores.
    pub mean_windowed_fairness: f64,
    /// Worst window — the transient a whole-run scalar would hide.
    pub min_windowed_fairness: f64,
    /// The full fairness-over-time series.
    pub windows: Vec<WindowPoint>,
}

json_struct!(OpenPoint {
    trace,
    mean_interarrival_ms,
    scheduler,
    arrivals,
    departures,
    completed,
    makespan_s,
    mean_sojourn_s,
    mean_windowed_fairness,
    min_windowed_fairness,
    windows,
});

/// The WL1-derived arrival trace for one load level: apps drawn uniformly
/// from WL1's benchmark mix, 2–4 threads per arrival, horizon
/// [`HORIZON_MS`]. Deterministic in `(mean_ms, seed)`.
pub fn wl1_trace(mean_ms: f64, seed: u64) -> ArrivalTrace {
    let apps = paper::workload(1).apps;
    let cfg = ArrivalConfig {
        mean_interarrival_ms: mean_ms,
        horizon_ms: HORIZON_MS,
        threads_min: 2,
        threads_max: 4,
    };
    // Offset the stream per load level so traces differ in more than rate.
    let stream = seed.wrapping_add(mean_ms as u64);
    ArrivalTrace::poisson(
        format!("WL1-open-{}ms", mean_ms as u64),
        &apps,
        &cfg,
        stream,
    )
}

/// Drive one policy over an arrival plan on a fresh machine. Also reused
/// by the robustness experiment (closed run = empty plan, byte-identical).
pub(crate) fn drive_open(
    machine: &mut Machine,
    kind: &SchedKind,
    deadline: SimTime,
    plan: Vec<TimedSpawn>,
) -> RunResult {
    let mut policy = PolicyHandle::build(kind, &machine.config().llc);
    run_open(machine, policy.as_scheduler(), deadline, plan)
}

/// Run one open cell: inject the trace into an initially empty machine
/// and reduce the per-thread lifetimes to the open-system metrics.
pub fn run_open_cell(
    machine_cfg: &MachineConfig,
    trace: &ArrivalTrace,
    kind: &SchedKind,
    opts: &RunOptions,
) -> OpenPoint {
    let mut cfg = machine_cfg.clone();
    cfg.seed = opts.seed;
    let mut machine = Machine::new(cfg);
    let plan: Vec<TimedSpawn> = trace
        .spawn_plan(opts.scale)
        .into_iter()
        .map(|(at, spec)| TimedSpawn { at, spec })
        .collect();
    let deadline = SimTime::from_secs_f64(opts.deadline_s);
    let result = drive_open(&mut machine, kind, deadline, plan);

    let wall = result.wall.as_secs_f64();
    let spans: Vec<ThreadSpan> = result
        .threads
        .iter()
        .map(|t| ThreadSpan {
            app: t.app,
            spawned_at: t.spawned_at.as_secs_f64(),
            finished_at: t.finished_at.map(|f| f.as_secs_f64()),
        })
        .collect();
    let windows = windowed_fairness(&spans, WINDOW_S, WINDOW_STEP_S, wall.max(WINDOW_S));
    let (mean_fair, min_fair) = fairness_summary(&windows);

    OpenPoint {
        trace: trace.name.clone(),
        mean_interarrival_ms: trace_mean_ms(&trace.name),
        scheduler: kind.label(),
        arrivals: spans.len() as u64,
        departures: spans.iter().filter(|s| s.finished_at.is_some()).count() as u64,
        completed: result.completed,
        makespan_s: wall,
        mean_sojourn_s: mean_sojourn(&spans, wall),
        mean_windowed_fairness: mean_fair,
        min_windowed_fairness: min_fair,
        windows,
    }
}

/// Recover the load knob from the trace name (`WL1-open-<ms>ms`); 0 for
/// hand-written traces.
fn trace_mean_ms(name: &str) -> f64 {
    name.strip_prefix("WL1-open-")
        .and_then(|s| s.strip_suffix("ms"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0)
}

/// Run the open comparison set at every [`LOAD_LEVELS_MS`] level on the
/// environment-sized pool.
pub fn run_open_experiment(opts: &RunOptions) -> Vec<OpenPoint> {
    run_open_points_pool(&LOAD_LEVELS_MS, opts, &Pool::from_env())
}

/// Run the open comparison set at explicit load levels on an explicit
/// pool (tests pin both). Cells are fanned out in `(level, scheduler)`
/// order and reassembled in input order — byte-identical at any worker
/// count.
pub fn run_open_points_pool(levels_ms: &[f64], opts: &RunOptions, pool: &Pool) -> Vec<OpenPoint> {
    let kinds = open_comparison_set();
    let traces: Vec<ArrivalTrace> = levels_ms.iter().map(|&m| wl1_trace(m, opts.seed)).collect();
    let machine = presets::paper_machine(opts.seed);
    let per = kinds.len();
    pool.map_indexed(traces.len() * per, |task| {
        let (t, s) = (task / per, task % per);
        run_open_cell(&machine, &traces[t], &kinds[s], opts)
    })
}

/// Render the experiment: per load level, each policy's sojourn and
/// fairness-over-time summary.
pub fn render(points: &[OpenPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "trace".to_string(),
        "scheduler".to_string(),
        "arrivals".to_string(),
        "sojourn(s)".to_string(),
        "fair(mean)".to_string(),
        "fair(min)".to_string(),
        "makespan(s)".to_string(),
    ]);
    for p in points {
        t.row(vec![
            p.trace.clone(),
            p.scheduler.clone(),
            p.arrivals.to_string(),
            format!("{:.2}", p.mean_sojourn_s),
            format!("{:.3}", p.mean_windowed_fairness),
            format!("{:.3}", p.min_windowed_fairness),
            format!("{:.1}", p.makespan_s),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_util::json;

    fn small_opts() -> RunOptions {
        RunOptions {
            scale: 0.02,
            deadline_s: 120.0,
            ..RunOptions::default()
        }
    }

    #[test]
    fn open_experiment_reports_all_cells_in_order() {
        let opts = small_opts();
        let points = run_open_points_pool(&[2000.0], &opts, &Pool::new(2));
        assert_eq!(points.len(), open_comparison_set().len());
        let labels: Vec<&str> = points.iter().map(|p| p.scheduler.as_str()).collect();
        assert_eq!(labels, vec!["Null", "Linux-CFS", "DIO", "Random", "Dike"]);
        for p in &points {
            assert!(p.arrivals > 0, "{}: no arrivals", p.scheduler);
            assert!(p.completed, "{}: hit the deadline", p.scheduler);
            assert_eq!(p.departures, p.arrivals);
            assert!(p.mean_sojourn_s > 0.0);
            assert!(p.min_windowed_fairness <= p.mean_windowed_fairness);
            assert!(p.mean_windowed_fairness <= 1.0);
            assert!(!p.windows.is_empty());
        }
    }

    #[test]
    fn higher_load_means_more_arrivals() {
        let a = wl1_trace(4000.0, 42);
        let b = wl1_trace(1000.0, 42);
        assert!(b.num_threads() > a.num_threads());
        // Traces serialize (they are archived with results).
        let s = json::to_string(&b);
        assert!(s.contains("WL1-open-1000ms"));
    }

    /// Churn with unreliable actuation: mid-run arrivals/departures at a
    /// 10% migration-failure rate (plus delayed migrations that land
    /// several quanta late, possibly after their thread finished). No
    /// panics, no dropped threads, and the run drains completely.
    #[test]
    fn churn_survives_a_10pct_migration_failure_rate() {
        let opts = RunOptions {
            scale: 0.01,
            deadline_s: 240.0,
            ..RunOptions::default()
        };
        let cfg = ArrivalConfig {
            mean_interarrival_ms: 400.0,
            horizon_ms: 20_000,
            threads_min: 1,
            threads_max: 2,
        };
        let apps = paper::workload(1).apps;
        let trace = ArrivalTrace::poisson("churn-faulty", &apps, &cfg, 11);
        let mut machine_cfg = presets::paper_machine(opts.seed);
        machine_cfg.faults = dike_machine::FaultConfig::actuation_axis(0.10, opts.seed);
        for kind in [
            SchedKind::Dio,
            SchedKind::Dike(SchedConfig::DEFAULT),
            SchedKind::DikeHardened,
        ] {
            let p = run_open_cell(&machine_cfg, &trace, &kind, &opts);
            assert_eq!(
                p.arrivals,
                trace.num_threads() as u64,
                "{}: dropped arrivals",
                p.scheduler
            );
            assert!(
                p.completed,
                "{}: churn under faulty actuation hit the deadline",
                p.scheduler
            );
            assert_eq!(p.departures, p.arrivals, "{}", p.scheduler);
        }
    }

    /// The ISSUE's churn stress: every policy survives hundreds of
    /// lifecycle events — no panics, no stale ThreadIds (a stale id would
    /// panic inside the machine), and the run drains completely.
    #[test]
    fn churn_stress_every_policy_survives_hundreds_of_lifecycle_events() {
        let opts = RunOptions {
            scale: 0.01,
            deadline_s: 240.0,
            ..RunOptions::default()
        };
        let cfg = ArrivalConfig {
            mean_interarrival_ms: 200.0,
            horizon_ms: 30_000,
            threads_min: 1,
            threads_max: 2,
        };
        let apps = paper::workload(1).apps;
        let trace = ArrivalTrace::poisson("churn", &apps, &cfg, 7);
        assert!(
            trace.num_threads() >= 100,
            "want >= 100 threads (200 lifecycle events), got {}",
            trace.num_threads()
        );
        let machine = presets::paper_machine(opts.seed);
        let mut kinds = open_comparison_set();
        kinds.push(SchedKind::DikeAf);
        kinds.push(SchedKind::DikeAp);
        for kind in &kinds {
            let p = run_open_cell(&machine, &trace, kind, &opts);
            assert_eq!(
                p.arrivals,
                trace.num_threads() as u64,
                "{}: dropped arrivals",
                p.scheduler
            );
            assert!(p.completed, "{}: churn run hit the deadline", p.scheduler);
            assert_eq!(p.departures, p.arrivals, "{}", p.scheduler);
        }
    }
}
