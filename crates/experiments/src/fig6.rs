//! Figure 6: the headline comparison — fairness improvement (6a) and
//! speedup over the baseline (6b) for DIO, Dike, Dike-AF and Dike-AP on
//! all sixteen workloads, plus averages and geometric means.

use crate::runner::{run_cells, CellResult, RunOptions, SchedKind};
use dike_machine::presets;
use dike_metrics::{geometric_mean, mean, pct, relative_improvement, TextTable};
use dike_util::{json_struct, Pool};
use dike_workloads::paper;

/// All cells of the comparison, grouped by workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6 {
    /// Scheduler labels, in column order (first is the baseline).
    pub schedulers: Vec<String>,
    /// `rows[w][s]` = cell for workload `w` under scheduler `s`.
    pub rows: Vec<Vec<CellResult>>,
}

json_struct!(Fig6 { schedulers, rows });

impl Fig6 {
    /// Fairness improvement over the baseline per workload per scheduler
    /// (column 0, the baseline, is all zeros) — Figure 6a.
    pub fn fairness_improvements(&self) -> Vec<Vec<f64>> {
        self.rows
            .iter()
            .map(|row| {
                let base = row[0].fairness;
                row.iter()
                    .map(|c| relative_improvement(c.fairness, base))
                    .collect()
            })
            .collect()
    }

    /// Speedup over the baseline per workload per scheduler, using the
    /// paper's per-workload performance = mean benchmark runtime —
    /// Figure 6b.
    pub fn speedups(&self) -> Vec<Vec<f64>> {
        self.rows
            .iter()
            .map(|row| {
                let base = row[0].mean_app_runtime_s;
                row.iter().map(|c| base / c.mean_app_runtime_s).collect()
            })
            .collect()
    }

    /// Makespan speedups (secondary performance metric: time until the
    /// whole workload, including the background app, completes).
    pub fn makespan_speedups(&self) -> Vec<Vec<f64>> {
        self.rows
            .iter()
            .map(|row| {
                let base = row[0].makespan_s;
                row.iter().map(|c| base / c.makespan_s).collect()
            })
            .collect()
    }

    /// Column means of a per-workload matrix.
    pub fn column_means(matrix: &[Vec<f64>]) -> Vec<f64> {
        let cols = matrix[0].len();
        (0..cols)
            .map(|s| mean(&matrix.iter().map(|row| row[s]).collect::<Vec<_>>()))
            .collect()
    }

    /// Column geometric means (used by the paper's headline numbers).
    /// Non-positive entries (possible for improvements) are mapped through
    /// `1 + x` as ratios.
    pub fn column_geomeans_of_ratios(matrix: &[Vec<f64>]) -> Vec<f64> {
        let cols = matrix[0].len();
        (0..cols)
            .map(|s| {
                geometric_mean(
                    &matrix
                        .iter()
                        .map(|row| row[s].max(1e-9))
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }
}

/// Run the full comparison.
pub fn run(opts: &RunOptions) -> Fig6 {
    run_subset(opts, &(1..=16).collect::<Vec<_>>())
}

/// Run the comparison over a subset of workload numbers, sharding all
/// `(workload × scheduler)` cells across the environment-sized pool.
pub fn run_subset(opts: &RunOptions, workload_numbers: &[usize]) -> Fig6 {
    run_subset_pool(opts, workload_numbers, &Pool::from_env())
}

/// [`run_subset`] on an explicit pool (tests pin the thread count).
pub fn run_subset_pool(opts: &RunOptions, workload_numbers: &[usize], pool: &Pool) -> Fig6 {
    let cfg = presets::paper_machine(opts.seed);
    let kinds = SchedKind::comparison_set();
    let workloads: Vec<_> = workload_numbers
        .iter()
        .map(|&n| paper::workload(n))
        .collect();
    let tasks: Vec<_> = workloads
        .iter()
        .flat_map(|w| kinds.iter().map(move |k| (w, k.clone())))
        .collect();
    let mut results = run_cells(&cfg, &tasks, opts, pool).into_iter();
    let rows = workloads
        .iter()
        .map(|_| {
            (0..kinds.len())
                .map(|_| results.next().expect("cell"))
                .collect()
        })
        .collect();
    Fig6 {
        schedulers: kinds.iter().map(|k| k.label()).collect(),
        rows,
    }
}

/// Render Figure 6a (fairness improvement over baseline).
pub fn render_fairness(fig: &Fig6) -> TextTable {
    let mut header = vec!["workload".to_string()];
    header.extend(fig.schedulers.iter().skip(1).cloned());
    let mut t = TextTable::new(header);
    let improvements = fig.fairness_improvements();
    for (row, cells) in improvements.iter().zip(&fig.rows) {
        let mut out = vec![cells[0].workload.clone()];
        out.extend(row.iter().skip(1).map(|&v| pct(v)));
        t.row(out);
    }
    // Average and geomean rows, as in the figure's final region.
    let means = Fig6::column_means(&improvements);
    let mut avg = vec!["average".to_string()];
    avg.extend(means.iter().skip(1).map(|&v| pct(v)));
    t.row(avg);
    let ratios: Vec<Vec<f64>> = improvements
        .iter()
        .map(|r| r.iter().map(|&v| 1.0 + v).collect())
        .collect();
    let geo = Fig6::column_geomeans_of_ratios(&ratios);
    let mut geo_row = vec!["geomean".to_string()];
    geo_row.extend(geo.iter().skip(1).map(|&v| pct(v - 1.0)));
    t.row(geo_row);
    t
}

/// Render Figure 6b (speedup over baseline).
pub fn render_performance(fig: &Fig6) -> TextTable {
    let mut header = vec!["workload".to_string()];
    for s in fig.schedulers.iter().skip(1) {
        header.push(s.clone());
    }
    header.push("(makespan) Dike".into());
    let mut t = TextTable::new(header);
    let speedups = fig.speedups();
    let mk = fig.makespan_speedups();
    let dike_col = fig
        .schedulers
        .iter()
        .position(|s| s == "Dike")
        .expect("Dike in comparison set");
    for ((row, cells), mrow) in speedups.iter().zip(&fig.rows).zip(&mk) {
        let mut out = vec![cells[0].workload.clone()];
        out.extend(row.iter().skip(1).map(|&v| format!("{v:.3}")));
        out.push(format!("{:.3}", mrow[dike_col]));
        t.row(out);
    }
    let means = Fig6::column_means(&speedups);
    let mk_means = Fig6::column_means(&mk);
    let mut avg = vec!["average".to_string()];
    avg.extend(means.iter().skip(1).map(|&v| format!("{v:.3}")));
    avg.push(format!("{:.3}", mk_means[dike_col]));
    t.row(avg);
    let geo = Fig6::column_geomeans_of_ratios(&speedups);
    let mk_geo = Fig6::column_geomeans_of_ratios(&mk);
    let mut geo_row = vec!["geomean".to_string()];
    geo_row.extend(geo.iter().skip(1).map(|&v| format!("{v:.3}")));
    geo_row.push(format!("{:.3}", mk_geo[dike_col]));
    t.row(geo_row);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_comparison_has_expected_shape_and_orderings() {
        let opts = RunOptions {
            scale: 0.1,
            deadline_s: 120.0,
            ..RunOptions::default()
        };
        // One workload per class keeps this test affordable.
        let fig = run_subset(&opts, &[1, 9, 13]);
        assert_eq!(fig.rows.len(), 3);
        assert_eq!(fig.schedulers.len(), 5);
        let improvements = fig.fairness_improvements();
        // Every contention-aware scheduler improves fairness over CFS.
        for (w, row) in improvements.iter().enumerate() {
            assert_eq!(row[0], 0.0);
            for (s, &v) in row.iter().enumerate().skip(1) {
                assert!(
                    v > 0.0,
                    "{} should improve fairness on row {w} (got {v})",
                    fig.schedulers[s]
                );
            }
        }
        // Dike swaps far less than DIO on every workload.
        for row in &fig.rows {
            let dio = &row[1];
            let dike = &row[2];
            // Paper Table III ratio: DIO ~2117 vs Dike ~773 (2.7x).
            assert!(
                dike.swaps < dio.swaps,
                "Dike ({}) should swap less than DIO ({})",
                dike.swaps,
                dio.swaps
            );
        }
        let ft = render_fairness(&fig);
        assert_eq!(ft.len(), 5); // 3 workloads + average + geomean
        let pt = render_performance(&fig);
        assert_eq!(pt.len(), 5);
    }
}
