//! The policy roster: the one place a [`SchedKind`] becomes a live
//! scheduler.
//!
//! Before this module, the closed runner ([`crate::runner::run_cell_with`])
//! and the open driver ([`crate::open`]) each carried their own
//! `SchedKind → concrete scheduler` match; adding a policy meant editing
//! every copy in lockstep or silently diverging. [`PolicyHandle::build`] is
//! now the single constructor both paths (and any future experiment) go
//! through, and it is where new actuator-aware policies — LFOC and the
//! Dike+LFOC hybrid, which need the machine's LLC geometry — register
//! once for every harness.

use crate::runner::SchedKind;
use dike_baselines::{Dio, Lfoc, RandomScheduler, SortOnce, StaticSpread};
use dike_machine::{LlcConfig, SimTime};
use dike_sched_core::{NullScheduler, Scheduler};
use dike_scheduler::{Dike, DikeLfoc};

/// An owned, concretely-typed scheduler built from a [`SchedKind`].
///
/// Harnesses drive it through [`PolicyHandle::as_scheduler`]; afterwards
/// [`PolicyHandle::dike`] recovers the Dike pipeline (plain or inside the
/// hybrid) for predictor-statistics extraction without downcasting.
#[derive(Debug)]
pub enum PolicyHandle {
    /// The no-op floor.
    Null(NullScheduler),
    /// Linux-CFS stand-in.
    Cfs(StaticSpread),
    /// Distributed Intensity Online.
    Dio(Dio),
    /// Seeded random swaps.
    Random(RandomScheduler),
    /// One-shot sorted static placement.
    SortOnce(SortOnce),
    /// Any Dike variant (fixed, adaptive, hardened, custom).
    Dike(Dike),
    /// LFOC cache clustering (partition-only).
    Lfoc(Lfoc),
    /// Dike swaps + LFOC partitioning.
    DikeLfoc(DikeLfoc),
}

impl PolicyHandle {
    /// Construct the scheduler a kind names. `llc` is the target machine's
    /// cache geometry — public hardware knowledge the partitioning
    /// policies are configured with (migration-only policies ignore it).
    pub fn build(kind: &SchedKind, llc: &LlcConfig) -> PolicyHandle {
        match kind {
            SchedKind::Null => PolicyHandle::Null(NullScheduler::new(SimTime::from_ms(100))),
            SchedKind::Cfs => PolicyHandle::Cfs(StaticSpread::new()),
            SchedKind::Dio => PolicyHandle::Dio(Dio::new()),
            SchedKind::Random(seed) => PolicyHandle::Random(RandomScheduler::new(*seed)),
            SchedKind::SortOnce => PolicyHandle::SortOnce(SortOnce::new()),
            SchedKind::Dike(sc) => PolicyHandle::Dike(Dike::fixed(*sc)),
            SchedKind::DikeAf => PolicyHandle::Dike(Dike::adaptive_fairness()),
            SchedKind::DikeAp => PolicyHandle::Dike(Dike::adaptive_performance()),
            SchedKind::DikeHardened => PolicyHandle::Dike(Dike::hardened()),
            SchedKind::DikeCustom(cfg) => PolicyHandle::Dike(Dike::with_config(cfg.clone())),
            SchedKind::Lfoc => PolicyHandle::Lfoc(Lfoc::for_llc(llc)),
            SchedKind::DikeLfoc => PolicyHandle::DikeLfoc(DikeLfoc::new(llc)),
        }
    }

    /// The policy as the trait object the drivers take.
    pub fn as_scheduler(&mut self) -> &mut dyn Scheduler {
        match self {
            PolicyHandle::Null(s) => s,
            PolicyHandle::Cfs(s) => s,
            PolicyHandle::Dio(s) => s,
            PolicyHandle::Random(s) => s,
            PolicyHandle::SortOnce(s) => s,
            PolicyHandle::Dike(s) => s,
            PolicyHandle::Lfoc(s) => s,
            PolicyHandle::DikeLfoc(s) => s,
        }
    }

    /// The Dike pipeline inside this policy, if any — plain Dike or the
    /// hybrid's wrapped instance — for predictor-stats extraction.
    pub fn dike(&self) -> Option<&Dike> {
        match self {
            PolicyHandle::Dike(d) => Some(d),
            PolicyHandle::DikeLfoc(h) => Some(h.dike()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_scheduler::SchedConfig;

    #[test]
    fn every_kind_builds_and_names_consistently() {
        let llc = LlcConfig::default();
        let kinds = [
            (SchedKind::Null, "null"),
            (SchedKind::Cfs, "Linux-CFS"),
            (SchedKind::Dio, "DIO"),
            (SchedKind::Random(1), "Random"),
            (SchedKind::SortOnce, "SortOnce"),
            (SchedKind::Dike(SchedConfig::DEFAULT), "Dike"),
            (SchedKind::Lfoc, "LFOC"),
            (SchedKind::DikeLfoc, "Dike+LFOC"),
        ];
        for (kind, name) in kinds {
            let mut p = PolicyHandle::build(&kind, &llc);
            assert_eq!(p.as_scheduler().name(), name, "{kind:?}");
        }
    }

    #[test]
    fn dike_handle_is_recovered_from_plain_and_hybrid() {
        let llc = LlcConfig::default();
        assert!(
            PolicyHandle::build(&SchedKind::Dike(SchedConfig::DEFAULT), &llc)
                .dike()
                .is_some()
        );
        assert!(PolicyHandle::build(&SchedKind::DikeHardened, &llc)
            .dike()
            .is_some());
        assert!(PolicyHandle::build(&SchedKind::DikeLfoc, &llc)
            .dike()
            .is_some());
        assert!(PolicyHandle::build(&SchedKind::Lfoc, &llc).dike().is_none());
        assert!(PolicyHandle::build(&SchedKind::Cfs, &llc).dike().is_none());
    }
}
