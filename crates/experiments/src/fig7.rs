//! Figure 7: Dike's prediction error per workload — minimum, average and
//! maximum signed relative error across all scored (thread, quantum)
//! samples. The paper reports averages within 0–3 % and bounds of −9 % to
//! +10 %, with UC workloads hardest to predict.

use crate::runner::{run_cell, RunOptions, SchedKind};
use dike_machine::presets;
use dike_metrics::{Summary, TextTable};
use dike_scheduler::SchedConfig;
use dike_workloads::paper;

/// One workload's error summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Workload name.
    pub workload: String,
    /// Error summary (signed relative errors).
    pub summary: Summary,
}

/// Run the prediction-error experiment over the given workloads.
pub fn run_subset(opts: &RunOptions, workload_numbers: &[usize]) -> Vec<Fig7Row> {
    let cfg = presets::paper_machine(opts.seed);
    workload_numbers
        .iter()
        .map(|&n| {
            let w = paper::workload(n);
            let cell = run_cell(&cfg, &w, &SchedKind::Dike(SchedConfig::DEFAULT), opts);
            Fig7Row {
                workload: w.name,
                summary: Summary::of(&cell.prediction_errors),
            }
        })
        .collect()
}

/// Run over all sixteen workloads.
pub fn run(opts: &RunOptions) -> Vec<Fig7Row> {
    run_subset(opts, &(1..=16).collect::<Vec<_>>())
}

/// Render as the figure's min/avg/max series.
pub fn render(rows: &[Fig7Row]) -> TextTable {
    let mut t = TextTable::new(vec!["workload", "min", "avg", "max", "samples"]);
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            format!("{:+.1}%", r.summary.min * 100.0),
            format!("{:+.1}%", r.summary.mean * 100.0),
            format!("{:+.1}%", r.summary.max * 100.0),
            format!("{}", r.summary.n),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_errors_are_small_on_average() {
        let opts = RunOptions {
            scale: 0.1,
            deadline_s: 120.0,
            ..RunOptions::default()
        };
        let rows = run_subset(&opts, &[1, 13]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.summary.n > 0, "{} recorded no samples", r.workload);
            assert!(
                r.summary.mean.abs() < 0.15,
                "{} mean error {:.3} too large",
                r.workload,
                r.summary.mean
            );
            assert!(r.summary.min <= r.summary.mean && r.summary.mean <= r.summary.max);
        }
        let t = render(&rows);
        assert_eq!(t.len(), 2);
    }
}
