//! Figure 8: the prediction-error *trend* over time for WL6 and WL11.
//!
//! The paper shows per-quantum error traces with spikes at phase changes
//! (sudden access-rate shifts, most likely in compute-intensive threads)
//! and after benchmark completions (freed bandwidth perturbs the remaining
//! threads), while staying within ±10 % overall.

use crate::runner::{run_cell, RunOptions, SchedKind};
use dike_machine::presets;
use dike_metrics::{TextTable, TimeSeries};
use dike_scheduler::SchedConfig;
use dike_workloads::paper;

/// One workload's error trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Trace {
    /// Workload name.
    pub workload: String,
    /// Per-quantum mean signed relative error.
    pub series: TimeSeries,
}

/// The paper's two selected workloads.
pub const SELECTED: [usize; 2] = [6, 11];

/// Run the trace experiment for the given workloads.
pub fn run_subset(opts: &RunOptions, workload_numbers: &[usize]) -> Vec<Fig8Trace> {
    let cfg = presets::paper_machine(opts.seed);
    workload_numbers
        .iter()
        .map(|&n| {
            let w = paper::workload(n);
            let cell = run_cell(&cfg, &w, &SchedKind::Dike(SchedConfig::DEFAULT), opts);
            let mut series = TimeSeries::new(w.name.clone());
            for (t, e) in &cell.prediction_trace {
                series.push(*t, *e);
            }
            Fig8Trace {
                workload: w.name,
                series,
            }
        })
        .collect()
}

/// Run for the paper's WL6 and WL11.
pub fn run(opts: &RunOptions) -> Vec<Fig8Trace> {
    run_subset(opts, &SELECTED)
}

/// Render a trace (down-sampled) with a crude ASCII sparkline.
pub fn render(trace: &Fig8Trace, max_points: usize) -> TextTable {
    let ds = trace.series.downsample(max_points);
    let mut t = TextTable::new(vec!["t(s)", "error", "trend"]);
    let max_abs = ds.values.iter().map(|v| v.abs()).fold(1e-9, f64::max);
    for (time, value) in ds.iter() {
        let width = 20usize;
        let mid = width / 2;
        let offset = ((value / max_abs) * mid as f64).round() as i64;
        let pos = (mid as i64 + offset).clamp(0, width as i64 - 1) as usize;
        let mut bar: Vec<char> = vec!['.'; width];
        bar[mid] = '|';
        bar[pos] = '*';
        t.row(vec![
            format!("{time:.1}"),
            format!("{:+.2}%", value * 100.0),
            bar.into_iter().collect::<String>(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_record_per_quantum_errors() {
        let opts = RunOptions {
            scale: 0.1,
            deadline_s: 120.0,
            ..RunOptions::default()
        };
        let traces = run_subset(&opts, &[6]);
        assert_eq!(traces.len(), 1);
        let tr = &traces[0];
        assert!(
            tr.series.len() > 5,
            "too few trace points: {}",
            tr.series.len()
        );
        // Errors stay bounded.
        let s = tr.series.summary();
        assert!(s.min > -1.0 && s.max < 1.0, "unbounded errors: {s:?}");
        let rendered = render(tr, 10);
        assert!(rendered.len() <= 10);
    }
}
