//! The Predictor: the paper's closed-loop profit model (Section III-C).
//!
//! For a pair ⟨t_l, t_h⟩ the profit of swapping thread `t` to the other
//! member's core is (Eqn 1)
//!
//! ```text
//! profit_t = CoreBW_other − AccessRate_t − Overhead_t
//! ```
//!
//! where `CoreBW_other` is the moving mean of the destination core's served
//! bandwidth ("we assume that if a thread migrates to a new core, it
//! consumes the new core's entire memory bandwidth"), `AccessRate_t` is the
//! thread's current access rate (its expectation if it stays), and (Eqn 2)
//!
//! ```text
//! Overhead_t = swapOH / quantaLength × AccessRate_t
//! ```
//!
//! is the access-rate loss from the migration dead time. The total profit
//! of the swap is the sum over both members (Eqn 3).
//!
//! The Predictor also *records* its predicted next-quantum access rate for
//! every thread — the destination `CoreBW` for migrated threads, the
//! current rate otherwise — and scores the predictions against the next
//! quantum's measurements. That error stream is the closed-loop feedback
//! the paper evaluates in Figures 7 and 8.

use crate::observer::Observation;
use crate::selector::Pair;
use dike_machine::{SimTime, ThreadId};
use std::collections::HashMap;

/// The predicted outcome of one candidate swap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapPrediction {
    /// Profit for the low-access member (Eqn 1).
    pub profit_low: f64,
    /// Profit for the high-access member (Eqn 1).
    pub profit_high: f64,
    /// Predicted next-quantum access rate of the low member if swapped.
    pub predicted_low: f64,
    /// Predicted next-quantum access rate of the high member if swapped.
    pub predicted_high: f64,
}

impl SwapPrediction {
    /// Total profit (Eqn 3).
    pub fn total_profit(&self) -> f64 {
        self.profit_low + self.profit_high
    }
}

/// One scored prediction sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSample {
    /// Time the prediction was scored (end of the predicted quantum).
    pub at: SimTime,
    /// The thread.
    pub thread: ThreadId,
    /// Signed relative error `(predicted − actual) / actual`; positive =
    /// overestimation, as in Figure 7.
    pub relative_error: f64,
}

/// The Predictor's persistent state.
#[derive(Debug, Default)]
pub struct Predictor {
    /// Assumed swap overhead (`swapOH`), milliseconds.
    swap_oh_ms: f64,
    /// Predictions made last quantum, to be scored this quantum. The flag
    /// marks migration-based predictions (destination `CoreBW`) as opposed
    /// to stay-put predictions (current rate).
    pending: HashMap<ThreadId, (f64, bool)>,
    /// Closed-loop correction for migration predictions: an EWMA of the
    /// observed `actual / raw-predicted` ratio for migrated threads. The
    /// paper treats migration-cost imprecision "as the precision error of
    /// our model … inherently accounted for in the process of collecting
    /// feedback" — this is that feedback loop. It corrects the *scored*
    /// prediction only; the Decider's profit rule stays Eqn 1 verbatim.
    migration_correction: f64,
    /// All scored samples.
    errors: Vec<ErrorSample>,
    /// Per-quantum aggregate error: `(time, Σ(predicted−actual)/Σactual)`
    /// over the threads scored in that quantum — the paper's "average
    /// difference between predicted and actual memory access of the
    /// running threads" (Figures 7 and 8).
    quantum_errors: Vec<(SimTime, f64)>,
}

impl Predictor {
    /// A Predictor with the given `swapOH` assumption.
    pub fn new(swap_oh_ms: f64) -> Self {
        Predictor {
            swap_oh_ms,
            pending: HashMap::new(),
            migration_correction: 1.0,
            // The error histories accumulate for the whole run (they are
            // the Figure 7/8 populations). Pre-size them for a paper-scale
            // run so steady-state quanta never pay an amortised doubling;
            // runs past these watermarks merely fall back to O(log n)
            // growth (tolerated by `tests/zero_alloc.rs`).
            errors: Vec::with_capacity(8192),
            quantum_errors: Vec::with_capacity(1024),
        }
    }

    /// The current closed-loop migration correction factor.
    pub fn migration_correction(&self) -> f64 {
        self.migration_correction
    }

    /// Evaluate one candidate pair against Eqns 1–3.
    ///
    /// `quantum` is the current `quantaLength` (the overhead term's
    /// denominator).
    pub fn evaluate(&self, obs: &Observation, pair: &Pair, quantum: SimTime) -> SwapPrediction {
        let low = obs
            .threads
            .iter()
            .find(|t| t.id == pair.low)
            .expect("pair.low is an observed thread");
        let high = obs
            .threads
            .iter()
            .find(|t| t.id == pair.high)
            .expect("pair.high is an observed thread");

        let oh_frac = (self.swap_oh_ms / quantum.as_ms_f64()).min(1.0);
        let overhead_low = oh_frac * low.access_rate;
        let overhead_high = oh_frac * high.access_rate;

        // Destination CoreBW: the *other* member's current core. At
        // reduced sample confidence (hardened pipeline, degraded
        // telemetry) the gain term is scaled down toward zero — a widened,
        // pessimistic prediction that holds back marginal swaps while the
        // cost terms stay at full weight. At confidence 1 (always, for
        // the unhardened pipeline) the factor is exactly 1.0 and the
        // prediction is Eqn 1 verbatim.
        let conf = low.confidence.min(high.confidence).clamp(0.0, 1.0);
        let corebw_for_low = obs.core_bw[pair.high_vcore.index()] * conf;
        let corebw_for_high = obs.core_bw[pair.low_vcore.index()] * conf;

        let profit_low = corebw_for_low - low.access_rate - overhead_low;
        let profit_high = corebw_for_high - high.access_rate - overhead_high;

        SwapPrediction {
            profit_low,
            profit_high,
            predicted_low: (corebw_for_low - overhead_low).max(0.0),
            predicted_high: (corebw_for_high - overhead_high).max(0.0),
        }
    }

    /// Record the predicted next-quantum access rate for every alive
    /// thread: `swapped` maps migrated threads to their swap predictions;
    /// everyone else is predicted to keep their current rate.
    pub fn commit(&mut self, obs: &Observation, swapped: &HashMap<ThreadId, f64>) {
        self.pending.clear();
        for t in &obs.threads {
            match swapped.get(&t.id) {
                Some(&raw) => self.pending.insert(t.id, (raw, true)),
                None => self.pending.insert(t.id, (t.access_rate, false)),
            };
        }
    }

    /// Score last quantum's predictions against this quantum's observation.
    ///
    /// Threads whose measured rate is tiny relative to the system mean are
    /// skipped (a relative error against ~0 is noise, not signal).
    pub fn score(&mut self, obs: &Observation, now: SimTime) {
        if self.pending.is_empty() {
            return;
        }
        let mean_rate = if obs.threads.is_empty() {
            0.0
        } else {
            obs.threads.iter().map(|t| t.access_rate).sum::<f64>() / obs.threads.len() as f64
        };
        let floor = mean_rate * 0.01;
        let mut sum_diff = 0.0;
        let mut sum_actual = 0.0;
        for t in &obs.threads {
            if let Some(&(raw, migrated)) = self.pending.get(&t.id) {
                let actual = t.access_rate;
                if actual > floor && actual > 0.0 {
                    let predicted = if migrated {
                        raw * self.migration_correction
                    } else {
                        raw
                    };
                    self.errors.push(ErrorSample {
                        at: now,
                        thread: t.id,
                        relative_error: (predicted - actual) / actual,
                    });
                    sum_diff += predicted - actual;
                    sum_actual += actual;
                    if migrated && raw > 0.0 {
                        // Closed-loop update: learn how much a freshly
                        // migrated thread really achieves relative to the
                        // destination CoreBW estimate.
                        let ratio = (actual / raw).clamp(0.2, 1.5);
                        self.migration_correction = (self.migration_correction
                            + 0.2 * (ratio - self.migration_correction))
                            .clamp(0.3, 1.2);
                    }
                }
            }
        }
        if sum_actual > 0.0 {
            self.quantum_errors.push((now, sum_diff / sum_actual));
        }
        self.pending.clear();
    }

    /// All scored samples so far.
    pub fn errors(&self) -> &[ErrorSample] {
        &self.errors
    }

    /// Per-quantum aggregate errors (the Figure 7 population): one signed
    /// relative error per scored quantum.
    pub fn error_values(&self) -> Vec<f64> {
        self.quantum_errors.iter().map(|&(_, e)| e).collect()
    }

    /// Per-thread relative errors (diagnostics; heavy-tailed because a
    /// thread whose burst ends mid-quantum can miss by several times its
    /// now-tiny rate).
    pub fn per_thread_error_values(&self) -> Vec<f64> {
        self.errors.iter().map(|e| e.relative_error).collect()
    }

    /// The per-quantum aggregate error as a `(seconds, error)` series
    /// (Figure 8's trace).
    pub fn error_trace(&self) -> Vec<(f64, f64)> {
        self.quantum_errors
            .iter()
            .map(|&(at, e)| (at.as_secs_f64(), e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{ObservedThread, ThreadClass};
    use dike_machine::{AppId, VCoreId};

    fn obs(rates: &[f64], core_bw: &[f64]) -> Observation {
        let threads = rates
            .iter()
            .enumerate()
            .map(|(i, &access_rate)| ObservedThread {
                id: ThreadId(i as u32),
                app: AppId(0),
                vcore: VCoreId(i as u32),
                access_rate,
                llc_miss_rate: 0.1,
                class: ThreadClass::Memory,
                migrated_last_quantum: false,
                confidence: 1.0,
            })
            .collect();
        Observation {
            threads,
            high_bw: vec![true; rates.len()],
            core_bw: core_bw.to_vec(),
            core_domain: vec![dike_machine::DomainId(0); rates.len()],
            num_domains: 1,
            fairness_cv: 1.0,
            memory_fraction: 1.0,
        }
    }

    fn pair01() -> Pair {
        Pair {
            low: ThreadId(0),
            low_vcore: VCoreId(0),
            high: ThreadId(1),
            high_vcore: VCoreId(1),
        }
    }

    #[test]
    fn profit_follows_eqn_1_through_3() {
        // t0 (rate 10) on core0 (CoreBW 50), t1 (rate 80) on core1 (CoreBW 100).
        let o = obs(&[10.0, 80.0], &[50.0, 100.0]);
        let p = Predictor::new(3.0);
        let quantum = SimTime::from_ms(500);
        let sp = p.evaluate(&o, &pair01(), quantum);
        let oh = 3.0 / 500.0;
        // profit_low = CoreBW(core of t1) − rate0 − oh*rate0
        assert!((sp.profit_low - (100.0 - 10.0 - oh * 10.0)).abs() < 1e-9);
        // profit_high = CoreBW(core of t0) − rate1 − oh*rate1
        assert!((sp.profit_high - (50.0 - 80.0 - oh * 80.0)).abs() < 1e-9);
        assert!((sp.total_profit() - (sp.profit_low + sp.profit_high)).abs() < 1e-12);
        assert!(sp.predicted_low > 99.0 && sp.predicted_low < 100.0);
    }

    #[test]
    fn low_confidence_widens_the_prediction_toward_no_swap() {
        // A clearly profitable swap at full confidence…
        let full = obs(&[10.0, 80.0], &[50.0, 100.0]);
        let p = Predictor::new(3.0);
        let quantum = SimTime::from_ms(500);
        let sp_full = p.evaluate(&full, &pair01(), quantum);
        assert!(sp_full.total_profit() > 0.0);
        // …loses its predicted gain as the pair's confidence drops: the
        // CoreBW term is scaled by min(confidence), the cost terms are
        // not, so the Decider's non-positive-profit rejection kicks in.
        let mut degraded = full.clone();
        degraded.threads[0].confidence = 0.2;
        let sp_low = p.evaluate(&degraded, &pair01(), quantum);
        assert!(sp_low.total_profit() < sp_full.total_profit());
        assert!(sp_low.total_profit() < 0.0);
        // Confidence 1 on both members reproduces Eqn 1 exactly.
        let sp_again = p.evaluate(&full, &pair01(), quantum);
        assert_eq!(sp_again, sp_full);
    }

    #[test]
    fn shorter_quantum_raises_overhead_penalty() {
        let o = obs(&[50.0, 50.0], &[50.0, 50.0]);
        let p = Predictor::new(3.0);
        let long = p.evaluate(&o, &pair01(), SimTime::from_ms(1000));
        let short = p.evaluate(&o, &pair01(), SimTime::from_ms(100));
        assert!(short.total_profit() < long.total_profit());
    }

    #[test]
    fn overhead_fraction_is_capped_at_one() {
        let o = obs(&[50.0, 50.0], &[50.0, 50.0]);
        let p = Predictor::new(5_000.0); // swapOH longer than the quantum
        let sp = p.evaluate(&o, &pair01(), SimTime::from_ms(100));
        assert!((sp.profit_low - (50.0 - 50.0 - 50.0)).abs() < 1e-9);
        assert_eq!(sp.predicted_low, 0.0);
    }

    #[test]
    fn score_computes_signed_relative_error() {
        let mut p = Predictor::new(3.0);
        let before = obs(&[100.0, 50.0], &[0.0, 0.0]);
        // Predict t0 stays at 100, t1 swapped and predicted 80.
        let mut swapped = HashMap::new();
        swapped.insert(ThreadId(1), 80.0);
        p.commit(&before, &swapped);
        // Next quantum: t0 measured 90 (over-predicted), t1 measured 100.
        let after = obs(&[90.0, 100.0], &[0.0, 0.0]);
        p.score(&after, SimTime::from_ms(500));
        // Per-thread samples.
        let samples = p.per_thread_error_values();
        assert_eq!(samples.len(), 2);
        assert!((samples[0] - (100.0 - 90.0) / 90.0).abs() < 1e-9);
        assert!((samples[1] - (80.0 - 100.0) / 100.0).abs() < 1e-9);
        // One per-quantum aggregate: Σ(pred−actual)/Σactual.
        let errs = p.error_values();
        assert_eq!(errs.len(), 1);
        let expect = ((100.0 - 90.0) + (80.0 - 100.0)) / (90.0 + 100.0);
        assert!((errs[0] - expect).abs() < 1e-9);
        // Scoring consumed the pending predictions.
        p.score(&after, SimTime::from_ms(1000));
        assert_eq!(p.errors().len(), 2);
        // The migration feedback learned from t1's ratio (100/80 clamped).
        assert!(p.migration_correction() > 1.0);
    }

    #[test]
    fn near_zero_actuals_are_skipped() {
        let mut p = Predictor::new(3.0);
        let before = obs(&[100.0, 0.0], &[0.0, 0.0]);
        p.commit(&before, &HashMap::new());
        let after = obs(&[100.0, 0.0], &[0.0, 0.0]);
        p.score(&after, SimTime::from_ms(500));
        // Only the live thread is scored; the zero-rate thread is skipped.
        assert_eq!(p.errors().len(), 1);
    }

    #[test]
    fn error_trace_is_the_per_quantum_aggregate() {
        let mut p = Predictor::new(3.0);
        let before = obs(&[10.0, 30.0], &[0.0, 0.0]);
        p.commit(&before, &HashMap::new());
        let after = obs(&[20.0, 30.0], &[0.0, 0.0]);
        p.score(&after, SimTime::from_ms(500));
        let trace = p.error_trace();
        assert_eq!(trace.len(), 1);
        assert!((trace[0].0 - 0.5).abs() < 1e-12);
        // Aggregate: ((10-20) + (30-30)) / (20+30) = -0.2.
        assert!((trace[0].1 - (-0.2)).abs() < 1e-9);
    }
}
