//! The Decider: accept or reject each candidate swap (Section III-D).
//!
//! Two rules, evaluated independently per pair:
//!
//! 1. **Cooldown** — "Dike does not swap a thread in consecutive quanta":
//!    a pair is skipped when either member migrated during the last
//!    quantum.
//! 2. **Profit** — "the decider ignores pairs with negative totalProfit":
//!    the Predictor's Eqn 3 total must be positive.
//!
//! Both rules are individually switchable for the ablation benchmarks
//! ("Dike minus predictor" accepts every Selector pair, which degenerates
//! toward DIO's migration volume).

use crate::observer::Observation;
use crate::predictor::SwapPrediction;
use crate::selector::Pair;

/// Why a pair was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// A member migrated last quantum.
    Cooldown,
    /// Predicted total profit was not positive.
    NegativeProfit,
}

/// The Decider's verdict for one pair.
pub type Verdict = Result<(), Rejection>;

/// Decide one pair.
pub fn decide(
    obs: &Observation,
    pair: &Pair,
    prediction: &SwapPrediction,
    cooldown: bool,
    use_prediction: bool,
) -> Verdict {
    if cooldown {
        let recently_moved = |id| {
            obs.threads
                .iter()
                .find(|t| t.id == id)
                .map(|t| t.migrated_last_quantum)
                .unwrap_or(false)
        };
        if recently_moved(pair.low) || recently_moved(pair.high) {
            return Err(Rejection::Cooldown);
        }
    }
    if use_prediction && prediction.total_profit() <= 0.0 {
        return Err(Rejection::NegativeProfit);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{ObservedThread, ThreadClass};
    use dike_machine::{AppId, ThreadId, VCoreId};

    fn obs(migrated: [bool; 2]) -> Observation {
        let threads = (0..2)
            .map(|i| ObservedThread {
                id: ThreadId(i),
                app: AppId(0),
                vcore: VCoreId(i),
                access_rate: 10.0,
                llc_miss_rate: 0.2,
                class: ThreadClass::Memory,
                migrated_last_quantum: migrated[i as usize],
                confidence: 1.0,
            })
            .collect();
        Observation {
            threads,
            high_bw: vec![true, false],
            core_bw: vec![0.0, 0.0],
            core_domain: vec![dike_machine::DomainId(0); 2],
            num_domains: 1,
            fairness_cv: 1.0,
            memory_fraction: 1.0,
        }
    }

    fn pair() -> Pair {
        Pair {
            low: ThreadId(0),
            low_vcore: VCoreId(0),
            high: ThreadId(1),
            high_vcore: VCoreId(1),
        }
    }

    fn prediction(total: f64) -> SwapPrediction {
        SwapPrediction {
            profit_low: total,
            profit_high: 0.0,
            predicted_low: 1.0,
            predicted_high: 1.0,
        }
    }

    #[test]
    fn accepts_profitable_cool_pairs() {
        assert_eq!(
            decide(&obs([false, false]), &pair(), &prediction(5.0), true, true),
            Ok(())
        );
    }

    #[test]
    fn cooldown_rejects_recently_swapped_members() {
        for migrated in [[true, false], [false, true], [true, true]] {
            assert_eq!(
                decide(&obs(migrated), &pair(), &prediction(5.0), true, true),
                Err(Rejection::Cooldown)
            );
        }
        // Disabled cooldown lets them through.
        assert_eq!(
            decide(&obs([true, true]), &pair(), &prediction(5.0), false, true),
            Ok(())
        );
    }

    #[test]
    fn negative_profit_is_rejected_unless_prediction_disabled() {
        assert_eq!(
            decide(&obs([false, false]), &pair(), &prediction(-1.0), true, true),
            Err(Rejection::NegativeProfit)
        );
        assert_eq!(
            decide(&obs([false, false]), &pair(), &prediction(0.0), true, true),
            Err(Rejection::NegativeProfit)
        );
        assert_eq!(
            decide(
                &obs([false, false]),
                &pair(),
                &prediction(-1.0),
                true,
                false
            ),
            Ok(())
        );
    }

    #[test]
    fn cooldown_checked_before_profit() {
        assert_eq!(
            decide(&obs([true, false]), &pair(), &prediction(-1.0), true, true),
            Err(Rejection::Cooldown)
        );
    }
}
