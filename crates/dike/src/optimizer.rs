//! The Optimizer: Algorithm 2 — adaptive tuning of ⟨swapSize, quantaLength⟩.
//!
//! When the system is unfair, the Optimizer classifies the current workload
//! (B/UC/UM, from the observed fraction of memory-intensive threads) and
//! moves the scheduler configuration one unit toward the per-class optimum
//! derived from the paper's Figure 5 contours:
//!
//! | goal        | class | quantaLength                | swapSize     |
//! |-------------|-------|-----------------------------|--------------|
//! | Fairness    | B     | decrease, floor 100 ms      | —            |
//! | Fairness    | UC    | decrease, floor 200 ms      | +2, cap 16   |
//! | Fairness    | UM    | decrease, floor 500 ms      | +2, cap 16   |
//! | Performance | B     | increase, cap 1000 ms       | —            |
//! | Performance | UC    | increase, cap 1000 ms       | +2, cap 16   |
//! | Performance | UM    | increase, cap 1000 ms       | —            |
//!
//! "In every step, the optimizer is allowed to change [each] scheduling
//! parameter for one unit" — updating the quantum from 100 ms to 1000 ms
//! takes three calls.

use crate::config::{AdaptationGoal, DikeConfig, SchedConfig};
use crate::observer::Observation;

/// The paper's workload types as *observed* by the scheduler.
///
/// Defined here rather than imported from the workloads crate: the
/// scheduler must not know the benchmark suite; it infers the type from
/// counters alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadType {
    /// Balanced.
    B,
    /// Unbalanced, compute-intensive.
    UC,
    /// Unbalanced, memory-intensive.
    UM,
}

/// Classify the running workload from the observed memory-thread fraction.
///
/// Bands are asymmetric (defaults 0.30/0.50) so that a communication-bound
/// background app classified compute (KMEANS) does not flip a balanced
/// workload's class; see [`DikeConfig::uc_band`].
pub fn classify_workload(memory_fraction: f64, uc_band: f64, um_band: f64) -> WorkloadType {
    if memory_fraction < uc_band {
        WorkloadType::UC
    } else if memory_fraction > um_band {
        WorkloadType::UM
    } else {
        WorkloadType::B
    }
}

/// One optimizer step (Algorithm 2). Mutates `sched` in place and returns
/// the detected workload type. No-op when the system is already fair.
pub fn step(cfg: &DikeConfig, obs: &Observation, sched: &mut SchedConfig) -> Option<WorkloadType> {
    let goal = cfg.adaptation?;
    if obs.is_fair(cfg.fairness_threshold) {
        return None;
    }
    let wl_type = classify_workload(obs.memory_fraction, cfg.uc_band, cfg.um_band);
    match goal {
        AdaptationGoal::Fairness => match wl_type {
            WorkloadType::B => sched.decrease_quantum(100),
            WorkloadType::UC => {
                sched.increase_swap_size();
                sched.decrease_quantum(200);
            }
            WorkloadType::UM => {
                sched.increase_swap_size();
                sched.decrease_quantum(500);
            }
        },
        AdaptationGoal::Performance => match wl_type {
            WorkloadType::B => sched.increase_quantum(1000),
            WorkloadType::UC => {
                sched.increase_swap_size();
                sched.increase_quantum(1000);
            }
            WorkloadType::UM => sched.increase_quantum(1000),
        },
    }
    Some(wl_type)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::Observation;

    fn obs(memory_fraction: f64, fairness_cv: f64) -> Observation {
        Observation {
            threads: Vec::new(),
            high_bw: Vec::new(),
            core_bw: Vec::new(),
            core_domain: Vec::new(),
            num_domains: 1,
            fairness_cv,
            memory_fraction,
        }
    }

    fn cfg(goal: AdaptationGoal) -> DikeConfig {
        DikeConfig {
            adaptation: Some(goal),
            ..DikeConfig::default()
        }
    }

    #[test]
    fn bands_classify_the_paper_mixes_correctly() {
        // Observed fractions with the KMEANS background (8 of 40 threads
        // classified compute): B = 16/40, UC = 8/40, UM = 24/40.
        let c = DikeConfig::default();
        assert_eq!(
            classify_workload(16.0 / 40.0, c.uc_band, c.um_band),
            WorkloadType::B
        );
        assert_eq!(
            classify_workload(8.0 / 40.0, c.uc_band, c.um_band),
            WorkloadType::UC
        );
        assert_eq!(
            classify_workload(24.0 / 40.0, c.uc_band, c.um_band),
            WorkloadType::UM
        );
    }

    #[test]
    fn fair_system_leaves_config_alone() {
        let c = cfg(AdaptationGoal::Fairness);
        let mut sched = SchedConfig::DEFAULT;
        assert_eq!(step(&c, &obs(0.5, 0.01), &mut sched), None);
        assert_eq!(sched, SchedConfig::DEFAULT);
    }

    #[test]
    fn non_adaptive_never_steps() {
        let c = DikeConfig::default();
        let mut sched = SchedConfig::DEFAULT;
        assert_eq!(step(&c, &obs(0.5, 5.0), &mut sched), None);
    }

    #[test]
    fn fairness_goal_walks_to_per_class_targets() {
        // B: quantum down to 100, swap size untouched.
        let c = cfg(AdaptationGoal::Fairness);
        let mut sched = SchedConfig::DEFAULT;
        for _ in 0..5 {
            step(&c, &obs(0.4, 5.0), &mut sched);
        }
        assert_eq!(sched.quantum_ms, 100);
        assert_eq!(sched.swap_size, 8);

        // UC: quantum floored at 200, swap size to 16.
        let mut sched = SchedConfig::DEFAULT;
        for _ in 0..5 {
            step(&c, &obs(0.2, 5.0), &mut sched);
        }
        assert_eq!(sched.quantum_ms, 200);
        assert_eq!(sched.swap_size, 16);

        // UM: quantum floored at 500, swap size to 16.
        let mut sched = SchedConfig::DEFAULT;
        for _ in 0..5 {
            step(&c, &obs(0.7, 5.0), &mut sched);
        }
        assert_eq!(sched.quantum_ms, 500);
        assert_eq!(sched.swap_size, 16);
    }

    #[test]
    fn performance_goal_walks_to_long_quanta() {
        let c = cfg(AdaptationGoal::Performance);
        for (frac, expect_swap) in [(0.4, 8), (0.2, 16), (0.7, 8)] {
            let mut sched = SchedConfig::DEFAULT;
            for _ in 0..5 {
                step(&c, &obs(frac, 5.0), &mut sched);
            }
            assert_eq!(sched.quantum_ms, 1000, "fraction {frac}");
            assert_eq!(sched.swap_size, expect_swap, "fraction {frac}");
        }
    }

    #[test]
    fn one_unit_per_step() {
        let c = cfg(AdaptationGoal::Fairness);
        let mut sched = SchedConfig::DEFAULT; // 500ms
        step(&c, &obs(0.4, 5.0), &mut sched);
        assert_eq!(sched.quantum_ms, 200); // one rung only
        step(&c, &obs(0.4, 5.0), &mut sched);
        assert_eq!(sched.quantum_ms, 100);
    }

    #[test]
    fn reports_detected_type() {
        let c = cfg(AdaptationGoal::Fairness);
        let mut sched = SchedConfig::DEFAULT;
        assert_eq!(step(&c, &obs(0.2, 5.0), &mut sched), Some(WorkloadType::UC));
        assert_eq!(step(&c, &obs(0.7, 5.0), &mut sched), Some(WorkloadType::UM));
        assert_eq!(step(&c, &obs(0.4, 5.0), &mut sched), Some(WorkloadType::B));
    }
}
