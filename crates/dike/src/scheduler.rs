//! The Dike scheduler: Observer → Selector → Predictor → Decider →
//! Migrator, plus the adaptive Optimizer (Figure 3's loop).

use crate::config::{AdaptationGoal, DikeConfig, SchedConfig};
use crate::decider::{decide, Rejection};
use crate::observer::{Observation, Observer};
use crate::optimizer;
use crate::predictor::Predictor;
use crate::selector::{select_pairs_into, Pair, SelectScratch};
use dike_machine::SimTime;
use dike_sched_core::{Actions, Scheduler, SwapPlanner, SystemView};
use std::collections::HashMap;

/// Counters describing what Dike did during a run (for tests, the swap
/// accounting of Table III, and the ablation benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DikeStats {
    /// Quanta observed.
    pub quanta: u64,
    /// Quanta skipped because the system was fair (the Algorithm 1 gate).
    pub fair_quanta: u64,
    /// Pairs proposed by the Selector.
    pub pairs_proposed: u64,
    /// Pairs rejected by the Decider's cooldown rule.
    pub rejected_cooldown: u64,
    /// Pairs rejected for non-positive predicted profit.
    pub rejected_profit: u64,
    /// Swaps actually performed.
    pub swaps: u64,
    /// Optimizer steps taken (adaptive modes only).
    pub optimizer_steps: u64,
    /// Thread-quanta excluded from pairing because sample confidence was
    /// below the floor or the thread was in post-abandonment fallback
    /// (hardened pipeline only).
    pub rejected_low_confidence: u64,
    /// Unconfirmed-swap retries issued by the actuation planner
    /// (hardened pipeline only).
    pub swap_retries: u64,
    /// Swaps abandoned after exhausting the retry budget (hardened
    /// pipeline only).
    pub swaps_abandoned: u64,
    /// True once the watchdog demoted the policy to the Null/CFS floor
    /// (non-finite fairness estimates; hardened pipeline only).
    pub demoted: bool,
}

/// The Dike scheduler.
///
/// Construct with [`Dike::new`] (non-adaptive ⟨8, 500⟩ default),
/// [`Dike::adaptive_fairness`] (Dike-AF) or [`Dike::adaptive_performance`]
/// (Dike-AP), or from an explicit [`DikeConfig`] via [`Dike::with_config`].
#[derive(Debug)]
pub struct Dike {
    cfg: DikeConfig,
    sched: SchedConfig,
    observer: Option<Observer>,
    predictor: Predictor,
    stats: DikeStats,
    name: String,
    /// Actuation verification (hardened pipeline only).
    planner: Option<SwapPlanner>,
    /// Set by the watchdog: the policy has demoted itself to the
    /// Null/CFS floor and issues no further actions.
    demoted: bool,
    /// `DIKE_TRACE` checked once at construction: `std::env::var`
    /// allocates a CString per call on Unix, which would put an
    /// allocation in every pair evaluation.
    trace: bool,
    /// Reusable per-quantum observation.
    obs: Observation,
    /// Reusable actuation-eligible copy (hardened pipeline only).
    eligible: Observation,
    /// Reusable Selector output and scratch.
    pairs: Vec<Pair>,
    select_scratch: SelectScratch,
    /// Reusable accepted-swap prediction map (cleared each quantum;
    /// `HashMap::clear` retains capacity).
    swapped_predictions: HashMap<dike_machine::ThreadId, f64>,
}

impl Dike {
    /// The paper's non-adaptive "Dike": fixed ⟨swapSize 8, quantum 500 ms⟩.
    pub fn new() -> Self {
        Dike::with_config(DikeConfig::default())
    }

    /// Dike-AF: adaptive, favouring fairness.
    pub fn adaptive_fairness() -> Self {
        Dike::with_config(DikeConfig::adaptive_fairness())
    }

    /// Dike-AP: adaptive, favouring performance.
    pub fn adaptive_performance() -> Self {
        Dike::with_config(DikeConfig::adaptive_performance())
    }

    /// Non-adaptive Dike with an explicit ⟨swapSize, quantaLength⟩ (the
    /// configuration-grid experiments of Figures 2/4/5).
    pub fn fixed(sched: SchedConfig) -> Self {
        Dike::with_config(DikeConfig::fixed(sched))
    }

    /// Dike-H: the fault-hardened pipeline (sanitize → holdover →
    /// retry/backoff → watchdog demotion) with default knobs.
    pub fn hardened() -> Self {
        Dike::with_config(DikeConfig::hardened(SchedConfig::DEFAULT))
    }

    /// Build from a full configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn with_config(cfg: DikeConfig) -> Self {
        cfg.validate().expect("invalid Dike configuration");
        let mut name = match cfg.adaptation {
            None => "Dike".to_string(),
            Some(AdaptationGoal::Fairness) => "Dike-AF".to_string(),
            Some(AdaptationGoal::Performance) => "Dike-AP".to_string(),
        };
        if cfg.hardening.is_some() {
            name.push_str("-H");
        }
        Dike {
            sched: cfg.sched,
            predictor: Predictor::new(cfg.swap_oh_ms),
            observer: None,
            stats: DikeStats::default(),
            name,
            planner: cfg
                .hardening
                .map(|h| SwapPlanner::new(h.retry_budget, h.fallback_cooldown_quanta as u64)),
            demoted: false,
            trace: std::env::var("DIKE_TRACE").is_ok(),
            obs: Observation::default(),
            eligible: Observation::default(),
            pairs: Vec::new(),
            select_scratch: SelectScratch::default(),
            swapped_predictions: HashMap::new(),
            cfg,
        }
    }

    /// Run counters.
    pub fn stats(&self) -> DikeStats {
        self.stats
    }

    /// The current ⟨swapSize, quantaLength⟩ (changes in adaptive modes).
    pub fn current_config(&self) -> SchedConfig {
        self.sched
    }

    /// The Predictor's scored error samples (Figures 7/8).
    pub fn predictor(&self) -> &Predictor {
        &self.predictor
    }

    /// The full configuration.
    pub fn config(&self) -> &DikeConfig {
        &self.cfg
    }
}

impl Default for Dike {
    fn default() -> Self {
        Dike::new()
    }
}

impl Scheduler for Dike {
    fn name(&self) -> &str {
        &self.name
    }

    fn initial_quantum(&self) -> SimTime {
        self.sched.quantum()
    }

    fn on_quantum(&mut self, view: &SystemView, actions: &mut Actions) {
        self.stats.quanta += 1;

        // Watchdog floor: once demoted, behave exactly like the Null/CFS
        // policy — observe nothing, request nothing, let the substrate's
        // load balancing place threads.
        if self.demoted {
            return;
        }

        // Actuation verification (hardened pipeline): confirm that last
        // quantum's swaps landed; retry with exponential backoff, or pull
        // the pair out of Dike's hands (fallback) once the budget is spent.
        if let Some(planner) = &mut self.planner {
            let report = planner.verify(view, actions, view.quantum_index);
            self.stats.swap_retries += u64::from(report.retried);
            self.stats.swaps_abandoned += u64::from(report.abandoned);
        }

        let observer = self
            .observer
            .get_or_insert_with(|| Observer::new(&self.cfg, view.cores.len()));
        observer.observe_into(view, &mut self.obs);
        let obs = &self.obs;

        // Watchdog (hardened pipeline): if the fairness estimates go
        // non-finite despite sanitization, the policy cannot be trusted —
        // demote permanently to the Null/CFS floor.
        if self.planner.is_some()
            && (!obs.fairness_cv.is_finite()
                || !obs.memory_fraction.is_finite()
                || obs.core_bw.iter().any(|b| !b.is_finite()))
        {
            self.demoted = true;
            self.stats.demoted = true;
            return;
        }

        // Close the prediction loop: score last quantum's predictions.
        self.predictor.score(obs, view.now);

        // Optimizer (adaptive modes): one unit of configuration movement.
        let before = self.sched;
        if optimizer::step(&self.cfg, obs, &mut self.sched).is_some() {
            self.stats.optimizer_steps += 1;
            if self.sched.quantum_ms != before.quantum_ms {
                actions.set_quantum = Some(self.sched.quantum());
            }
        }

        self.swapped_predictions.clear();

        // Fairness gate.
        if obs.is_fair(self.cfg.fairness_threshold) {
            self.stats.fair_quanta += 1;
            self.predictor.commit(&self.obs, &self.swapped_predictions);
            return;
        }

        // Selector → Predictor → Decider → Migrator.
        // Hardened pipeline: select pairs among actuation-eligible threads
        // only. Held-over threads (confidence below the floor) and members
        // of abandoned swaps (fallback) still inform the fairness and
        // bandwidth estimates above, but pairing them would either waste a
        // healthy partner's swap or move a thread on stale placement data.
        let pairs_from = if let Some(h) = self.cfg.hardening {
            let planner = self.planner.as_ref().expect("hardening implies planner");
            let q = view.quantum_index;
            self.obs.clone_into(&mut self.eligible);
            let stats = &mut self.stats;
            self.eligible.threads.retain(|t| {
                let keep = t.confidence >= h.min_confidence && !planner.in_fallback(t.id, q);
                if !keep {
                    stats.rejected_low_confidence += 1;
                }
                keep
            });
            &self.eligible
        } else {
            &self.obs
        };
        select_pairs_into(
            pairs_from,
            self.sched.swap_size,
            self.cfg.fairness_threshold,
            &mut self.select_scratch,
            &mut self.pairs,
        );
        self.stats.pairs_proposed += self.pairs.len() as u64;
        let obs = &self.obs;
        for pair in &self.pairs {
            let prediction = self.predictor.evaluate(obs, pair, self.sched.quantum());
            if self.trace {
                let low = obs.threads.iter().find(|t| t.id == pair.low).unwrap();
                let high = obs.threads.iter().find(|t| t.id == pair.high).unwrap();
                eprintln!(
                    "t={:.1} pair low={:?}@{:?}(r={:.2e},{:?}) high={:?}@{:?}(r={:.2e},{:?}) bw_l_dest={:.2e} bw_h_dest={:.2e} profit={:.2e}",
                    view.now.as_secs_f64(),
                    pair.low, pair.low_vcore, low.access_rate, low.class,
                    pair.high, pair.high_vcore, high.access_rate, high.class,
                    obs.core_bw[pair.high_vcore.index()],
                    obs.core_bw[pair.low_vcore.index()],
                    prediction.total_profit()
                );
            }
            match decide(
                obs,
                pair,
                &prediction,
                self.cfg.cooldown,
                self.cfg.use_prediction,
            ) {
                Ok(()) => {
                    actions.swap((pair.low, pair.low_vcore), (pair.high, pair.high_vcore));
                    if let Some(planner) = &mut self.planner {
                        planner.track(
                            (pair.low, pair.low_vcore),
                            (pair.high, pair.high_vcore),
                            view.quantum_index,
                        );
                    }
                    self.swapped_predictions
                        .insert(pair.low, prediction.predicted_low);
                    self.swapped_predictions
                        .insert(pair.high, prediction.predicted_high);
                    self.stats.swaps += 1;
                }
                Err(Rejection::Cooldown) => self.stats.rejected_cooldown += 1,
                Err(Rejection::NegativeProfit) => self.stats.rejected_profit += 1,
            }
        }

        // Commit next-quantum predictions for every thread.
        self.predictor.commit(&self.obs, &self.swapped_predictions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_machine::{presets, Machine, SimTime};
    use dike_sched_core::run;
    use dike_workloads::apps::AppKind;
    use dike_workloads::{Placement, Workload};

    fn small_workload() -> Workload {
        let mut w = Workload::plain("test", vec![AppKind::Jacobi, AppKind::Leukocyte]);
        w.threads_per_app = 4;
        w
    }

    fn run_dike(mut dike: Dike) -> (dike_sched_core::RunResult, Dike) {
        let mut machine = Machine::new(presets::small_machine(3));
        small_workload().spawn(&mut machine, Placement::Interleaved, 0.2);
        let result = run(&mut machine, &mut dike, SimTime::from_secs_f64(300.0));
        (result, dike)
    }

    #[test]
    fn dike_names_match_paper_policies() {
        assert_eq!(Dike::new().name(), "Dike");
        assert_eq!(Dike::adaptive_fairness().name(), "Dike-AF");
        assert_eq!(Dike::adaptive_performance().name(), "Dike-AP");
    }

    #[test]
    fn default_quantum_is_500ms() {
        assert_eq!(Dike::new().initial_quantum(), SimTime::from_ms(500));
        let custom = Dike::fixed(SchedConfig {
            swap_size: 4,
            quantum_ms: 100,
        });
        assert_eq!(custom.initial_quantum(), SimTime::from_ms(100));
    }

    #[test]
    fn dike_completes_a_mixed_workload_and_swaps_sparingly() {
        let (result, dike) = run_dike(Dike::new());
        assert!(result.completed, "workload did not finish");
        let stats = dike.stats();
        assert!(stats.quanta > 0);
        // Dike performs *some* swaps on an unfair mixed workload…
        assert!(stats.swaps > 0, "expected at least one swap: {stats:?}");
        // …but sparingly: nowhere near DIO's every-pair-every-quantum.
        assert!(
            stats.swaps < 2 * stats.quanta,
            "swapping like DIO: {stats:?}"
        );
        assert_eq!(result.swaps, stats.swaps);
    }

    #[test]
    fn prediction_errors_are_recorded_and_bounded() {
        let (_, dike) = run_dike(Dike::new());
        let errs = dike.predictor().error_values();
        assert!(!errs.is_empty(), "no prediction errors recorded");
        let wild = errs.iter().filter(|e| e.abs() > 2.0).count();
        assert!(
            (wild as f64) < 0.1 * errs.len() as f64,
            "too many wild errors: {wild}/{}",
            errs.len()
        );
    }

    #[test]
    fn adaptive_modes_move_the_configuration() {
        let (_, af) = run_dike(Dike::adaptive_fairness());
        assert!(af.stats().optimizer_steps > 0);
        assert!(af.current_config().quantum_ms < 500);

        let (_, ap) = run_dike(Dike::adaptive_performance());
        assert!(ap.stats().optimizer_steps > 0);
        assert_eq!(ap.current_config().quantum_ms, 1000);
    }

    #[test]
    fn non_adaptive_config_never_moves() {
        let (_, dike) = run_dike(Dike::new());
        assert_eq!(dike.current_config(), SchedConfig::DEFAULT);
        assert_eq!(dike.stats().optimizer_steps, 0);
    }

    #[test]
    fn cooldown_prevents_consecutive_swaps_of_same_thread() {
        // With prediction disabled every selector pair is accepted except
        // for the cooldown, so consecutive quanta cannot move one thread
        // twice. Verify via the machine event log.
        let cfg = DikeConfig {
            use_prediction: false,
            ..DikeConfig::default()
        };
        let mut machine = Machine::new(presets::small_machine(3));
        small_workload().spawn(&mut machine, Placement::Interleaved, 0.2);
        let mut dike = Dike::with_config(cfg);
        let _ = run(&mut machine, &mut dike, SimTime::from_secs_f64(120.0));
        use dike_machine::MachineEvent;
        let mut last_move: std::collections::HashMap<u32, u64> = Default::default();
        for e in machine.events() {
            if let MachineEvent::Migrated { thread, at, .. } = e {
                if let Some(&prev) = last_move.get(&thread.0) {
                    assert!(
                        at.as_ms_f64() as u64 - prev >= 500,
                        "thread {thread} moved twice within a quantum"
                    );
                }
                last_move.insert(thread.0, at.as_ms_f64() as u64);
            }
        }
    }

    #[test]
    fn hardened_dike_matches_plain_dike_without_faults() {
        // With all fault rates zero the hardened pipeline must be
        // behaviourally identical to the paper-faithful one: sanitize is a
        // bit-identical passthrough, confidence is exactly 1.0, and every
        // swap lands and is confirmed on the next quantum. This holds on
        // `small_machine` because its substrate balancer is off; on
        // machines with the balancer enabled the two *legitimately*
        // diverge — the balancer races policy placement, plain Dike
        // silently loses those swaps, and Dike-H's planner re-issues them
        // (the actuation loop working as designed, not injection leakage).
        let (plain, pd) = run_dike(Dike::new());
        let (hard, hd) = run_dike(Dike::hardened());
        assert_eq!(hd.name(), "Dike-H");
        assert!(plain.completed && hard.completed);
        assert_eq!(plain.swaps, hard.swaps);
        assert_eq!(pd.stats().swaps, hd.stats().swaps);
        let hs = hd.stats();
        assert_eq!(hs.swap_retries, 0, "{hs:?}");
        assert_eq!(hs.swaps_abandoned, 0, "{hs:?}");
        assert_eq!(hs.rejected_low_confidence, 0, "{hs:?}");
        assert!(!hs.demoted);
    }

    fn hand_view(bandwidth: f64) -> dike_sched_core::SystemView {
        use dike_counters::RateSample;
        use dike_machine::topology::CoreKind;
        use dike_machine::{AppId, DomainId, ThreadCounters, ThreadId, VCoreId};
        use dike_sched_core::{CoreObservation, SystemView, ThreadObservation};
        let thread = |id: u32, vcore: u32, rate: f64, llc: f64| ThreadObservation {
            id: ThreadId(id),
            app: AppId(id),
            vcore: VCoreId(vcore),
            rates: RateSample {
                access_rate: rate,
                llc_miss_rate: llc,
                ..RateSample::default()
            },
            cumulative: ThreadCounters::default(),
            migrated_last_quantum: false,
            llc_occupancy_mib: 0.0,
        };
        let core = |id: u32, kind: CoreKind| CoreObservation {
            id: VCoreId(id),
            kind,
            domain: DomainId(0),
            bandwidth,
        };
        let mut view = SystemView {
            now: SimTime::from_ms(500),
            quantum: SimTime::from_ms(500),
            threads: vec![thread(0, 0, 5e8, 0.5), thread(1, 1, 1e6, 0.0)],
            cores: vec![core(0, CoreKind::SLOW), core(1, CoreKind::FAST)],
            ..SystemView::default()
        };
        view.assign_occupants();
        view
    }

    #[test]
    fn watchdog_demotes_on_non_finite_fairness_estimates() {
        use dike_sched_core::Actions;
        let mut dike = Dike::hardened();
        let mut actions = Actions::default();
        dike.on_quantum(&hand_view(f64::NAN), &mut actions);
        assert!(dike.stats().demoted, "{:?}", dike.stats());
        assert!(actions.is_empty(), "demoted policy issued actions");

        // Demotion is permanent: healthy views no longer produce actions.
        let mut actions = Actions::default();
        dike.on_quantum(&hand_view(5e8), &mut actions);
        assert!(actions.is_empty());
        assert!(dike.stats().demoted);
    }

    #[test]
    fn unhardened_dike_has_no_watchdog_or_planner() {
        use dike_sched_core::Actions;
        let mut dike = Dike::new();
        let mut actions = Actions::default();
        dike.on_quantum(&hand_view(f64::NAN), &mut actions);
        assert!(!dike.stats().demoted);
    }

    #[test]
    fn nan_corruption_faults_do_not_poison_swap_decisions() {
        // Heavy telemetry corruption (dropout + NaN/zero/saturate + noise)
        // against the *unhardened* paper pipeline: the observer's
        // unconditional sanitization must keep every prediction finite and
        // the run panic-free.
        let mut cfg = presets::small_machine(3);
        cfg.faults = dike_machine::FaultConfig::telemetry_axis(0.30, 7);
        let mut machine = Machine::new(cfg);
        small_workload().spawn(&mut machine, Placement::Interleaved, 0.2);
        let mut dike = Dike::new();
        let result = run(&mut machine, &mut dike, SimTime::from_secs_f64(300.0));
        assert!(result.completed);
        let errs = dike.predictor().error_values();
        assert!(
            errs.iter().all(|e| e.is_finite()),
            "NaN leaked into swap predictions"
        );
    }

    #[test]
    fn corrupted_telemetry_never_panics_multi_domain_selection() {
        // Same corruption regime as above but on a 2-controller NUMA box,
        // exercising the hierarchical per-domain nomination path: the
        // un-hardened pipeline's NaN-safe ordering (total_cmp) must keep
        // selection panic-free and every emitted pair domain-local even
        // when corrupted rates reach the Selector.
        let mut cfg = presets::numa_machine(2, 5);
        cfg.faults = dike_machine::FaultConfig::telemetry_axis(0.35, 11);
        let mut machine = Machine::new(cfg);
        small_workload().spawn(&mut machine, Placement::Interleaved, 0.2);
        let mut dike = Dike::new();
        let result = run(&mut machine, &mut dike, SimTime::from_secs_f64(300.0));
        assert!(result.completed);
        assert!(
            dike.predictor()
                .error_values()
                .iter()
                .all(|e| e.is_finite()),
            "NaN leaked into swap predictions"
        );
    }

    #[test]
    #[should_panic(expected = "invalid Dike configuration")]
    fn bad_config_panics_at_construction() {
        let _ = Dike::with_config(DikeConfig {
            fairness_threshold: -1.0,
            ..DikeConfig::default()
        });
    }
}
