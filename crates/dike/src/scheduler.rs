//! The Dike scheduler: Observer → Selector → Predictor → Decider →
//! Migrator, plus the adaptive Optimizer (Figure 3's loop).

use crate::config::{AdaptationGoal, DikeConfig, SchedConfig};
use crate::decider::{decide, Rejection};
use crate::observer::Observer;
use crate::optimizer;
use crate::predictor::Predictor;
use crate::selector::select_pairs;
use dike_machine::SimTime;
use dike_sched_core::{Actions, Scheduler, SystemView};
use std::collections::HashMap;

/// Counters describing what Dike did during a run (for tests, the swap
/// accounting of Table III, and the ablation benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DikeStats {
    /// Quanta observed.
    pub quanta: u64,
    /// Quanta skipped because the system was fair (the Algorithm 1 gate).
    pub fair_quanta: u64,
    /// Pairs proposed by the Selector.
    pub pairs_proposed: u64,
    /// Pairs rejected by the Decider's cooldown rule.
    pub rejected_cooldown: u64,
    /// Pairs rejected for non-positive predicted profit.
    pub rejected_profit: u64,
    /// Swaps actually performed.
    pub swaps: u64,
    /// Optimizer steps taken (adaptive modes only).
    pub optimizer_steps: u64,
}

/// The Dike scheduler.
///
/// Construct with [`Dike::new`] (non-adaptive ⟨8, 500⟩ default),
/// [`Dike::adaptive_fairness`] (Dike-AF) or [`Dike::adaptive_performance`]
/// (Dike-AP), or from an explicit [`DikeConfig`] via [`Dike::with_config`].
#[derive(Debug)]
pub struct Dike {
    cfg: DikeConfig,
    sched: SchedConfig,
    observer: Option<Observer>,
    predictor: Predictor,
    stats: DikeStats,
    name: String,
}

impl Dike {
    /// The paper's non-adaptive "Dike": fixed ⟨swapSize 8, quantum 500 ms⟩.
    pub fn new() -> Self {
        Dike::with_config(DikeConfig::default())
    }

    /// Dike-AF: adaptive, favouring fairness.
    pub fn adaptive_fairness() -> Self {
        Dike::with_config(DikeConfig::adaptive_fairness())
    }

    /// Dike-AP: adaptive, favouring performance.
    pub fn adaptive_performance() -> Self {
        Dike::with_config(DikeConfig::adaptive_performance())
    }

    /// Non-adaptive Dike with an explicit ⟨swapSize, quantaLength⟩ (the
    /// configuration-grid experiments of Figures 2/4/5).
    pub fn fixed(sched: SchedConfig) -> Self {
        Dike::with_config(DikeConfig::fixed(sched))
    }

    /// Build from a full configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn with_config(cfg: DikeConfig) -> Self {
        cfg.validate().expect("invalid Dike configuration");
        let name = match cfg.adaptation {
            None => "Dike".to_string(),
            Some(AdaptationGoal::Fairness) => "Dike-AF".to_string(),
            Some(AdaptationGoal::Performance) => "Dike-AP".to_string(),
        };
        Dike {
            sched: cfg.sched,
            predictor: Predictor::new(cfg.swap_oh_ms),
            observer: None,
            stats: DikeStats::default(),
            name,
            cfg,
        }
    }

    /// Run counters.
    pub fn stats(&self) -> DikeStats {
        self.stats
    }

    /// The current ⟨swapSize, quantaLength⟩ (changes in adaptive modes).
    pub fn current_config(&self) -> SchedConfig {
        self.sched
    }

    /// The Predictor's scored error samples (Figures 7/8).
    pub fn predictor(&self) -> &Predictor {
        &self.predictor
    }

    /// The full configuration.
    pub fn config(&self) -> &DikeConfig {
        &self.cfg
    }
}

impl Default for Dike {
    fn default() -> Self {
        Dike::new()
    }
}

impl Scheduler for Dike {
    fn name(&self) -> &str {
        &self.name
    }

    fn initial_quantum(&self) -> SimTime {
        self.sched.quantum()
    }

    fn on_quantum(&mut self, view: &SystemView, actions: &mut Actions) {
        self.stats.quanta += 1;
        let observer = self
            .observer
            .get_or_insert_with(|| Observer::new(&self.cfg, view.cores.len()));
        let obs = observer.observe(view);

        // Close the prediction loop: score last quantum's predictions.
        self.predictor.score(&obs, view.now);

        // Optimizer (adaptive modes): one unit of configuration movement.
        let before = self.sched;
        if optimizer::step(&self.cfg, &obs, &mut self.sched).is_some() {
            self.stats.optimizer_steps += 1;
            if self.sched.quantum_ms != before.quantum_ms {
                actions.set_quantum = Some(self.sched.quantum());
            }
        }

        // Fairness gate.
        if obs.is_fair(self.cfg.fairness_threshold) {
            self.stats.fair_quanta += 1;
            self.predictor.commit(&obs, &HashMap::new());
            return;
        }

        // Selector → Predictor → Decider → Migrator.
        let pairs = select_pairs(&obs, self.sched.swap_size, self.cfg.fairness_threshold);
        self.stats.pairs_proposed += pairs.len() as u64;
        let mut swapped_predictions: HashMap<dike_machine::ThreadId, f64> = HashMap::new();
        for pair in &pairs {
            let prediction = self.predictor.evaluate(&obs, pair, self.sched.quantum());
            if std::env::var("DIKE_TRACE").is_ok() {
                let low = obs.threads.iter().find(|t| t.id == pair.low).unwrap();
                let high = obs.threads.iter().find(|t| t.id == pair.high).unwrap();
                eprintln!(
                    "t={:.1} pair low={:?}@{:?}(r={:.2e},{:?}) high={:?}@{:?}(r={:.2e},{:?}) bw_l_dest={:.2e} bw_h_dest={:.2e} profit={:.2e}",
                    view.now.as_secs_f64(),
                    pair.low, pair.low_vcore, low.access_rate, low.class,
                    pair.high, pair.high_vcore, high.access_rate, high.class,
                    obs.core_bw[pair.high_vcore.index()],
                    obs.core_bw[pair.low_vcore.index()],
                    prediction.total_profit()
                );
            }
            match decide(
                &obs,
                pair,
                &prediction,
                self.cfg.cooldown,
                self.cfg.use_prediction,
            ) {
                Ok(()) => {
                    actions.swap((pair.low, pair.low_vcore), (pair.high, pair.high_vcore));
                    swapped_predictions.insert(pair.low, prediction.predicted_low);
                    swapped_predictions.insert(pair.high, prediction.predicted_high);
                    self.stats.swaps += 1;
                }
                Err(Rejection::Cooldown) => self.stats.rejected_cooldown += 1,
                Err(Rejection::NegativeProfit) => self.stats.rejected_profit += 1,
            }
        }

        // Commit next-quantum predictions for every thread.
        self.predictor.commit(&obs, &swapped_predictions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_machine::{presets, Machine, SimTime};
    use dike_sched_core::run;
    use dike_workloads::apps::AppKind;
    use dike_workloads::{Placement, Workload};

    fn small_workload() -> Workload {
        let mut w = Workload::plain("test", vec![AppKind::Jacobi, AppKind::Leukocyte]);
        w.threads_per_app = 4;
        w
    }

    fn run_dike(mut dike: Dike) -> (dike_sched_core::RunResult, Dike) {
        let mut machine = Machine::new(presets::small_machine(3));
        small_workload().spawn(&mut machine, Placement::Interleaved, 0.2);
        let result = run(&mut machine, &mut dike, SimTime::from_secs_f64(300.0));
        (result, dike)
    }

    #[test]
    fn dike_names_match_paper_policies() {
        assert_eq!(Dike::new().name(), "Dike");
        assert_eq!(Dike::adaptive_fairness().name(), "Dike-AF");
        assert_eq!(Dike::adaptive_performance().name(), "Dike-AP");
    }

    #[test]
    fn default_quantum_is_500ms() {
        assert_eq!(Dike::new().initial_quantum(), SimTime::from_ms(500));
        let custom = Dike::fixed(SchedConfig {
            swap_size: 4,
            quantum_ms: 100,
        });
        assert_eq!(custom.initial_quantum(), SimTime::from_ms(100));
    }

    #[test]
    fn dike_completes_a_mixed_workload_and_swaps_sparingly() {
        let (result, dike) = run_dike(Dike::new());
        assert!(result.completed, "workload did not finish");
        let stats = dike.stats();
        assert!(stats.quanta > 0);
        // Dike performs *some* swaps on an unfair mixed workload…
        assert!(stats.swaps > 0, "expected at least one swap: {stats:?}");
        // …but sparingly: nowhere near DIO's every-pair-every-quantum.
        assert!(
            stats.swaps < 2 * stats.quanta,
            "swapping like DIO: {stats:?}"
        );
        assert_eq!(result.swaps, stats.swaps);
    }

    #[test]
    fn prediction_errors_are_recorded_and_bounded() {
        let (_, dike) = run_dike(Dike::new());
        let errs = dike.predictor().error_values();
        assert!(!errs.is_empty(), "no prediction errors recorded");
        let wild = errs.iter().filter(|e| e.abs() > 2.0).count();
        assert!(
            (wild as f64) < 0.1 * errs.len() as f64,
            "too many wild errors: {wild}/{}",
            errs.len()
        );
    }

    #[test]
    fn adaptive_modes_move_the_configuration() {
        let (_, af) = run_dike(Dike::adaptive_fairness());
        assert!(af.stats().optimizer_steps > 0);
        assert!(af.current_config().quantum_ms < 500);

        let (_, ap) = run_dike(Dike::adaptive_performance());
        assert!(ap.stats().optimizer_steps > 0);
        assert_eq!(ap.current_config().quantum_ms, 1000);
    }

    #[test]
    fn non_adaptive_config_never_moves() {
        let (_, dike) = run_dike(Dike::new());
        assert_eq!(dike.current_config(), SchedConfig::DEFAULT);
        assert_eq!(dike.stats().optimizer_steps, 0);
    }

    #[test]
    fn cooldown_prevents_consecutive_swaps_of_same_thread() {
        // With prediction disabled every selector pair is accepted except
        // for the cooldown, so consecutive quanta cannot move one thread
        // twice. Verify via the machine event log.
        let cfg = DikeConfig {
            use_prediction: false,
            ..DikeConfig::default()
        };
        let mut machine = Machine::new(presets::small_machine(3));
        small_workload().spawn(&mut machine, Placement::Interleaved, 0.2);
        let mut dike = Dike::with_config(cfg);
        let _ = run(&mut machine, &mut dike, SimTime::from_secs_f64(120.0));
        use dike_machine::MachineEvent;
        let mut last_move: std::collections::HashMap<u32, u64> = Default::default();
        for e in machine.events() {
            if let MachineEvent::Migrated { thread, at, .. } = e {
                if let Some(&prev) = last_move.get(&thread.0) {
                    assert!(
                        at.as_ms_f64() as u64 - prev >= 500,
                        "thread {thread} moved twice within a quantum"
                    );
                }
                last_move.insert(thread.0, at.as_ms_f64() as u64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid Dike configuration")]
    fn bad_config_panics_at_construction() {
        let _ = Dike::with_config(DikeConfig {
            fairness_threshold: -1.0,
            ..DikeConfig::default()
        });
    }
}
