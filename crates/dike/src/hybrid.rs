//! Dike+LFOC: both actuators at once.
//!
//! Dike moves threads between heterogeneous cores but leaves the shared
//! LLC to fate; LFOC shapes the LLC but never migrates. The two actuation
//! channels are disjoint ([`Actions::migrations`] + quantum vs
//! [`Actions::partition`]), so the hybrid is literal composition: Dike's
//! full pipeline decides swaps and the quantum, then the LFOC pass decides
//! the way-partition from the same view. Each keeps its own actuation
//! verification (Dike's `SwapPlanner` when hardened, LFOC's
//! [`dike_sched_core::PartitionPlanner`]), so faults on one channel never
//! stall the other.

use crate::config::DikeConfig;
use crate::scheduler::Dike;
use dike_baselines::Lfoc;
use dike_machine::{LlcConfig, SimTime};
use dike_sched_core::{Actions, Scheduler, SystemView};

/// The combined scheduler: Dike's swaps plus LFOC's cache clustering.
#[derive(Debug)]
pub struct DikeLfoc {
    dike: Dike,
    lfoc: Lfoc,
}

impl DikeLfoc {
    /// Default Dike plus LFOC for the given LLC.
    pub fn new(llc: &LlcConfig) -> Self {
        DikeLfoc {
            dike: Dike::new(),
            lfoc: Lfoc::for_llc(llc),
        }
    }

    /// A specific Dike configuration plus LFOC for the given LLC.
    pub fn with_config(cfg: DikeConfig, llc: &LlcConfig) -> Self {
        DikeLfoc {
            dike: Dike::with_config(cfg),
            lfoc: Lfoc::for_llc(llc),
        }
    }

    /// The wrapped Dike, for predictor statistics extraction.
    pub fn dike(&self) -> &Dike {
        &self.dike
    }

    /// The wrapped LFOC pass.
    pub fn lfoc(&self) -> &Lfoc {
        &self.lfoc
    }
}

impl Scheduler for DikeLfoc {
    fn name(&self) -> &str {
        "Dike+LFOC"
    }

    fn initial_quantum(&self) -> SimTime {
        self.dike.initial_quantum()
    }

    fn on_quantum(&mut self, view: &SystemView, actions: &mut Actions) {
        self.dike.on_quantum(view, actions);
        // The LFOC pass only writes `actions.partition` (and its planner
        // re-issues), never migrations or the quantum, so Dike's decisions
        // pass through untouched.
        self.lfoc.on_quantum(view, actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_machine::{presets, Machine};
    use dike_sched_core::run;
    use dike_workloads::{AppKind, Placement, Workload};

    #[test]
    fn hybrid_swaps_and_partitions() {
        let cfg = presets::small_machine(7);
        let llc = cfg.llc;
        let mut m = Machine::new(cfg);
        let mut w = Workload::plain("mix", vec![AppKind::Jacobi, AppKind::Srad]);
        w.threads_per_app = 4;
        w.spawn(&mut m, Placement::Interleaved, 0.1);
        let mut s = DikeLfoc::new(&llc);
        let r = run(&mut m, &mut s, SimTime::from_secs_f64(600.0));
        assert!(r.completed);
        assert_eq!(r.scheduler, "Dike+LFOC");
        assert!(r.migrations > 0, "Dike channel stayed silent");
        // At least one real partition plus the clearing re-plan once the
        // memory threads departed and the population turned all-light.
        assert!(r.partitions >= 1, "LFOC channel stayed silent");
    }

    #[test]
    fn hybrid_matches_plain_dike_when_nothing_is_partitionable() {
        // An all-compute population never triggers a partition plan, so
        // the hybrid must reproduce plain Dike's run exactly.
        let spawn = |m: &mut Machine| {
            let mut w = Workload::plain("cpu", vec![AppKind::Srad, AppKind::Hotspot]);
            w.threads_per_app = 2;
            w.spawn(m, Placement::Interleaved, 0.1);
        };
        let plain = {
            let mut m = Machine::new(presets::small_machine(7));
            spawn(&mut m);
            let mut s = Dike::new();
            run(&mut m, &mut s, SimTime::from_secs_f64(600.0))
        };
        let cfg = presets::small_machine(7);
        let llc = cfg.llc;
        let mut m = Machine::new(cfg);
        spawn(&mut m);
        let mut s = DikeLfoc::new(&llc);
        let hybrid = run(&mut m, &mut s, SimTime::from_secs_f64(600.0));
        if hybrid.partitions == 0 {
            assert_eq!(hybrid.wall, plain.wall);
            assert_eq!(hybrid.migrations, plain.migrations);
            assert_eq!(hybrid.quanta, plain.quanta);
        } else {
            // Some phase crossed the sensitivity threshold; the run must
            // still complete with Dike's channel intact.
            assert!(hybrid.completed);
        }
    }
}
