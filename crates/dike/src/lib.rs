//! # dike-scheduler — the paper's contribution
//!
//! Dike is a software-level contention-aware scheduler for heterogeneous
//! multicores that provides fairness (threads of one application finish
//! together) and performance without hardware support or offline training.
//! Execution is divided into quanta; each quantum runs the loop of the
//! paper's Figure 3:
//!
//! 1. **[`observer::Observer`]** reads per-thread memory access rates from
//!    hardware counters, classifies threads memory-/compute-intensive at
//!    the 10 % LLC-miss-rate boundary, and maintains per-core `CoreBW`
//!    moving means.
//! 2. **[`selector`]** (Algorithm 1) gates on the coefficient of variation
//!    of access rates (θ_f = 0.1) and pairs low-access threads on
//!    high-bandwidth cores with high-access threads on low-bandwidth cores.
//! 3. **[`predictor::Predictor`]** (Eqns 1–3) estimates each swap's profit
//!    from `CoreBW` and current rates, charging the migration overhead —
//!    and closes the loop by scoring its own predictions every quantum.
//! 4. **[`decider`]** rejects pairs swapped last quantum (cooldown) and
//!    pairs with non-positive total profit.
//! 5. The **Migrator** applies accepted swaps as pairwise affinity changes
//!    (via [`dike_sched_core::Actions::swap`]).
//! 6. **[`optimizer`]** (Algorithm 2, adaptive modes only) walks
//!    ⟨swapSize, quantaLength⟩ one unit per quantum toward the per-class
//!    optimum for the user's fairness/performance goal.
//!
//! ```
//! use dike_scheduler::Dike;
//! use dike_sched_core::run;
//! use dike_machine::{Machine, presets, SimTime};
//! use dike_workloads::{Workload, Placement, AppKind};
//!
//! let mut machine = Machine::new(presets::small_machine(42));
//! let mut workload = Workload::plain("demo", vec![AppKind::Jacobi, AppKind::Srad]);
//! workload.threads_per_app = 4;
//! workload.spawn(&mut machine, Placement::Interleaved, 0.005);
//!
//! let mut dike = Dike::new();
//! let result = run(&mut machine, &mut dike, SimTime::from_secs_f64(60.0));
//! assert!(result.completed);
//! ```

// Validators deliberately use `!(x > 0.0)`-style comparisons: they must
// reject NaN, which plain `x <= 0.0` would silently accept.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod config;
pub mod decider;
pub mod hybrid;
pub mod observer;
pub mod optimizer;
pub mod predictor;
pub mod scheduler;
pub mod selector;

pub use config::{
    AdaptationGoal, CoreBwEstimate, CoreRanking, DikeConfig, HardeningConfig, SchedConfig,
};
pub use hybrid::DikeLfoc;
pub use observer::{Observation, ObservedThread, Observer, ThreadClass};
pub use optimizer::WorkloadType;
pub use predictor::{ErrorSample, Predictor, SwapPrediction};
pub use scheduler::{Dike, DikeStats};
pub use selector::{select_pairs, select_pairs_flat_into, select_pairs_into, Pair, SelectScratch};
