//! The Selector: Algorithm 1 — fairness gate and violator pairing.
//!
//! The Selector pairs a low-access thread `t_l` with a high-access thread
//! `t_h` such that swapping their cores moves the system toward the
//! *placement rule* (high-access threads on high-bandwidth cores,
//! low-access threads on low-bandwidth cores).
//!
//! Interpretation notes (the paper's pseudocode is ambiguous about the
//! violator scan when violators exist on only one side):
//!
//! * the head-side candidate is the **lowest-access thread residing on a
//!   high-bandwidth core** — if it is compute-classified this is exactly a
//!   placement violator; if all threads are memory-intensive it is the
//!   thread wasting the most fast-core capacity, which realises the paper's
//!   "all threads same type: pairs are generated from both ends regardless
//!   of the placement rule" branch and the natural rotation that obeys the
//!   rule "on average, across several quanta";
//! * symmetrically, the tail-side candidate is the **highest-access thread
//!   on a low-bandwidth core**;
//! * pairing stops when either side runs out (the paper's "pointers cross
//!   each other") or when the tail candidate's rate no longer exceeds the
//!   head candidate's (a swap would be a strict loss, and the Predictor
//!   would reject it anyway).
//!
//! On multi-controller (NUMA) machines pairing runs **per domain**: each
//! memory controller gets its own head/tail scan over the threads homed on
//! its cores, with the full `swap_size / 2` budget. Swaps therefore never
//! cross a domain boundary — a cross-domain swap would pay the remote
//! warm-up penalty and change both threads' contention domain, invalidating
//! the Predictor's per-core bandwidth model. On a single-domain machine the
//! per-domain scan degenerates to exactly the global Algorithm 1.
//!
//! ## Hierarchical selection
//!
//! [`select_pairs_into`] is organised as a two-level hierarchy so its cost
//! stays near-linear as domains multiply:
//!
//! 1. **Nomination** — one pass over the threads buckets each by its
//!    core's domain and feeds it into that domain's bounded candidate
//!    lists: the `swap_size / 2` lowest-access threads on high-bandwidth
//!    cores (head nominees) and the `swap_size / 2` highest-access threads
//!    on low-bandwidth cores (tail nominees). Each list is maintained by
//!    bounded insertion, so the pass is O(n · swap_size) with no global
//!    sort and no per-domain rescan of the full thread population.
//! 2. **Arbitration** — per domain, the k-th head nominee meets the k-th
//!    tail nominee under exactly the flat algorithm's stop rule (budget,
//!    side exhaustion, or a non-violator pair whose swap would not help).
//!
//! This is pair-for-pair identical to the retained flat reference
//! ([`select_pairs_flat_into`]): head candidates live on high-bandwidth
//! cores and tail candidates on low-bandwidth cores, so the two scans of
//! the flat algorithm never compete for a thread, and its "first unused
//! eligible from either end of the global sorted order" is precisely the
//! k-th per-domain extreme. A property test pins the two implementations
//! to byte-identical pair sequences.
//!
//! Ordering uses [`f64::total_cmp`] with a thread-id tiebreak: a corrupted
//! (NaN) access rate that reaches the Selector orders deterministically
//! instead of panicking mid-quantum, and distinct threads never compare
//! equal, so every selection below is a total order and deterministic.

use crate::observer::Observation;
use dike_machine::{ThreadId, VCoreId};
use std::cmp::Ordering;

/// A candidate swap pair ⟨t_l, t_h⟩.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pair {
    /// The low-access thread (currently on a high-bandwidth core).
    pub low: ThreadId,
    /// Core of `low`.
    pub low_vcore: VCoreId,
    /// The high-access thread (currently on a low-bandwidth core).
    pub high: ThreadId,
    /// Core of `high`.
    pub high_vcore: VCoreId,
}

/// Form swap pairs from an observation: up to `swap_size / 2` per NUMA
/// domain, pairing only threads whose cores share a memory controller.
///
/// Returns an empty vector when the system is already fair (the Algorithm 1
/// early-out: `fairness < θ_f`).
pub fn select_pairs(obs: &Observation, swap_size: u32, fairness_threshold: f64) -> Vec<Pair> {
    let mut scratch = SelectScratch::default();
    let mut pairs = Vec::new();
    select_pairs_into(obs, swap_size, fairness_threshold, &mut scratch, &mut pairs);
    pairs
}

/// Reusable buffers for [`select_pairs_into`] and
/// [`select_pairs_flat_into`].
#[derive(Debug, Default)]
pub struct SelectScratch {
    /// Per-domain head nominees: the `swap_size / 2` lowest-access threads
    /// on high-bandwidth cores, ascending by (rate, id).
    heads: Vec<Vec<usize>>,
    /// Per-domain tail nominees: the `swap_size / 2` highest-access threads
    /// on low-bandwidth cores, descending by (rate, id).
    tails: Vec<Vec<usize>>,
    /// Global sorted order for the flat reference path.
    by_rate: Vec<usize>,
    /// Pairing consumption flags for the flat reference path.
    used: Vec<bool>,
}

/// Total order on thread indices: access rate, then thread id. NaN-safe
/// (`total_cmp`) and antisymmetric for distinct threads (ids are unique).
fn rate_then_id(obs: &Observation, a: usize, b: usize) -> Ordering {
    obs.threads[a]
        .access_rate
        .total_cmp(&obs.threads[b].access_rate)
        .then_with(|| obs.threads[a].id.cmp(&obs.threads[b].id))
}

/// Does swapping `li` (head) with `hi` (tail) break the placement rule for
/// neither thread while also not increasing high-bandwidth-core access?
/// This is the flat algorithm's "pointers crossed" stop test, shared by
/// the arbitration stage.
fn swap_is_pointless(obs: &Observation, li: usize, hi: usize) -> bool {
    // A class violator breaks the placement rule: a memory thread on a
    // low-bandwidth core or a compute thread on a high-bandwidth core.
    let violator = |i: usize| match obs.threads[i].class {
        crate::observer::ThreadClass::Memory => !obs.high_bw[obs.threads[i].vcore.index()],
        crate::observer::ThreadClass::Compute => obs.high_bw[obs.threads[i].vcore.index()],
    };
    !violator(li) && !violator(hi) && obs.threads[hi].access_rate <= obs.threads[li].access_rate
}

/// [`select_pairs`] into a caller-owned pair buffer, reusing `scratch` so
/// the steady-state selection path performs no heap allocation. `pairs`
/// is cleared first.
///
/// Hierarchical: per-domain bounded nomination followed by per-domain
/// arbitration (see the module docs), O(n · swap_size) over the thread
/// count instead of the flat reference's global sort plus per-domain
/// rescans. The domain count comes from [`Observation::num_domains`]
/// (topology knowledge), not from re-scanning `core_domain`.
pub fn select_pairs_into(
    obs: &Observation,
    swap_size: u32,
    fairness_threshold: f64,
    scratch: &mut SelectScratch,
    pairs: &mut Vec<Pair>,
) {
    pairs.clear();
    if obs.is_fair(fairness_threshold) {
        return;
    }
    let want = (swap_size / 2) as usize;
    if want == 0 || obs.threads.len() < 2 {
        return;
    }
    let num_domains = obs.num_domains.max(1);

    // Nomination: bucket threads by domain and keep only each domain's
    // extremes, by bounded insertion into lists of at most `want` entries.
    if scratch.heads.len() < num_domains {
        scratch.heads.resize_with(num_domains, Vec::new);
        scratch.tails.resize_with(num_domains, Vec::new);
    }
    for d in 0..num_domains {
        scratch.heads[d].clear();
        scratch.tails[d].clear();
    }
    for i in 0..obs.threads.len() {
        let vcore = obs.threads[i].vcore.index();
        let dom = if num_domains == 1 {
            0
        } else {
            obs.core_domain[vcore].index()
        };
        if dom >= num_domains {
            // Malformed observation (domain tag beyond the stated count):
            // such a thread is unpairable, exactly as in the flat scan.
            continue;
        }
        if obs.high_bw[vcore] {
            nominate(&mut scratch.heads[dom], i, want, |a, b| {
                rate_then_id(obs, a, b)
            });
        } else {
            nominate(&mut scratch.tails[dom], i, want, |a, b| {
                rate_then_id(obs, b, a)
            });
        }
    }

    // Arbitration: within each domain the k-th most extreme nominees meet,
    // under the flat algorithm's stop rule. Nominee lists are disjoint
    // (head ⊆ high-bandwidth cores, tail ⊆ low-bandwidth cores), so no
    // cross-consumption bookkeeping is needed.
    for dom in 0..num_domains {
        let heads = &scratch.heads[dom];
        let tails = &scratch.tails[dom];
        for k in 0..want.min(heads.len()).min(tails.len()) {
            let (li, hi) = (heads[k], tails[k]);
            if swap_is_pointless(obs, li, hi) {
                break;
            }
            pairs.push(Pair {
                low: obs.threads[li].id,
                low_vcore: obs.threads[li].vcore,
                high: obs.threads[hi].id,
                high_vcore: obs.threads[hi].vcore,
            });
        }
    }
}

/// Bounded-insertion selection: keep `idx` in `list` iff it ranks within
/// the first `cap` seen so far under `order`, maintaining `list` sorted
/// ascending by `order`. O(cap) per call; `order` must be a total order
/// with no ties (guaranteed by the thread-id tiebreak).
fn nominate(
    list: &mut Vec<usize>,
    idx: usize,
    cap: usize,
    order: impl Fn(usize, usize) -> Ordering,
) {
    let pos = list
        .iter()
        .position(|&j| order(idx, j) == Ordering::Less)
        .unwrap_or(list.len());
    if list.len() < cap {
        list.insert(pos, idx);
    } else if pos < cap {
        list.pop();
        list.insert(pos, idx);
    }
}

/// The retained flat reference: one global sort by access rate, then per
/// domain a head/tail rescan of the full sorted order — Algorithm 1 as
/// the paper writes it, O(n log n + domains · n · swap_size). Kept
/// verbatim (modulo the shared NaN-safe comparator) as the oracle the
/// property tests pin [`select_pairs_into`] against.
pub fn select_pairs_flat_into(
    obs: &Observation,
    swap_size: u32,
    fairness_threshold: f64,
    scratch: &mut SelectScratch,
    pairs: &mut Vec<Pair>,
) {
    pairs.clear();
    if obs.is_fair(fairness_threshold) {
        return;
    }
    let want = (swap_size / 2) as usize;
    if want == 0 || obs.threads.len() < 2 {
        return;
    }

    // Sort thread indices by access rate, ascending (shared by all
    // domains). The id tiebreak makes the comparator a total order, so the
    // unstable sort is result-identical to a stable one.
    scratch.by_rate.clear();
    scratch.by_rate.extend(0..obs.threads.len());
    scratch
        .by_rate
        .sort_unstable_by(|&a, &b| rate_then_id(obs, a, b));

    let num_domains = obs.num_domains.max(1);

    scratch.used.clear();
    scratch.used.resize(obs.threads.len(), false);
    for dom in 0..num_domains {
        let eligible = |i: usize| {
            num_domains == 1 || obs.core_domain[obs.threads[i].vcore.index()].index() == dom
        };
        pair_within(
            obs,
            &scratch.by_rate,
            &mut scratch.used,
            pairs,
            want,
            eligible,
        );
    }
}

/// Algorithm 1's head/tail pairing restricted to the threads `eligible`
/// accepts, appending at most `budget` pairs. Flat reference path only.
fn pair_within(
    obs: &Observation,
    by_rate: &[usize],
    used: &mut [bool],
    pairs: &mut Vec<Pair>,
    budget: usize,
    eligible: impl Fn(usize) -> bool,
) {
    let on_high_bw = |i: usize| obs.high_bw[obs.threads[i].vcore.index()];

    let mut formed = 0;
    while formed < budget {
        // Head: lowest-access unused thread on a high-bandwidth core
        // (scanning up from the low end of the sorted order).
        let low = by_rate
            .iter()
            .copied()
            .find(|&idx| !used[idx] && eligible(idx) && on_high_bw(idx));
        let Some(li) = low else { break };

        // Tail: highest-access unused thread on a low-bandwidth core
        // (scanning down from the high end).
        let high = by_rate
            .iter()
            .rev()
            .copied()
            .find(|&idx| !used[idx] && eligible(idx) && !on_high_bw(idx) && idx != li);
        let Some(hi) = high else { break };

        // Pointers effectively crossed: when *neither* side breaks the
        // placement rule, a swap is pointless unless the "high" thread
        // really accesses memory more than the "low" one. When either side
        // is a class violator the pair is always forwarded — the Predictor
        // and Decider arbitrate. This is what sustains the rotation that
        // obeys the rule "on average, across several quanta" in unbalanced
        // workloads, where one side's violators (extra memory threads on
        // slow cores, or extra compute threads on fast cores) have no
        // opposite-side violator to meet.
        if swap_is_pointless(obs, li, hi) {
            break;
        }
        used[li] = true;
        used[hi] = true;
        pairs.push(Pair {
            low: obs.threads[li].id,
            low_vcore: obs.threads[li].vcore,
            high: obs.threads[hi].id,
            high_vcore: obs.threads[hi].vcore,
        });
        formed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{ObservedThread, ThreadClass};
    use dike_machine::{AppId, DomainId};

    /// Build an observation: `(access_rate, on_high_bw_core)` per thread,
    /// thread i on vcore i.
    fn obs_from(threads: &[(f64, bool)]) -> Observation {
        let n = threads.len();
        let ts: Vec<ObservedThread> = threads
            .iter()
            .enumerate()
            .map(|(i, &(access_rate, _high))| ObservedThread {
                id: ThreadId(i as u32),
                app: AppId(0),
                vcore: VCoreId(i as u32),
                access_rate,
                llc_miss_rate: if access_rate > 1e7 { 0.15 } else { 0.02 },
                class: if access_rate > 1e7 {
                    ThreadClass::Memory
                } else {
                    ThreadClass::Compute
                },
                migrated_last_quantum: false,
                confidence: 1.0,
            })
            .collect();
        let high_bw: Vec<bool> = threads.iter().map(|&(_, h)| h).collect();
        let rates: Vec<f64> = ts.iter().map(|t| t.access_rate).collect();
        let mean = rates.iter().sum::<f64>() / n as f64;
        let var = rates.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n as f64;
        Observation {
            threads: ts,
            high_bw,
            core_bw: vec![0.0; n],
            core_domain: vec![DomainId(0); n],
            num_domains: 1,
            fairness_cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
            memory_fraction: 0.5,
        }
    }

    /// Like [`obs_from`] but with an explicit NUMA domain per core:
    /// `(access_rate, on_high_bw, domain)` per thread, thread i on vcore i.
    fn obs_with_domains(threads: &[(f64, bool, u32)]) -> Observation {
        let flat: Vec<(f64, bool)> = threads.iter().map(|&(r, h, _)| (r, h)).collect();
        let mut o = obs_from(&flat);
        o.core_domain = threads.iter().map(|&(_, _, d)| DomainId(d)).collect();
        o.num_domains = threads
            .iter()
            .map(|&(_, _, d)| d as usize + 1)
            .max()
            .unwrap_or(1);
        o
    }

    /// Run both implementations and assert they agree before returning the
    /// hierarchical result, so every fixture below exercises the flat
    /// reference too.
    fn select_both(obs: &Observation, swap_size: u32, threshold: f64) -> Vec<Pair> {
        let mut scratch = SelectScratch::default();
        let mut flat = Vec::new();
        select_pairs_flat_into(obs, swap_size, threshold, &mut scratch, &mut flat);
        let hier = select_pairs(obs, swap_size, threshold);
        assert_eq!(hier, flat, "hierarchical and flat selection diverge");
        hier
    }

    #[test]
    fn fair_system_selects_nothing() {
        let o = obs_from(&[(10.0, true), (10.0, false), (10.0, true), (10.0, false)]);
        assert!(o.fairness_cv < 0.1);
        assert!(select_both(&o, 8, 0.1).is_empty());
    }

    #[test]
    fn classic_violators_pair_compute_on_fast_with_memory_on_slow() {
        // t0: C on fast (violator, lowest rate), t1: M on slow (violator,
        // highest rate), t2: M on fast (fine), t3: C on slow (fine).
        let o = obs_from(&[(1e6, true), (9e7, false), (8e7, true), (2e6, false)]);
        let pairs = select_both(&o, 2, 0.1);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].low, ThreadId(0));
        assert_eq!(pairs[0].high, ThreadId(1));
        assert_eq!(pairs[0].low_vcore, VCoreId(0));
        assert_eq!(pairs[0].high_vcore, VCoreId(1));
    }

    #[test]
    fn swap_size_limits_pair_count() {
        // Four C-on-fast and four M-on-slow violators.
        let o = obs_from(&[
            (1e6, true),
            (2e6, true),
            (3e6, true),
            (4e6, true),
            (6e7, false),
            (7e7, false),
            (8e7, false),
            (9e7, false),
        ]);
        assert_eq!(select_both(&o, 2, 0.1).len(), 1);
        assert_eq!(select_both(&o, 4, 0.1).len(), 2);
        assert_eq!(select_both(&o, 8, 0.1).len(), 4);
        // Asking for more than available yields what exists.
        assert_eq!(select_both(&o, 16, 0.1).len(), 4);
    }

    #[test]
    fn pairs_are_disjoint_and_ordered_by_extremity() {
        let o = obs_from(&[(1e6, true), (2e6, true), (6e7, false), (9e7, false)]);
        let pairs = select_both(&o, 4, 0.1);
        assert_eq!(pairs.len(), 2);
        // Most extreme pair first.
        assert_eq!(pairs[0].low, ThreadId(0));
        assert_eq!(pairs[0].high, ThreadId(3));
        assert_eq!(pairs[1].low, ThreadId(1));
        assert_eq!(pairs[1].high, ThreadId(2));
        // Disjoint.
        let mut ids: Vec<u32> = pairs.iter().flat_map(|p| [p.low.0, p.high.0]).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn all_memory_threads_rotate_extremes_across_core_types() {
        // All M (unbalanced-memory case): weakest-on-fast pairs with
        // strongest-on-slow, realising the paper's same-type branch.
        let o = obs_from(&[(3e7, true), (4e7, true), (5e7, false), (9e7, false)]);
        let pairs = select_both(&o, 2, 0.1);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].low, ThreadId(0)); // weakest on a fast core
        assert_eq!(pairs[0].high, ThreadId(3)); // strongest on a slow core
    }

    #[test]
    fn no_pair_when_one_side_is_empty() {
        // Everything already on high-BW cores: no tail candidates.
        let o = obs_from(&[(1e6, true), (9e7, true)]);
        assert!(select_both(&o, 4, 0.1).is_empty());
        // Everything on low-BW cores: no head candidates.
        let o = obs_from(&[(1e6, false), (9e7, false)]);
        assert!(select_both(&o, 4, 0.1).is_empty());
    }

    #[test]
    fn no_pair_when_swap_would_not_help() {
        // The only high-BW occupant already has the higher rate.
        let o = obs_from(&[(9e7, true), (1e6, false)]);
        assert!(select_both(&o, 4, 0.1).is_empty());
    }

    #[test]
    fn pairs_never_cross_numa_domains() {
        // Each domain has a C-on-fast / M-on-slow violator pair, but the
        // globally most extreme pairing (t0 with t3) would cross domains.
        let o = obs_with_domains(&[
            (1e6, true, 0),  // t0: lowest rate, fast, domain 0
            (8e7, false, 0), // t1: M on slow, domain 0
            (2e6, true, 1),  // t2: C on fast, domain 1
            (9e7, false, 1), // t3: highest rate, slow, domain 1
        ]);
        let pairs = select_both(&o, 8, 0.1);
        assert_eq!(pairs.len(), 2);
        // Domain 0's pair first, then domain 1's — never t0 with t3.
        assert_eq!(pairs[0].low, ThreadId(0));
        assert_eq!(pairs[0].high, ThreadId(1));
        assert_eq!(pairs[1].low, ThreadId(2));
        assert_eq!(pairs[1].high, ThreadId(3));
        for p in &pairs {
            assert_eq!(
                o.core_domain[p.low_vcore.index()],
                o.core_domain[p.high_vcore.index()],
                "pair {p:?} crosses a domain boundary"
            );
        }
    }

    #[test]
    fn swap_budget_applies_per_domain() {
        // Two violator pairs per domain; swap_size 2 = one pair *per
        // controller*, so a 2-domain machine forms two pairs total.
        let o = obs_with_domains(&[
            (1e6, true, 0),
            (2e6, true, 0),
            (7e7, false, 0),
            (8e7, false, 0),
            (3e6, true, 1),
            (4e6, true, 1),
            (6e7, false, 1),
            (9e7, false, 1),
        ]);
        assert_eq!(select_both(&o, 2, 0.1).len(), 2);
        assert_eq!(select_both(&o, 4, 0.1).len(), 4);
    }

    #[test]
    fn domain_without_candidates_forms_no_pairs() {
        // Domain 0 has both sides; domain 1 is all on high-BW cores (no
        // tail candidate) and must stay silent rather than borrow a remote
        // partner.
        let o = obs_with_domains(&[
            (1e6, true, 0),
            (9e7, false, 0),
            (5e6, true, 1),
            (6e7, true, 1),
        ]);
        let pairs = select_both(&o, 8, 0.1);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].low, ThreadId(0));
        assert_eq!(pairs[0].high, ThreadId(1));
    }

    #[test]
    fn single_domain_observation_matches_domain_blind_pairing() {
        // The per-domain scan with one domain must reproduce the global
        // algorithm exactly (the 1-domain regression contract).
        let flat = [
            (1e6, true),
            (2e6, true),
            (6e7, false),
            (9e7, false),
            (3e7, true),
            (4e7, false),
        ];
        let o0 = obs_from(&flat);
        let tagged: Vec<(f64, bool, u32)> = flat.iter().map(|&(r, h)| (r, h, 0)).collect();
        let o1 = obs_with_domains(&tagged);
        for swap_size in [0, 2, 4, 8, 16] {
            assert_eq!(
                select_both(&o0, swap_size, 0.1),
                select_both(&o1, swap_size, 0.1)
            );
        }
    }

    #[test]
    fn degenerate_inputs() {
        let o = obs_from(&[(5.0, true)]);
        assert!(select_both(&o, 4, 1e-9).is_empty());
        let o = obs_from(&[(1e6, true), (9e7, false)]);
        assert!(select_both(&o, 0, 0.1).is_empty());
    }

    #[test]
    fn nan_rates_never_panic_and_order_deterministically() {
        // A corrupted rate that somehow survives sanitization must not
        // bring selection down: total_cmp orders NaN after every finite
        // value, both implementations agree, and output stays well-formed.
        let mut o = obs_from(&[(1e6, true), (9e7, false), (3e7, true), (4e7, false)]);
        o.threads[2].access_rate = f64::NAN;
        o.fairness_cv = 10.0; // keep the gate open despite the NaN rate
        let pairs = select_both(&o, 8, 0.1);
        for p in &pairs {
            assert_ne!(p.low, p.high);
        }
    }

    #[test]
    fn scratch_reuse_across_shrinking_domain_counts_is_clean() {
        // A scratch warmed on a 2-domain observation must not leak stale
        // nominees into a later 1-domain selection.
        let mut scratch = SelectScratch::default();
        let mut pairs = Vec::new();
        let two = obs_with_domains(&[
            (1e6, true, 0),
            (8e7, false, 0),
            (2e6, true, 1),
            (9e7, false, 1),
        ]);
        select_pairs_into(&two, 8, 0.1, &mut scratch, &mut pairs);
        assert_eq!(pairs.len(), 2);
        let one = obs_from(&[(1e6, true), (9e7, false)]);
        select_pairs_into(&one, 8, 0.1, &mut scratch, &mut pairs);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].low, ThreadId(0));
        assert_eq!(pairs[0].high, ThreadId(1));
    }

    #[test]
    fn domain_tags_beyond_stated_count_are_unpairable_in_both_paths() {
        // Thread t2/t3 carry a domain tag ≥ num_domains (a malformed
        // observation): both implementations ignore them identically.
        let mut o = obs_with_domains(&[
            (1e6, true, 0),
            (9e7, false, 0),
            (2e6, true, 1),
            (8e7, false, 1),
        ]);
        o.core_domain[2] = DomainId(5);
        o.core_domain[3] = DomainId(5);
        o.num_domains = 2;
        let pairs = select_both(&o, 8, 0.1);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].low, ThreadId(0));
        assert_eq!(pairs[0].high, ThreadId(1));
    }
}
