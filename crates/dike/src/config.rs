//! Dike's configuration: the paper's tunables in one place.

use dike_machine::SimTime;
use dike_util::{json_enum, json_struct};

/// The adaptation goal of the Optimizer (Section III-F): the user's
/// preference for fairness or throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdaptationGoal {
    /// Favour fairness (Dike-AF).
    Fairness,
    /// Favour performance (Dike-AP).
    Performance,
}

/// How the Observer estimates `CoreBW`, the per-core bandwidth used by the
/// Predictor as "the expected access rate of a thread migrated there".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreBwEstimate {
    /// The paper's literal definition: the moving mean of each core's
    /// served bandwidth over its whole execution. With this estimator a
    /// candidate swap's total profit (Eqn 3) is a near-zero-mean quantity
    /// perturbed by phase noise, minus the overhead term — so swaps fire
    /// stochastically *while placement violators exist* and stop when they
    /// vanish. That reproduces Table III's class pattern (B ≈ tens of
    /// swaps, UC ≈ thousands, UM ≈ hundreds). Default.
    PerCoreMean,
    /// Demand-gated capability estimate: a core's bandwidth is only
    /// sampled in quanta when it hosts a memory-classified thread, with a
    /// frequency-class fallback for cores lacking history. Deterministic
    /// corrective swaps from cold start, far fewer steady-state swaps —
    /// an "improved Dike" ablation rather than the paper's behaviour.
    DemandGated,
}

/// How the Observer ranks cores into higher/lower memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreRanking {
    /// Rank by core frequency: the paper's fast (TurboBoost) socket is its
    /// high-bandwidth half. Static, robust, and matches the paper's
    /// description of the testbed. Default.
    Frequency,
    /// Rank by each core's observed served bandwidth (moving mean): fully
    /// dynamic, as sketched in Section III-A ("a core may become
    /// low-bandwidth due to contention"). Provided as an ablation; with one
    /// thread per core the observed bandwidth mostly reflects the occupant
    /// rather than the core, which makes this ranking noisier.
    ObservedBandwidth,
}

/// The paper's `quantaLength` menu (Section III-F): 100/200/500/1000 ms.
pub const QUANTA_LADDER_MS: [u64; 4] = [100, 200, 500, 1000];

/// Bounds of the `swapSize` range: even numbers from 2 to 16.
pub const SWAP_SIZE_MIN: u32 = 2;
/// Upper bound of `swapSize` (Algorithm 2 caps at 16).
pub const SWAP_SIZE_MAX: u32 = 16;

/// A scheduler configuration ⟨swapSize, quantaLength⟩ — the pair Figure 4's
/// heatmaps sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchedConfig {
    /// Number of *threads* to swap per quantum (pairs = `swap_size / 2`).
    pub swap_size: u32,
    /// Time between scheduling decisions, in milliseconds.
    pub quantum_ms: u64,
}

json_enum!(AdaptationGoal { Fairness, Performance } {});
json_enum!(CoreBwEstimate { PerCoreMean, DemandGated } {});
json_enum!(CoreRanking { Frequency, ObservedBandwidth } {});
json_struct!(SchedConfig {
    swap_size,
    quantum_ms,
});

impl SchedConfig {
    /// The paper's default configuration ⟨8, 500⟩.
    pub const DEFAULT: SchedConfig = SchedConfig {
        swap_size: 8,
        quantum_ms: 500,
    };

    /// All 32 configurations of the paper's grid (8 swap sizes × 4 quanta).
    pub fn grid() -> Vec<SchedConfig> {
        let mut out = Vec::with_capacity(32);
        for &quantum_ms in &QUANTA_LADDER_MS {
            for swap_size in (SWAP_SIZE_MIN..=SWAP_SIZE_MAX).step_by(2) {
                out.push(SchedConfig {
                    swap_size,
                    quantum_ms,
                });
            }
        }
        out
    }

    /// Number of thread pairs to swap per quantum.
    pub fn pairs(&self) -> usize {
        (self.swap_size / 2) as usize
    }

    /// The quantum as [`SimTime`].
    pub fn quantum(&self) -> SimTime {
        SimTime::from_ms(self.quantum_ms)
    }

    /// Validate against the paper's ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.swap_size < SWAP_SIZE_MIN
            || self.swap_size > SWAP_SIZE_MAX
            || !self.swap_size.is_multiple_of(2)
        {
            return Err(format!(
                "swap_size must be an even number in [{SWAP_SIZE_MIN},{SWAP_SIZE_MAX}], got {}",
                self.swap_size
            ));
        }
        if !QUANTA_LADDER_MS.contains(&self.quantum_ms) {
            return Err(format!(
                "quantum_ms must be one of {QUANTA_LADDER_MS:?}, got {}",
                self.quantum_ms
            ));
        }
        Ok(())
    }

    /// Index of the quantum on the ladder.
    pub(crate) fn quantum_rung(&self) -> usize {
        QUANTA_LADDER_MS
            .iter()
            .position(|&q| q == self.quantum_ms)
            .expect("validated quantum is on the ladder")
    }

    /// One rung shorter on the quantum ladder, clamped at `floor_ms`.
    pub fn decrease_quantum(&mut self, floor_ms: u64) {
        let rung = self.quantum_rung();
        if rung > 0 && QUANTA_LADDER_MS[rung - 1] >= floor_ms {
            self.quantum_ms = QUANTA_LADDER_MS[rung - 1];
        }
    }

    /// One rung longer on the quantum ladder, clamped at `cap_ms`.
    pub fn increase_quantum(&mut self, cap_ms: u64) {
        let rung = self.quantum_rung();
        if rung + 1 < QUANTA_LADDER_MS.len() && QUANTA_LADDER_MS[rung + 1] <= cap_ms {
            self.quantum_ms = QUANTA_LADDER_MS[rung + 1];
        }
    }

    /// `swapSize = min(swapSize + 2, SWAP_SIZE_MAX)` (Algorithm 2).
    pub fn increase_swap_size(&mut self) {
        self.swap_size = (self.swap_size + 2).min(SWAP_SIZE_MAX);
    }

    /// `swapSize = max(swapSize - 2, SWAP_SIZE_MIN)`.
    pub fn decrease_swap_size(&mut self) {
        self.swap_size = self.swap_size.saturating_sub(2).max(SWAP_SIZE_MIN);
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig::DEFAULT
    }
}

/// Graceful-degradation knobs (the hardened pipeline of DESIGN.md §11).
/// Present (`DikeConfig::hardening = Some(..)`) only on the hardened
/// variants; the paper-faithful policies leave it `None` and keep the
/// original trusting pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardeningConfig {
    /// How many quanta a thread's last good sample may be held over when
    /// its current sample is missing or implausible, before the thread is
    /// treated as unknown (zero rates, zero confidence).
    pub holdover_age_cap: u32,
    /// Per-quantum decay of sample confidence while holding over: after
    /// `k` quanta on stale data, confidence is `confidence_decay^k`.
    pub confidence_decay: f64,
    /// Minimum pair confidence (the lower of the two members') for the
    /// Decider to accept a swap; below it the pair is rejected outright.
    /// The default (0.6) sits above the first decay step (0.5), so
    /// held-over threads inform the fairness estimates but are never
    /// themselves actuation-eligible — moving a thread on stale placement
    /// data is worse than leaving it put.
    pub min_confidence: f64,
    /// Physical upper bound on a believable per-thread access rate, in
    /// accesses/s. Anything above it is treated as a corrupted
    /// (saturated) reading. The paper machine's controller peaks at 4e8;
    /// an order of magnitude above that is unreachable by any real thread.
    pub max_plausible_rate: f64,
    /// Re-issues allowed per unconfirmed swap before abandoning it
    /// (`sched_core::SwapPlanner` retry budget).
    pub retry_budget: u32,
    /// Quanta an abandoned swap's members stay under substrate (CFS-like)
    /// placement before Dike may pair them again.
    pub fallback_cooldown_quanta: u32,
}

json_struct!(HardeningConfig {
    holdover_age_cap,
    confidence_decay,
    min_confidence,
    max_plausible_rate,
    retry_budget,
    fallback_cooldown_quanta,
});

impl Default for HardeningConfig {
    fn default() -> Self {
        HardeningConfig {
            holdover_age_cap: 4,
            confidence_decay: 0.5,
            min_confidence: 0.6,
            max_plausible_rate: 4e9,
            retry_budget: 3,
            fallback_cooldown_quanta: 8,
        }
    }
}

impl HardeningConfig {
    /// Validate.
    pub fn validate(&self) -> Result<(), String> {
        if self.holdover_age_cap == 0 {
            return Err("holdover_age_cap must be >= 1".into());
        }
        if !(0.0 < self.confidence_decay && self.confidence_decay < 1.0) {
            return Err("confidence_decay must be in (0,1)".into());
        }
        if !(0.0..=1.0).contains(&self.min_confidence) {
            return Err("min_confidence must be in [0,1]".into());
        }
        if !(self.max_plausible_rate > 0.0) {
            return Err("max_plausible_rate must be > 0".into());
        }
        Ok(())
    }
}

/// Full Dike configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DikeConfig {
    /// Initial ⟨swapSize, quantaLength⟩ (the paper's default is ⟨8, 500⟩).
    pub sched: SchedConfig,
    /// Fairness threshold θ_f on the coefficient of variation of thread
    /// access rates (paper default 0.1). Below it, the quantum is skipped.
    pub fairness_threshold: f64,
    /// LLC-miss-rate boundary separating memory- from compute-intensive
    /// threads (paper: 10 %, following Xie & Loh).
    pub classify_boundary: f64,
    /// Adaptation goal; `None` = the non-adaptive "Dike" policy.
    pub adaptation: Option<AdaptationGoal>,
    /// How cores are ranked into high/low bandwidth.
    pub core_ranking: CoreRanking,
    /// How `CoreBW` is estimated.
    pub core_bw_estimate: CoreBwEstimate,
    /// Skip threads swapped in the previous quantum (the paper's Decider
    /// cooldown). Disable only for the ablation benchmark.
    pub cooldown: bool,
    /// Reject pairs with negative predicted total profit. Disable only for
    /// the "Dike minus predictor" ablation.
    pub use_prediction: bool,
    /// Assumed per-swap overhead (the paper's `swapOH`) used in Eqn 2's
    /// overhead term, in milliseconds. The paper leaves it to profilers and
    /// treats residual error as closed-loop noise; it defaults to the
    /// machine model's migration dead time.
    pub swap_oh_ms: f64,
    /// Observed-M-thread-fraction bands for workload classification:
    /// fraction < `uc_band` → UC, fraction > `um_band` → UM, else B.
    /// Asymmetric so that a moderate communication-bound background app
    /// (KMEANS classifies compute) does not flip the class.
    pub uc_band: f64,
    /// Upper band; see [`DikeConfig::uc_band`].
    pub um_band: f64,
    /// Graceful-degradation hardening; `None` (the default) keeps the
    /// paper-faithful trusting pipeline.
    pub hardening: Option<HardeningConfig>,
}

json_struct!(DikeConfig {
    sched,
    fairness_threshold,
    classify_boundary,
    adaptation,
    core_ranking,
    core_bw_estimate,
    cooldown,
    use_prediction,
    swap_oh_ms,
    uc_band,
    um_band,
    hardening,
});

impl Default for DikeConfig {
    fn default() -> Self {
        DikeConfig {
            sched: SchedConfig::DEFAULT,
            fairness_threshold: 0.1,
            classify_boundary: 0.10,
            adaptation: None,
            core_ranking: CoreRanking::Frequency,
            core_bw_estimate: CoreBwEstimate::PerCoreMean,
            cooldown: true,
            use_prediction: true,
            swap_oh_ms: 3.0,
            uc_band: 0.30,
            um_band: 0.50,
            hardening: None,
        }
    }
}

impl DikeConfig {
    /// The non-adaptive default ("Dike" in the paper's figures).
    pub fn fixed(sched: SchedConfig) -> Self {
        DikeConfig {
            sched,
            ..DikeConfig::default()
        }
    }

    /// Dike-AF: adaptive, favouring fairness.
    pub fn adaptive_fairness() -> Self {
        DikeConfig {
            adaptation: Some(AdaptationGoal::Fairness),
            ..DikeConfig::default()
        }
    }

    /// Dike-AP: adaptive, favouring performance.
    pub fn adaptive_performance() -> Self {
        DikeConfig {
            adaptation: Some(AdaptationGoal::Performance),
            ..DikeConfig::default()
        }
    }

    /// The hardened non-adaptive policy ("Dike-H"): the default pipeline
    /// plus the full degradation ladder (sanitize → holdover → retry/
    /// backoff → demotion).
    pub fn hardened(sched: SchedConfig) -> Self {
        DikeConfig {
            sched,
            hardening: Some(HardeningConfig::default()),
            ..DikeConfig::default()
        }
    }

    /// Validate.
    pub fn validate(&self) -> Result<(), String> {
        self.sched.validate()?;
        if let Some(h) = &self.hardening {
            h.validate()?;
        }
        if !(self.fairness_threshold > 0.0) {
            return Err("fairness_threshold must be > 0".into());
        }
        if !(0.0..=1.0).contains(&self.classify_boundary) {
            return Err("classify_boundary must be in [0,1]".into());
        }
        if !(self.swap_oh_ms >= 0.0) {
            return Err("swap_oh_ms must be >= 0".into());
        }
        if !(0.0 < self.uc_band && self.uc_band <= self.um_band && self.um_band < 1.0) {
            return Err("bands must satisfy 0 < uc_band <= um_band < 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_32_valid_configs() {
        let grid = SchedConfig::grid();
        assert_eq!(grid.len(), 32);
        for c in &grid {
            c.validate().unwrap();
        }
        // All distinct.
        let mut set = std::collections::HashSet::new();
        for c in &grid {
            assert!(set.insert((c.swap_size, c.quantum_ms)));
        }
    }

    #[test]
    fn default_is_the_papers_median_config() {
        let d = SchedConfig::default();
        assert_eq!(d.swap_size, 8);
        assert_eq!(d.quantum_ms, 500);
        assert_eq!(d.pairs(), 4);
        assert_eq!(d.quantum(), SimTime::from_ms(500));
    }

    #[test]
    fn ladder_moves_respect_floors_and_caps() {
        let mut c = SchedConfig::DEFAULT; // 500ms
        c.decrease_quantum(100);
        assert_eq!(c.quantum_ms, 200);
        c.decrease_quantum(200);
        assert_eq!(c.quantum_ms, 200); // floor reached
        c.decrease_quantum(100);
        assert_eq!(c.quantum_ms, 100);
        c.decrease_quantum(100);
        assert_eq!(c.quantum_ms, 100); // bottom of ladder
        c.increase_quantum(1000);
        assert_eq!(c.quantum_ms, 200);
        c.increase_quantum(200);
        assert_eq!(c.quantum_ms, 200); // cap reached
    }

    #[test]
    fn swap_size_moves_clamp() {
        let mut c = SchedConfig {
            swap_size: 14,
            quantum_ms: 500,
        };
        c.increase_swap_size();
        assert_eq!(c.swap_size, 16);
        c.increase_swap_size();
        assert_eq!(c.swap_size, 16);
        let mut c = SchedConfig {
            swap_size: 4,
            quantum_ms: 500,
        };
        c.decrease_swap_size();
        assert_eq!(c.swap_size, 2);
        c.decrease_swap_size();
        assert_eq!(c.swap_size, 2);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(SchedConfig {
            swap_size: 3,
            quantum_ms: 500
        }
        .validate()
        .is_err());
        assert!(SchedConfig {
            swap_size: 18,
            quantum_ms: 500
        }
        .validate()
        .is_err());
        assert!(SchedConfig {
            swap_size: 8,
            quantum_ms: 300
        }
        .validate()
        .is_err());
    }

    #[test]
    fn dike_config_presets_validate() {
        assert!(DikeConfig::default().validate().is_ok());
        assert!(DikeConfig::adaptive_fairness().validate().is_ok());
        assert!(DikeConfig::adaptive_performance().validate().is_ok());
        assert_eq!(
            DikeConfig::adaptive_fairness().adaptation,
            Some(AdaptationGoal::Fairness)
        );
        assert_eq!(
            DikeConfig::adaptive_performance().adaptation,
            Some(AdaptationGoal::Performance)
        );
        assert_eq!(DikeConfig::default().adaptation, None);
    }

    #[test]
    fn hardened_preset_validates_and_defaults_are_sane() {
        let c = DikeConfig::hardened(SchedConfig::DEFAULT);
        assert!(c.validate().is_ok());
        let h = c.hardening.expect("hardening present");
        assert!(h.holdover_age_cap >= 1);
        assert!(h.retry_budget >= 1);
        // Plain presets stay unhardened (paper-faithful).
        assert!(DikeConfig::default().hardening.is_none());
        assert!(DikeConfig::adaptive_fairness().hardening.is_none());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // exercising one bad field at a time
    fn hardening_validation_rejects_nonsense() {
        let mut h = HardeningConfig::default();
        h.holdover_age_cap = 0;
        assert!(h.validate().is_err());
        let mut h = HardeningConfig::default();
        h.confidence_decay = 1.0;
        assert!(h.validate().is_err());
        let mut h = HardeningConfig::default();
        h.confidence_decay = f64::NAN;
        assert!(h.validate().is_err());
        let mut h = HardeningConfig::default();
        h.min_confidence = 1.5;
        assert!(h.validate().is_err());
        let mut h = HardeningConfig::default();
        h.max_plausible_rate = f64::NAN;
        assert!(h.validate().is_err());
        // An invalid hardening block fails the whole config.
        let mut c = DikeConfig::hardened(SchedConfig::DEFAULT);
        c.hardening.as_mut().unwrap().holdover_age_cap = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // exercising one bad field at a time
    fn dike_config_validation_rejects_nonsense() {
        let mut c = DikeConfig::default();
        c.fairness_threshold = 0.0;
        assert!(c.validate().is_err());
        let mut c = DikeConfig::default();
        c.classify_boundary = 1.5;
        assert!(c.validate().is_err());
        let mut c = DikeConfig::default();
        c.swap_oh_ms = -1.0;
        assert!(c.validate().is_err());
        let mut c = DikeConfig::default();
        c.uc_band = 0.8;
        c.um_band = 0.5;
        assert!(c.validate().is_err());
    }
}
