//! The Observer: thread classification and core identification
//! (Section III-A).
//!
//! Each quantum the Observer
//!
//! * classifies every thread as **memory-intensive (M)** or
//!   **compute-intensive (C)** by its LLC miss rate against the 10 %
//!   boundary ("if a thread's LLC miss rate is more than 10 %, it is
//!   considered memory intensive"), reclassifying every quantum because
//!   "memory intensity of a thread dynamically changes as [the] thread goes
//!   through execution phases";
//! * partitions cores into **higher and lower memory bandwidth** halves;
//! * maintains `CoreBW`, the moving mean of each core's served bandwidth,
//!   which the Predictor uses as the expected access rate of a thread
//!   migrated to that core.
//!
//! Observations are *sanitized* before anything downstream sees them: a
//! non-finite or negative rate (a corrupted counter read) is scrubbed to
//! its physical bounds, so a poisoned view can never push NaN into the
//! fairness gate or the Predictor. With hardening enabled
//! ([`crate::config::HardeningConfig`]) the Observer additionally holds
//! over each thread's last good sample (with an age cap) when the current
//! one is missing or implausible, and attaches a per-thread confidence
//! score the Predictor and Decider use to widen or reject decisions.

use crate::config::{CoreBwEstimate, CoreRanking, DikeConfig, HardeningConfig};
use dike_counters::{Estimator, MovingMean, RateSample};
use dike_machine::{AppId, DomainId, ThreadId, VCoreId};
use dike_sched_core::SystemView;

/// A thread's observed class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadClass {
    /// Memory-intensive (paper's "M").
    Memory,
    /// Compute-intensive (paper's "C").
    Compute,
}

/// One thread as the Observer sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedThread {
    /// Thread id.
    pub id: ThreadId,
    /// Owning app.
    pub app: AppId,
    /// Current core.
    pub vcore: VCoreId,
    /// Memory access rate over the last quantum (accesses/s).
    pub access_rate: f64,
    /// LLC miss rate (misses per access) over the last quantum.
    pub llc_miss_rate: f64,
    /// Classification against the boundary.
    pub class: ThreadClass,
    /// True if the thread migrated during the last quantum.
    pub migrated_last_quantum: bool,
    /// Sample confidence in [0,1]: 1 for a fresh plausible sample,
    /// decaying per quantum of last-good holdover, 0 for an unknown
    /// thread. Always exactly 1 without hardening.
    pub confidence: f64,
}

/// The Observer's per-quantum output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Observation {
    /// Alive threads with classes and rates, in thread-id order.
    pub threads: Vec<ObservedThread>,
    /// `high_bw[core] == true` for the higher-bandwidth half of the cores.
    pub high_bw: Vec<bool>,
    /// Current `CoreBW` moving means (accesses/s), indexed by core.
    pub core_bw: Vec<f64>,
    /// NUMA domain of each core (hardware knowledge passed through from the
    /// view). The Selector pairs swap candidates within a domain so swaps
    /// stay domain-local on multi-controller machines.
    pub core_domain: Vec<DomainId>,
    /// Number of NUMA domains (hardware knowledge passed through from the
    /// view's topology). The Selector sizes its per-domain nomination
    /// lists from this instead of re-deriving the count by max-scanning
    /// `core_domain` on every call. Always at least 1.
    pub num_domains: usize,
    /// Worst per-application coefficient of variation of thread access
    /// rates — the fairness-gate quantity of Algorithms 1 and 2 (the
    /// runtime analogue of Eqn 4's per-benchmark runtime CV; max rather
    /// than mean so a single unfairly-treated application keeps the gate
    /// open).
    pub fairness_cv: f64,
    /// Fraction of alive threads classified memory-intensive (workload-type
    /// input for the Optimizer).
    pub memory_fraction: f64,
}

impl Observation {
    /// True when the system is fair w.r.t. threshold θ_f.
    pub fn is_fair(&self, threshold: f64) -> bool {
        self.fairness_cv < threshold
    }

    /// Copy `self` into `out`, reusing `out`'s buffers (a `clone_from`
    /// that is guaranteed allocation-free once capacities are warm).
    pub fn clone_into(&self, out: &mut Observation) {
        out.threads.clear();
        out.threads.extend_from_slice(&self.threads);
        out.high_bw.clear();
        out.high_bw.extend_from_slice(&self.high_bw);
        out.core_bw.clear();
        out.core_bw.extend_from_slice(&self.core_bw);
        out.core_domain.clear();
        out.core_domain.extend_from_slice(&self.core_domain);
        out.num_domains = self.num_domains;
        out.fairness_cv = self.fairness_cv;
        out.memory_fraction = self.memory_fraction;
    }
}

/// Persistent Observer state.
///
/// See [`CoreBwEstimate`] for the two `CoreBW` estimators: the
/// paper-literal per-core moving mean (default; swap acceptance is then
/// driven by phase noise around a ≈ −overhead expectation, matching Table
/// III's per-class swap counts) and the demand-gated capability variant
/// (deterministic corrective swaps, used as an ablation).
#[derive(Debug)]
pub struct Observer {
    boundary: f64,
    ranking: CoreRanking,
    estimate: CoreBwEstimate,
    /// Per-core bandwidth moving means (all quanta for
    /// [`CoreBwEstimate::PerCoreMean`], consumed quanta only for
    /// [`CoreBwEstimate::DemandGated`]).
    core_bw: Vec<MovingMean>,
    /// Per-frequency-class consumed-bandwidth moving means, keyed by the
    /// class's frequency bits (f64 frequencies are finite machine config).
    /// Used only by the demand-gated estimator's fallback.
    class_bw: Vec<(u64, MovingMean)>,
    /// Degradation ladder knobs; `None` = the paper-faithful pipeline.
    hardening: Option<HardeningConfig>,
    /// Per-thread last-good sample (hardened only), in insertion order.
    last_good: Vec<(ThreadId, LastGood)>,
    /// Reusable core-ranking index buffer.
    scratch_order: Vec<usize>,
    /// Reusable per-quantum app list for the fairness gate.
    scratch_apps: Vec<AppId>,
    /// Reusable memory-class flags (indexed by thread id) for the
    /// demand-gated estimator.
    scratch_mem: Vec<bool>,
}

/// The last plausible sample seen for a thread, used for holdover.
#[derive(Debug, Clone, Copy)]
struct LastGood {
    app: AppId,
    vcore: VCoreId,
    access_rate: f64,
    llc_miss_rate: f64,
    /// Consecutive quanta this entry has been substituting for missing or
    /// implausible samples (0 = fresh).
    age: u32,
}

impl Observer {
    /// An Observer for a machine with `num_cores` virtual cores.
    pub fn new(cfg: &DikeConfig, num_cores: usize) -> Self {
        Observer {
            boundary: cfg.classify_boundary,
            ranking: cfg.core_ranking,
            estimate: cfg.core_bw_estimate,
            core_bw: vec![MovingMean::new(); num_cores],
            class_bw: Vec::new(),
            hardening: cfg.hardening,
            last_good: Vec::new(),
            scratch_order: Vec::new(),
            scratch_apps: Vec::new(),
            scratch_mem: Vec::new(),
        }
    }

    fn class_mean_mut(&mut self, freq_hz: f64) -> &mut MovingMean {
        let key = freq_hz.to_bits();
        if let Some(pos) = self.class_bw.iter().position(|(k, _)| *k == key) {
            return &mut self.class_bw[pos].1;
        }
        self.class_bw.push((key, MovingMean::new()));
        &mut self.class_bw.last_mut().expect("just pushed").1
    }

    fn class_mean(&self, freq_hz: f64) -> Option<f64> {
        let key = freq_hz.to_bits();
        self.class_bw
            .iter()
            .find(|(k, e)| *k == key && !e.is_empty())
            .map(|(_, e)| e.value())
    }

    /// Ingest one quantum's view and produce the observation.
    pub fn observe(&mut self, view: &SystemView) -> Observation {
        let mut out = Observation::default();
        self.observe_into(view, &mut out);
        out
    }

    /// [`Observer::observe`] into a caller-owned observation, reusing its
    /// buffers (and the Observer's internal scratch) so the steady-state
    /// observation path performs no heap allocation.
    pub fn observe_into(&mut self, view: &SystemView, out: &mut Observation) {
        assert_eq!(
            view.cores.len(),
            self.core_bw.len(),
            "view core count changed mid-run"
        );
        // Update the CoreBW estimate.
        out.core_bw.clear();
        match self.estimate {
            CoreBwEstimate::PerCoreMean => {
                // Paper-literal: every quantum contributes to every core's
                // moving mean.
                for core in &view.cores {
                    self.core_bw[core.id.index()].update(core.bandwidth);
                }
                out.core_bw.extend(self.core_bw.iter().map(|e| e.value()));
            }
            CoreBwEstimate::DemandGated => {
                // Capability variant: classify occupants first, sample only
                // consumed cores, fall back to class means. An occupant
                // without an observation this quantum (telemetry dropout)
                // cannot be classified and does not mark its core consumed.
                let max_id = view
                    .threads
                    .iter()
                    .map(|t| t.id.index() + 1)
                    .max()
                    .unwrap_or(0);
                self.scratch_mem.clear();
                self.scratch_mem.resize(max_id, false);
                for t in &view.threads {
                    if t.rates.llc_miss_rate > self.boundary {
                        self.scratch_mem[t.id.index()] = true;
                    }
                }
                for core in &view.cores {
                    let consumed = view
                        .occupants(core.id)
                        .iter()
                        .any(|t| self.scratch_mem.get(t.index()).copied().unwrap_or(false));
                    if consumed {
                        self.core_bw[core.id.index()].update(core.bandwidth);
                        self.class_mean_mut(core.kind.freq_hz)
                            .update(core.bandwidth);
                    }
                }
                for core in &view.cores {
                    let own = &self.core_bw[core.id.index()];
                    out.core_bw.push(if !own.is_empty() {
                        own.value()
                    } else if let Some(class) = self.class_mean(core.kind.freq_hz) {
                        class
                    } else {
                        core.bandwidth
                    });
                }
            }
        }

        // Rank cores into high/low-bandwidth halves. The comparators are
        // total orders (index tiebreak), so the unstable sort is
        // deterministic and result-identical to a stable one.
        let n = view.cores.len();
        self.scratch_order.clear();
        self.scratch_order.extend(0..n);
        match self.ranking {
            CoreRanking::Frequency => {
                self.scratch_order.sort_unstable_by(|&a, &b| {
                    view.cores[b]
                        .kind
                        .freq_hz
                        .partial_cmp(&view.cores[a].kind.freq_hz)
                        .expect("frequencies are finite")
                        .then(a.cmp(&b))
                });
            }
            CoreRanking::ObservedBandwidth => {
                let core_bw = &out.core_bw;
                self.scratch_order.sort_unstable_by(|&a, &b| {
                    core_bw[b]
                        .partial_cmp(&core_bw[a])
                        .expect("bandwidths are finite")
                        .then(a.cmp(&b))
                });
            }
        }
        out.high_bw.clear();
        out.high_bw.resize(n, false);
        for &c in self.scratch_order.iter().take(n / 2) {
            out.high_bw[c] = true;
        }

        // Classify threads. Samples are sanitized unconditionally: a
        // corrupted counter read (NaN/∞/negative) is scrubbed to its
        // physical bounds instead of flowing into the fairness gate and
        // the Predictor. Plausible samples pass through bit-identical, so
        // fault-free runs are unchanged.
        let boundary = self.boundary;
        let classify = |llc_miss_rate: f64| {
            if llc_miss_rate > boundary {
                ThreadClass::Memory
            } else {
                ThreadClass::Compute
            }
        };
        out.threads.clear();
        out.threads.extend(view.threads.iter().map(|t| {
            let rates = t.rates.sanitized();
            ObservedThread {
                id: t.id,
                app: t.app,
                vcore: t.vcore,
                access_rate: rates.access_rate,
                llc_miss_rate: rates.llc_miss_rate,
                class: classify(rates.llc_miss_rate),
                migrated_last_quantum: t.migrated_last_quantum,
                confidence: 1.0,
            }
        }));

        if self.hardening.is_some() {
            self.harden(view, &mut out.threads);
        }

        // Fairness gate: the paper's getSystemFairness() mirrors its Eqn 4
        // metric — dispersion *within each application* ("fairness in an
        // application means that threads' runtime are approximately close
        // together"; "fairness in a system means that applications are not
        // unpredictably impeded"). The gate takes the *worst* application's
        // CV: the system is fair only when every application is. A global
        // CV over a mixed workload would never drop below any sensible
        // threshold (the M/C rate gap alone is a CV above 1), and a mean
        // per-app CV lets one badly-split application hide behind several
        // fair ones, closing the gate prematurely.
        self.scratch_apps.clear();
        self.scratch_apps.extend(out.threads.iter().map(|t| t.app));
        self.scratch_apps.sort_unstable();
        self.scratch_apps.dedup();
        // Per-app CV inlined from `coefficient_of_variation` with the same
        // summation order (filter order == thread order), so the result is
        // bit-identical to collecting the rates first.
        out.fairness_cv = 0.0;
        for &a in &self.scratch_apps {
            let mut sum = 0.0;
            let mut len = 0usize;
            for t in out.threads.iter().filter(|t| t.app == a) {
                sum += t.access_rate;
                len += 1;
            }
            let mean = sum / len as f64;
            let cv = if mean == 0.0 {
                0.0
            } else {
                let mut var = 0.0;
                for t in out.threads.iter().filter(|t| t.app == a) {
                    var += (t.access_rate - mean).powi(2);
                }
                (var / len as f64).sqrt() / mean
            };
            out.fairness_cv = f64::max(out.fairness_cv, cv);
        }
        out.memory_fraction = if out.threads.is_empty() {
            0.0
        } else {
            out.threads
                .iter()
                .filter(|t| t.class == ThreadClass::Memory)
                .count() as f64
                / out.threads.len() as f64
        };

        out.core_domain.clear();
        out.core_domain.extend(view.cores.iter().map(|c| c.domain));
        // Hand-built views (tests) may leave the count unstated (0): treat
        // as a single domain, matching their all-`DomainId(0)` core tags.
        out.num_domains = view.num_domains.max(1);
    }

    /// Current `CoreBW` moving mean of one core.
    pub fn core_bw_of(&self, core: VCoreId) -> f64 {
        self.core_bw[core.index()].value()
    }

    /// The degradation ladder's observation stages (hardened only):
    /// implausible samples are replaced by the thread's last good sample
    /// up to an age cap (then zeroed), missing threads (counter dropout)
    /// are synthesized from their last good sample, and every substitute
    /// carries a decayed confidence score. Works in place on `threads`,
    /// which must have been built 1:1 from `view.threads`.
    fn harden(&mut self, view: &SystemView, threads: &mut Vec<ObservedThread>) {
        let h = self.hardening.expect("harden is only called when hardened");
        let boundary = self.boundary;
        let classify = |llc_miss_rate: f64| {
            if llc_miss_rate > boundary {
                ThreadClass::Memory
            } else {
                ThreadClass::Compute
            }
        };
        // Plausibility is judged on the *raw* view sample: the sanitizer
        // has already scrubbed `threads`, but a scrubbed corrupted sample
        // is still the wrong number — the holdover path is better.
        let raw_suspect =
            |r: &RateSample| !r.is_plausible() || r.access_rate > h.max_plausible_rate;

        self.last_good.retain(|(id, _)| !view.departed.contains(id));

        for (raw, t) in view.threads.iter().zip(threads.iter_mut()) {
            if raw_suspect(&raw.rates) {
                let held = self
                    .last_good
                    .iter_mut()
                    .find(|(id, _)| *id == t.id)
                    .and_then(|(_, lg)| {
                        if lg.age >= h.holdover_age_cap {
                            return None;
                        }
                        lg.age += 1;
                        Some((lg.access_rate, lg.llc_miss_rate, lg.age))
                    });
                match held {
                    Some((rate, miss, age)) => {
                        t.access_rate = rate;
                        t.llc_miss_rate = miss;
                        t.class = classify(miss);
                        t.confidence = h.confidence_decay.powi(age as i32);
                    }
                    None => {
                        // Past the age cap (or never seen healthy): the
                        // thread is unknown. Zero rates keep it out of the
                        // memory class; zero confidence keeps it out of
                        // swap decisions.
                        t.access_rate = 0.0;
                        t.llc_miss_rate = 0.0;
                        t.class = ThreadClass::Compute;
                        t.confidence = 0.0;
                    }
                }
            } else {
                let fresh = LastGood {
                    app: t.app,
                    vcore: t.vcore,
                    access_rate: t.access_rate,
                    llc_miss_rate: t.llc_miss_rate,
                    age: 0,
                };
                match self.last_good.iter_mut().find(|(id, _)| *id == t.id) {
                    Some((_, lg)) => *lg = fresh,
                    None => self.last_good.push((t.id, fresh)),
                }
            }
        }

        // Counter dropout: a thread we have healthy history for is absent
        // from the view without having departed. Synthesize it from the
        // last good sample so the Selector still sees (and can fix) it.
        let observed = threads.len();
        for (id, lg) in &mut self.last_good {
            if threads[..observed].iter().any(|t| t.id == *id) || lg.age >= h.holdover_age_cap {
                continue;
            }
            lg.age += 1;
            threads.push(ObservedThread {
                id: *id,
                app: lg.app,
                vcore: lg.vcore,
                access_rate: lg.access_rate,
                llc_miss_rate: lg.llc_miss_rate,
                class: classify(lg.llc_miss_rate),
                migrated_last_quantum: false,
                confidence: h.confidence_decay.powi(lg.age as i32),
            });
        }
        // Ids are unique, so the unstable sort is result-identical to a
        // stable one.
        threads.sort_unstable_by_key(|t| t.id);
    }
}

/// Standard-deviation-over-mean (duplicated from `dike-metrics` to keep the
/// scheduler crate free of the evaluation crate; the metrics tests
/// cross-check the two implementations agree). The hot path inlines this
/// per-app to avoid collecting rates into a temporary; this copy remains as
/// the reference the tests check against.
#[cfg(test)]
fn coefficient_of_variation(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_counters::RateSample;
    use dike_machine::topology::CoreKind;
    use dike_machine::{SimTime, ThreadCounters};
    use dike_sched_core::{CoreObservation, ThreadObservation};

    fn mk_view(rates_and_miss: &[(f64, f64)], fast_cores: usize) -> SystemView {
        let threads: Vec<ThreadObservation> = rates_and_miss
            .iter()
            .enumerate()
            .map(|(i, &(access_rate, llc_miss_rate))| ThreadObservation {
                id: ThreadId(i as u32),
                app: AppId(i as u32 / 2),
                vcore: VCoreId(i as u32),
                rates: RateSample {
                    access_rate,
                    llc_miss_rate,
                    ..RateSample::default()
                },
                cumulative: ThreadCounters::default(),
                migrated_last_quantum: false,
                llc_occupancy_mib: 0.0,
            })
            .collect();
        let n = rates_and_miss.len();
        let cores: Vec<CoreObservation> = (0..n)
            .map(|c| CoreObservation {
                id: VCoreId(c as u32),
                kind: if c < fast_cores {
                    CoreKind::FAST
                } else {
                    CoreKind::SLOW
                },
                domain: DomainId(0),
                bandwidth: rates_and_miss[c].0,
            })
            .collect();
        let mut view = SystemView {
            now: SimTime::from_ms(500),
            quantum: SimTime::from_ms(500),
            threads,
            cores,
            ..SystemView::default()
        };
        view.assign_occupants();
        view
    }

    #[test]
    fn classification_uses_the_ten_percent_boundary() {
        let mut obs = Observer::new(&DikeConfig::default(), 4);
        let view = mk_view(&[(5e7, 0.15), (4e7, 0.12), (1e6, 0.05), (2e6, 0.02)], 2);
        let o = obs.observe(&view);
        assert_eq!(o.threads[0].class, ThreadClass::Memory);
        assert_eq!(o.threads[1].class, ThreadClass::Memory);
        assert_eq!(o.threads[2].class, ThreadClass::Compute);
        assert_eq!(o.threads[3].class, ThreadClass::Compute);
        assert_eq!(o.memory_fraction, 0.5);
    }

    #[test]
    fn frequency_ranking_marks_fast_half_high_bw() {
        let mut obs = Observer::new(&DikeConfig::default(), 4);
        let view = mk_view(&[(1.0, 0.0), (1.0, 0.0), (9.0, 0.0), (9.0, 0.0)], 2);
        let o = obs.observe(&view);
        assert_eq!(o.high_bw, vec![true, true, false, false]);
    }

    #[test]
    fn observed_bandwidth_ranking_follows_corebw() {
        let cfg = DikeConfig {
            core_ranking: CoreRanking::ObservedBandwidth,
            ..DikeConfig::default()
        };
        let mut obs = Observer::new(&cfg, 4);
        // Cores 2,3 serve more bandwidth despite being "slow".
        let view = mk_view(&[(1.0, 0.0), (2.0, 0.0), (90.0, 0.0), (80.0, 0.0)], 2);
        let o = obs.observe(&view);
        assert_eq!(o.high_bw, vec![false, false, true, true]);
    }

    fn gated_cfg() -> DikeConfig {
        DikeConfig {
            core_bw_estimate: crate::config::CoreBwEstimate::DemandGated,
            ..DikeConfig::default()
        }
    }

    #[test]
    fn per_core_mean_is_the_papers_plain_moving_mean() {
        let mut obs = Observer::new(&DikeConfig::default(), 4);
        let v1 = mk_view(&[(10.0, 0.15), (4.0, 0.0), (3.0, 0.02), (2.0, 0.0)], 2);
        let v2 = mk_view(&[(30.0, 0.15), (8.0, 0.0), (9.0, 0.02), (4.0, 0.0)], 2);
        obs.observe(&v1);
        let o = obs.observe(&v2);
        // Every core's mean updates every quantum, consumed or not.
        assert_eq!(o.core_bw, vec![20.0, 6.0, 6.0, 3.0]);
    }

    #[test]
    fn core_bw_is_a_demand_gated_moving_mean() {
        let mut obs = Observer::new(&gated_cfg(), 4);
        // Core 0 hosts a memory thread (miss rate 0.15): its bandwidth is
        // sampled. Core 2 hosts a compute thread: not sampled.
        let v1 = mk_view(&[(10.0, 0.15), (0.0, 0.0), (3.0, 0.02), (0.0, 0.0)], 2);
        let v2 = mk_view(&[(30.0, 0.15), (0.0, 0.0), (9.0, 0.02), (0.0, 0.0)], 2);
        obs.observe(&v1);
        let o = obs.observe(&v2);
        assert_eq!(o.core_bw[0], 20.0); // mean of 10 and 30
        assert_eq!(obs.core_bw_of(VCoreId(0)), 20.0);
        // Core 1 never consumed: falls back to its class mean. Cores 0 and
        // 1 share the FAST class, so the class mean equals core 0's mean.
        assert_eq!(o.core_bw[1], 20.0);
        // Core 3 (SLOW class, no class history): falls back to its own
        // current served bandwidth.
        assert_eq!(o.core_bw[3], 0.0);
    }

    #[test]
    fn unconsumed_cores_inherit_class_capability() {
        let mut obs = Observer::new(&gated_cfg(), 4);
        // Memory thread on fast core 0 and slow core 2; cores 1 and 3 host
        // compute threads.
        let v = mk_view(&[(50.0, 0.2), (1.0, 0.01), (30.0, 0.2), (1.0, 0.01)], 2);
        let o = obs.observe(&v);
        assert_eq!(o.core_bw[0], 50.0);
        assert_eq!(o.core_bw[1], 50.0); // fast-class capability
        assert_eq!(o.core_bw[2], 30.0);
        assert_eq!(o.core_bw[3], 30.0); // slow-class capability
    }

    #[test]
    fn fairness_gate_uses_mean_per_app_cv_of_access_rates() {
        // mk_view assigns app = thread_index / 2: threads (0,1) are one app
        // and (2,3) another.
        let mut obs = Observer::new(&DikeConfig::default(), 4);
        let even = mk_view(&[(10.0, 0.0), (10.0, 0.0), (10.0, 0.0), (10.0, 0.0)], 2);
        let o = obs.observe(&even);
        assert!(o.fairness_cv < 1e-12);
        assert!(o.is_fair(0.1));

        // Dispersion inside app 0: unfair.
        let mut obs = Observer::new(&DikeConfig::default(), 4);
        let skew = mk_view(&[(1.0, 0.0), (100.0, 0.0), (1.0, 0.0), (1.0, 0.0)], 2);
        let o = obs.observe(&skew);
        assert!(o.fairness_cv > 0.4, "cv {}", o.fairness_cv);
        assert!(!o.is_fair(0.1));

        // A huge rate gap *between* apps with none inside: fair — this is
        // what makes the gate meaningful for mixed M/C workloads.
        let mut obs = Observer::new(&DikeConfig::default(), 4);
        let between = mk_view(&[(100.0, 0.0), (100.0, 0.0), (1.0, 0.0), (1.0, 0.0)], 2);
        let o = obs.observe(&between);
        assert!(o.fairness_cv < 1e-12, "cv {}", o.fairness_cv);
        assert!(o.is_fair(0.1));
    }

    #[test]
    fn poisoned_view_is_sanitized_not_propagated() {
        // A corrupted counter read (NaN/∞/out-of-range) must never leak
        // into the observation: every downstream quantity stays finite.
        let mut obs = Observer::new(&DikeConfig::default(), 4);
        let mut view = mk_view(&[(5e7, 0.15), (4e7, 0.12), (1e6, 0.05), (2e6, 0.02)], 2);
        view.threads[0].rates.access_rate = f64::NAN;
        view.threads[0].rates.llc_miss_rate = f64::NAN;
        view.threads[1].rates.access_rate = f64::INFINITY;
        view.threads[2].rates.llc_miss_rate = 7.0;
        let o = obs.observe(&view);
        for t in &o.threads {
            assert!(t.access_rate.is_finite(), "{t:?}");
            assert!((0.0..=1.0).contains(&t.llc_miss_rate), "{t:?}");
            assert_eq!(t.confidence, 1.0);
        }
        assert!(o.fairness_cv.is_finite());
        assert!(o.memory_fraction.is_finite());
        // The gate still produces a decidable verdict (no NaN poisoning:
        // a NaN cv would make is_fair silently false forever).
        let _ = o.is_fair(0.1);
    }

    fn hardened_cfg() -> DikeConfig {
        crate::config::DikeConfig::hardened(crate::config::SchedConfig::DEFAULT)
    }

    #[test]
    fn hardened_holdover_replaces_implausible_samples_with_last_good() {
        let mut obs = Observer::new(&hardened_cfg(), 4);
        let healthy = mk_view(&[(5e7, 0.15), (4e7, 0.12), (1e6, 0.05), (2e6, 0.02)], 2);
        let o = obs.observe(&healthy);
        assert!(o.threads.iter().all(|t| t.confidence == 1.0));

        // Thread 0's sample goes bad: the last good value substitutes, at
        // reduced confidence, and the class sticks.
        let mut poisoned = healthy.clone();
        poisoned.threads[0].rates.access_rate = f64::NAN;
        let o = obs.observe(&poisoned);
        let t0 = &o.threads[0];
        assert_eq!(t0.access_rate, 5e7);
        assert_eq!(t0.class, ThreadClass::Memory);
        assert!(t0.confidence < 1.0 && t0.confidence > 0.0);
        assert_eq!(o.threads[1].confidence, 1.0);

        // Past the age cap the thread becomes unknown: zero rates, zero
        // confidence — never a stale value held forever.
        let cap = hardened_cfg().hardening.unwrap().holdover_age_cap;
        for _ in 0..cap {
            let o = obs.observe(&poisoned);
            assert!(o.threads[0].access_rate.is_finite());
        }
        let o = obs.observe(&poisoned);
        assert_eq!(o.threads[0].access_rate, 0.0);
        assert_eq!(o.threads[0].confidence, 0.0);
        assert_eq!(o.threads[0].class, ThreadClass::Compute);
    }

    #[test]
    fn hardened_dropout_synthesizes_missing_threads_from_history() {
        let mut obs = Observer::new(&hardened_cfg(), 4);
        let healthy = mk_view(&[(5e7, 0.15), (4e7, 0.12), (1e6, 0.05), (2e6, 0.02)], 2);
        obs.observe(&healthy);

        // Thread 1's sample is dropped outright (absent, not departed).
        let mut dropped = healthy.clone();
        dropped.threads.remove(1);
        let o = obs.observe(&dropped);
        assert_eq!(o.threads.len(), 4, "dropout must be synthesized back");
        let t1 = o.threads.iter().find(|t| t.id == ThreadId(1)).unwrap();
        assert_eq!(t1.access_rate, 4e7);
        assert!(t1.confidence < 1.0 && t1.confidence > 0.0);
        // Thread-id order is preserved after the merge.
        let ids: Vec<u32> = o.threads.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);

        // A *departed* thread is not synthesized.
        let mut finished = healthy.clone();
        finished.threads.remove(1);
        finished.departed = vec![ThreadId(1)];
        let o = obs.observe(&finished);
        assert_eq!(o.threads.len(), 3);
        assert!(o.threads.iter().all(|t| t.id != ThreadId(1)));
    }

    #[test]
    fn unhardened_observer_keeps_no_holdover_state() {
        // The paper-faithful pipeline scrubs but never substitutes: a
        // dropped thread simply vanishes from the observation.
        let mut obs = Observer::new(&DikeConfig::default(), 4);
        let healthy = mk_view(&[(5e7, 0.15), (4e7, 0.12), (1e6, 0.05), (2e6, 0.02)], 2);
        obs.observe(&healthy);
        let mut dropped = healthy.clone();
        dropped.threads.remove(1);
        let o = obs.observe(&dropped);
        assert_eq!(o.threads.len(), 3);
    }

    #[test]
    fn cv_matches_metrics_crate() {
        let xs = [3.0, 7.0, 9.0, 1.0];
        assert!(
            (coefficient_of_variation(&xs) - dike_metrics::coefficient_of_variation(&xs)).abs()
                < 1e-12
        );
        assert_eq!(coefficient_of_variation(&[]), 0.0);
    }
}
