//! Property tests on Dike's components: selector pairing, configuration
//! ladder, optimizer convergence, and decider consistency.

use dike_machine::{AppId, DomainId, ThreadId, VCoreId};
use dike_scheduler::observer::{Observation, ObservedThread, ThreadClass};
use dike_scheduler::{select_pairs, AdaptationGoal, DikeConfig, SchedConfig};
use dike_util::check::check;
use dike_util::Pcg32;

/// Build an observation from `(access_rate, on_high_bw, is_memory)` tuples.
fn obs_from(threads: &[(f64, bool, bool)]) -> Observation {
    let ts: Vec<ObservedThread> = threads
        .iter()
        .enumerate()
        .map(|(i, &(access_rate, _, memory))| ObservedThread {
            id: ThreadId(i as u32),
            app: AppId((i % 4) as u32),
            vcore: VCoreId(i as u32),
            access_rate,
            llc_miss_rate: if memory { 0.15 } else { 0.02 },
            class: if memory {
                ThreadClass::Memory
            } else {
                ThreadClass::Compute
            },
            migrated_last_quantum: false,
            confidence: 1.0,
        })
        .collect();
    let high_bw = threads.iter().map(|&(_, h, _)| h).collect();
    Observation {
        threads: ts,
        high_bw,
        core_bw: vec![1.0; threads.len()],
        core_domain: vec![DomainId(0); threads.len()],
        num_domains: 1,
        fairness_cv: 10.0, // force the gate open
        memory_fraction: 0.5,
    }
}

/// Like [`obs_from`] but tagging each thread's core with a NUMA domain
/// (`domains` parallel to `threads`) and a stated domain count.
fn obs_with_domains(
    threads: &[(f64, bool, bool)],
    domains: &[u32],
    num_domains: usize,
) -> Observation {
    let mut o = obs_from(threads);
    o.core_domain = domains.iter().map(|&d| DomainId(d)).collect();
    o.num_domains = num_domains;
    o
}

/// Draw a `(access_rate, on_high_bw, is_memory)` tuple list.
fn gen_threads(rng: &mut Pcg32, lo_rate: f64, max_len: usize) -> Vec<(f64, bool, bool)> {
    let len = rng.gen_range(2usize..max_len);
    (0..len)
        .map(|_| (rng.gen_range(lo_rate..1e8), rng.gen_bool(), rng.gen_bool()))
        .collect()
}

#[test]
fn selector_pairs_are_disjoint_directed_and_bounded() {
    check(
        "selector_pairs_are_disjoint_directed_and_bounded",
        256,
        |rng| {
            let threads = gen_threads(rng, 0.0, 40);
            let swap_size = rng.gen_range(0u32..20);

            let obs = obs_from(&threads);
            let pairs = select_pairs(&obs, swap_size, 0.1);
            // Bounded by swapSize/2.
            assert!(pairs.len() <= (swap_size / 2) as usize);
            // Disjoint thread ids.
            let mut ids: Vec<u32> = pairs.iter().flat_map(|p| [p.low.0, p.high.0]).collect();
            let before = ids.len();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), before, "a thread appears in two pairs");
            for p in &pairs {
                // Direction: low member sits on a high-BW core, high member on
                // a low-BW core (that is what the swap corrects).
                assert!(obs.high_bw[p.low_vcore.index()]);
                assert!(!obs.high_bw[p.high_vcore.index()]);
                // Reported vcores match the threads'.
                let low = obs.threads.iter().find(|t| t.id == p.low).unwrap();
                let high = obs.threads.iter().find(|t| t.id == p.high).unwrap();
                assert_eq!(low.vcore, p.low_vcore);
                assert_eq!(high.vcore, p.high_vcore);
            }
        },
    );
}

#[test]
fn hierarchical_selection_matches_flat_reference() {
    use dike_scheduler::{select_pairs_flat_into, select_pairs_into, SelectScratch};
    // The O(n·swap_size) nomination/arbitration hierarchy must emit the
    // exact `Pair` sequence of the retained flat reference (global sort +
    // per-domain rescan) for every domain count, class mix, and budget.
    check(
        "hierarchical_selection_matches_flat_reference",
        512,
        |rng| {
            let num_domains = [1usize, 2, 4, 8][rng.gen_range(0usize..4)];
            let threads = gen_threads(rng, 0.0, 64);
            let domains: Vec<u32> = threads
                .iter()
                .map(|_| rng.gen_range(0u32..num_domains as u32))
                .collect();
            let swap_size = rng.gen_range(0u32..20);

            let obs = obs_with_domains(&threads, &domains, num_domains);
            let mut scratch = SelectScratch::default();
            let mut hier = Vec::new();
            let mut flat = Vec::new();
            select_pairs_into(&obs, swap_size, 0.1, &mut scratch, &mut hier);
            select_pairs_flat_into(&obs, swap_size, 0.1, &mut scratch, &mut flat);
            assert_eq!(
                hier, flat,
                "selection diverged: {num_domains} domains, swap_size {swap_size}, {threads:?}"
            );
        },
    );
}

#[test]
fn selector_respects_the_fairness_gate() {
    check("selector_respects_the_fairness_gate", 256, |rng| {
        let threads = gen_threads(rng, 1.0, 20);
        let mut obs = obs_from(&threads);
        obs.fairness_cv = 0.05; // fair system
        assert!(select_pairs(&obs, 8, 0.1).is_empty());
    });
}

#[test]
fn config_ladder_moves_stay_on_the_grid() {
    check("config_ladder_moves_stay_on_the_grid", 256, |rng| {
        let n_moves = rng.gen_range(0usize..40);
        let moves: Vec<u8> = (0..n_moves).map(|_| rng.gen_range(0u8..4)).collect();
        let start_idx = rng.gen_range(0usize..32);

        let grid = SchedConfig::grid();
        let mut cfg = grid[start_idx];
        for m in moves {
            match m {
                0 => cfg.decrease_quantum(100),
                1 => cfg.increase_quantum(1000),
                2 => cfg.increase_swap_size(),
                _ => cfg.decrease_swap_size(),
            }
            assert!(cfg.validate().is_ok(), "left the grid: {cfg:?}");
            assert!(grid.contains(&cfg));
        }
    });
}

#[test]
fn optimizer_converges_and_stays_valid() {
    check("optimizer_converges_and_stays_valid", 256, |rng| {
        let memory_fraction = rng.gen_range(0.0f64..1.0);
        let goal = if rng.gen_bool() {
            AdaptationGoal::Fairness
        } else {
            AdaptationGoal::Performance
        };
        let steps = rng.gen_range(1usize..20);

        let cfg = DikeConfig {
            adaptation: Some(goal),
            ..DikeConfig::default()
        };
        let obs = Observation {
            threads: Vec::new(),
            high_bw: Vec::new(),
            core_bw: Vec::new(),
            core_domain: Vec::new(),
            num_domains: 1,
            fairness_cv: 1.0,
            memory_fraction,
        };
        let mut sched = SchedConfig::DEFAULT;
        let mut prev = sched;
        let mut converged = false;
        for _ in 0..steps {
            dike_scheduler::optimizer::step(&cfg, &obs, &mut sched);
            assert!(sched.validate().is_ok());
            if sched == prev {
                converged = true;
            } else {
                // Once converged, the config must never move again (the
                // target is a fixed point for a fixed workload type).
                assert!(!converged, "left a fixed point");
            }
            prev = sched;
        }
    });
}

#[test]
fn dike_config_grid_round_trips_through_json() {
    check("dike_config_grid_round_trips_through_json", 256, |rng| {
        let idx = rng.gen_range(0usize..32);
        let cfg = SchedConfig::grid()[idx];
        let json = dike_util::json::to_string(&cfg);
        let back: SchedConfig = dike_util::json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    });
}
