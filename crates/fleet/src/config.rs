//! Fleet topology and tenant population.
//!
//! A fleet is `M` independent [`MachineConfig`]s (each with its own
//! topology, seed, and fault plan) plus `T` tenants, each a seeded
//! Poisson arrival stream over a benchmark mix. Everything downstream —
//! dispatch, simulation, roll-up — is a pure function of this struct, so
//! two fleets built from equal configs produce byte-identical results.

use dike_machine::{presets, MachineConfig};
use dike_util::rng::splitmix64;
use dike_workloads::{paper, AppKind, ArrivalConfig};

/// Dispatcher knobs (see [`crate::dispatch`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchConfig {
    /// Load discount a tenant's *home* machine receives when competing
    /// for an arrival, in normalised-load units (load per vcore). Zero
    /// disables affinity entirely; large values pin tenants home.
    pub affinity_bonus: f64,
    /// Time constant of the exponential decay applied to each machine's
    /// load estimate, in milliseconds. Arrivals further apart than a few
    /// `tau` barely see each other.
    pub decay_tau_ms: f64,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            affinity_bonus: 0.05,
            decay_tau_ms: 2_000.0,
        }
    }
}

/// One tenant: a named, seeded arrival stream over an app mix.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (reported in roll-ups).
    pub name: String,
    /// Benchmark pool the tenant's arrivals draw from.
    pub apps: Vec<AppKind>,
    /// Poisson arrival shape.
    pub arrivals: ArrivalConfig,
    /// Seed of the tenant's arrival stream.
    pub seed: u64,
}

/// The whole fleet: machines, tenants, dispatch policy, and the knobs
/// shared by every per-machine run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// One config per machine. Heterogeneous fleets (mixed topologies,
    /// per-machine fault plans) are just different elements here.
    pub machines: Vec<MachineConfig>,
    /// The tenant population.
    pub tenants: Vec<TenantSpec>,
    /// Dispatcher knobs.
    pub dispatch: DispatchConfig,
    /// Phase-program scale applied to every spawned thread (same knob as
    /// the single-machine experiments).
    pub scale: f64,
    /// Per-machine run deadline in seconds.
    pub deadline_s: f64,
}

impl FleetConfig {
    /// A uniform fleet: `n_machines` paper-testbed machines (every 8th a
    /// 2-domain NUMA box, so locality handling stays exercised) and
    /// `n_tenants` tenants drawing from the WL1 mix with the given
    /// arrival shape. All seeds — per-machine and per-tenant — are
    /// expanded from `fleet_seed` with SplitMix64, so the whole fleet is
    /// deterministic in `(n_machines, n_tenants, arrivals, fleet_seed)`.
    ///
    /// # Panics
    /// Panics if `n_machines` or `n_tenants` is zero.
    pub fn uniform(
        n_machines: usize,
        n_tenants: usize,
        arrivals: ArrivalConfig,
        fleet_seed: u64,
    ) -> FleetConfig {
        assert!(n_machines > 0, "a fleet needs at least one machine");
        assert!(n_tenants > 0, "a fleet needs at least one tenant");
        let mut state = fleet_seed;
        let machines = (0..n_machines)
            .map(|i| {
                let seed = splitmix64(&mut state);
                if i % 8 == 7 {
                    presets::numa_machine(2, seed)
                } else {
                    presets::paper_machine(seed)
                }
            })
            .collect();
        let mix = paper::workload(1).apps;
        let tenants = (0..n_tenants)
            .map(|t| TenantSpec {
                name: format!("tenant-{t}"),
                // One app kind per tenant, cycling through the WL1 mix: a
                // tenant's jobs are homogeneous, so its Eqn-4 group CV
                // measures scheduling-induced spread rather than workload
                // heterogeneity (mixing kinds in one group would push CV
                // past 1 and the fairness score below zero by
                // construction).
                apps: vec![mix[t % mix.len()]],
                arrivals,
                seed: splitmix64(&mut state),
            })
            .collect();
        FleetConfig {
            machines,
            tenants,
            dispatch: DispatchConfig::default(),
            scale: 0.02,
            deadline_s: 240.0,
        }
    }

    /// Total simulated thread arrivals this config offers (the sum over
    /// tenants of their traces' thread counts). Materialises the traces;
    /// intended for sizing reports, not hot paths.
    pub fn offered_threads(&self) -> usize {
        crate::dispatch::tenant_traces(self)
            .iter()
            .map(|t| t.num_threads())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fleet_is_deterministic_and_seed_diverse() {
        let cfg = ArrivalConfig::default();
        let a = FleetConfig::uniform(9, 3, cfg, 42);
        let b = FleetConfig::uniform(9, 3, cfg, 42);
        assert_eq!(a, b);
        // Per-machine seeds all differ, and machine 7 is the NUMA box.
        let mut seeds: Vec<u64> = a.machines.iter().map(|m| m.seed).collect();
        seeds.extend(a.tenants.iter().map(|t| t.seed));
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n, "seed collision");
        assert_eq!(a.machines[7].topology.num_domains(), 2);
        assert_eq!(a.machines[0].topology.num_domains(), 1);
        // A different fleet seed produces a different fleet.
        assert_ne!(a, FleetConfig::uniform(9, 3, cfg, 43));
    }
}
