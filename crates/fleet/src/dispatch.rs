//! Open-loop arrival dispatch: route every tenant arrival to a machine
//! *before* any machine simulates a tick.
//!
//! A feedback dispatcher (route by each machine's observed queue) would
//! force the fleet to simulate in lockstep — machine `i`'s state at time
//! `t` would depend on every other machine's state at `t`, serialising
//! the whole fleet and destroying worker-count invariance. Instead the
//! dispatcher is a *pre-pass*: it walks the merged, time-ordered arrival
//! stream once and maintains its own load estimate per machine — an
//! exponentially decayed count of dispatched threads, normalised by the
//! machine's vcore count so a 2-domain NUMA box absorbs twice the share
//! of a single-socket one. Each event goes to the machine with the
//! lowest effective load, where a tenant's *home* machine (a seeded hash
//! of the tenant id) competes with a configurable discount — the
//! least-loaded-with-affinity rule, ties broken toward the lowest
//! machine index. The result is a pure function of the fleet config, so
//! the per-machine simulations can fan out in parallel afterwards with
//! no cross-machine communication at all.
//!
//! An arrival event is dispatched *whole*: all of its threads land on
//! one machine. Splitting would strand barrier siblings (KMEANS phases
//! synchronise within an arrival instance) on machines that never
//! exchange messages.

use crate::config::FleetConfig;
use dike_machine::{AppId, BarrierId, SimTime};
use dike_sched_core::TimedSpawn;
use dike_util::rng::splitmix64;
use dike_workloads::{ArrivalTrace, MergedArrival};

/// Where every arrival went, plus the per-machine spawn plans the runner
/// feeds to the open-system driver.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchPlan {
    /// The merged, time-ordered event stream (one entry per arrival
    /// event across all tenants).
    pub merged: Vec<MergedArrival>,
    /// Machine index chosen for each merged event, parallel to `merged`.
    pub assignment: Vec<u32>,
    /// Owning tenant of each *global event index*. The runner tags every
    /// spawned thread's `AppId` with its global event index, so this is
    /// the thread→tenant map for the roll-up.
    pub tenant_of_event: Vec<u32>,
    /// Per-machine spawn plans, in arrival order.
    pub per_machine: Vec<Vec<TimedSpawn>>,
}

impl DispatchPlan {
    /// Total threads routed, across all machines.
    pub fn total_threads(&self) -> usize {
        self.per_machine.iter().map(Vec::len).sum()
    }
}

/// Materialise every tenant's arrival trace, in tenant order.
pub fn tenant_traces(cfg: &FleetConfig) -> Vec<ArrivalTrace> {
    cfg.tenants
        .iter()
        .map(|t| ArrivalTrace::poisson(t.name.clone(), &t.apps, &t.arrivals, t.seed))
        .collect()
}

/// A tenant's home machine: a SplitMix64 hash of the tenant index,
/// reduced mod the fleet size. Independent of load, so it never changes
/// mid-run, and spread uniformly so homes do not pile onto machine 0.
pub fn home_machine(tenant: u32, n_machines: usize) -> u32 {
    let mut s = 0xD1CE_F1EE_7000_0000u64 ^ u64::from(tenant);
    (splitmix64(&mut s) % n_machines as u64) as u32
}

/// Route every arrival in `traces` over the fleet's machines and expand
/// the per-machine spawn plans.
///
/// Every thread of event `g` (global merged index) is spawned with
/// `AppId(g)` and `BarrierId(g)`: distinct arrivals stay distinct
/// applications even when two tenants' events land on the same machine,
/// and barrier groups never span machines.
pub fn dispatch(cfg: &FleetConfig, traces: &[ArrivalTrace]) -> DispatchPlan {
    let m = cfg.machines.len();
    assert!(m > 0, "cannot dispatch over an empty fleet");
    assert_eq!(traces.len(), cfg.tenants.len(), "one trace per tenant");
    // Zero tenants, or tenants whose traces drew no events, dispatch to
    // an empty plan (every machine idles) instead of tripping over the
    // scorer's empty merged stream.
    if traces.iter().all(|t| t.events.is_empty()) {
        return DispatchPlan {
            merged: Vec::new(),
            assignment: Vec::new(),
            tenant_of_event: Vec::new(),
            per_machine: vec![Vec::new(); m],
        };
    }
    let vcores: Vec<f64> = cfg
        .machines
        .iter()
        .map(|mc| mc.topology.num_vcores() as f64)
        .collect();
    let homes: Vec<u32> = (0..traces.len() as u32)
        .map(|t| home_machine(t, m))
        .collect();

    let merged = ArrivalTrace::merge_order(traces);
    let mut assignment = Vec::with_capacity(merged.len());
    let mut tenant_of_event = Vec::with_capacity(merged.len());
    let mut per_machine: Vec<Vec<TimedSpawn>> = vec![Vec::new(); m];

    // Exponentially decayed dispatched-thread count per machine, with the
    // time it was last touched. Decay is applied lazily at read time, so
    // the estimate is a pure function of the dispatch history.
    let mut load = vec![0.0f64; m];
    let mut last_ms = vec![0u64; m];
    let tau = cfg.dispatch.decay_tau_ms.max(1.0);

    for (g, ev) in merged.iter().enumerate() {
        let event = &traces[ev.tenant as usize].events[ev.event as usize];
        let home = homes[ev.tenant as usize];
        let mut best = 0usize;
        let mut best_eff = f64::INFINITY;
        for i in 0..m {
            let decayed = load[i] * (-((ev.at_ms - last_ms[i]) as f64) / tau).exp();
            let mut eff = decayed / vcores[i];
            if i as u32 == home {
                eff -= cfg.dispatch.affinity_bonus;
            }
            // Strict `<` keeps the lowest index on ties.
            if eff < best_eff {
                best_eff = eff;
                best = i;
            }
        }
        load[best] = load[best] * (-((ev.at_ms - last_ms[best]) as f64) / tau).exp()
            + f64::from(event.nthreads);
        last_ms[best] = ev.at_ms;
        assignment.push(best as u32);
        tenant_of_event.push(ev.tenant);

        let app = AppId(g as u32);
        let barrier = BarrierId(g as u32);
        let at = SimTime::from_ms(ev.at_ms);
        for _ in 0..event.nthreads {
            per_machine[best].push(TimedSpawn {
                at,
                spec: event.app.thread_spec(app, cfg.scale, barrier),
            });
        }
    }

    DispatchPlan {
        merged,
        assignment,
        tenant_of_event,
        per_machine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_workloads::ArrivalConfig;

    fn fleet(machines: usize, tenants: usize) -> FleetConfig {
        FleetConfig::uniform(
            machines,
            tenants,
            ArrivalConfig {
                mean_interarrival_ms: 500.0,
                horizon_ms: 10_000,
                threads_min: 1,
                threads_max: 3,
            },
            7,
        )
    }

    #[test]
    fn homes_are_stable_and_spread() {
        let homes: Vec<u32> = (0..64).map(|t| home_machine(t, 16)).collect();
        assert_eq!(
            homes,
            (0..64).map(|t| home_machine(t, 16)).collect::<Vec<_>>()
        );
        let mut used = homes.clone();
        used.sort_unstable();
        used.dedup();
        assert!(used.len() > 8, "64 tenants over 16 machines should spread");
        assert!(homes.iter().all(|&h| h < 16));
    }

    #[test]
    fn load_balances_away_from_a_hot_machine() {
        // With affinity off, a burst of simultaneous arrivals must not
        // all land on machine 0: each dispatch raises that machine's
        // load, pushing the next arrival elsewhere.
        let mut cfg = fleet(4, 8);
        cfg.dispatch.affinity_bonus = 0.0;
        let traces = tenant_traces(&cfg);
        let plan = dispatch(&cfg, &traces);
        let mut used: Vec<u32> = plan.assignment.clone();
        used.sort_unstable();
        used.dedup();
        assert!(
            used.len() == 4,
            "every machine should receive work, got {used:?}"
        );
    }

    #[test]
    fn affinity_pins_a_lone_tenant_home() {
        // One tenant, overwhelming bonus: every event lands on the home
        // machine regardless of the load it accumulates there.
        let mut cfg = fleet(4, 1);
        cfg.dispatch.affinity_bonus = 1e9;
        let traces = tenant_traces(&cfg);
        let plan = dispatch(&cfg, &traces);
        let home = home_machine(0, 4);
        assert!(!plan.assignment.is_empty());
        assert!(plan.assignment.iter().all(|&a| a == home));
    }

    #[test]
    fn zero_tenant_fleet_dispatches_to_an_empty_plan() {
        // `FleetConfig::uniform` refuses zero tenants, but a hand-built
        // config (e.g. a fleet spun up before its tenants onboard) is
        // legal and must dispatch to an all-idle plan, not panic.
        let cfg = FleetConfig {
            machines: fleet(2, 1).machines,
            tenants: Vec::new(),
            dispatch: Default::default(),
            scale: 0.02,
            deadline_s: 10.0,
        };
        let plan = dispatch(&cfg, &[]);
        assert!(plan.merged.is_empty());
        assert!(plan.assignment.is_empty());
        assert!(plan.tenant_of_event.is_empty());
        assert_eq!(plan.per_machine.len(), 2);
        assert!(plan.per_machine.iter().all(Vec::is_empty));
        assert_eq!(plan.total_threads(), 0);
    }

    #[test]
    fn all_empty_traces_dispatch_to_an_empty_plan() {
        // Tenants exist but every trace drew zero events (a horizon
        // shorter than any plausible inter-arrival draw): same empty
        // plan, one slot per machine, nothing routed.
        let mut cfg = fleet(3, 2);
        for t in &mut cfg.tenants {
            t.arrivals.horizon_ms = 0;
        }
        let traces = tenant_traces(&cfg);
        assert!(traces.iter().all(|t| t.events.is_empty()));
        assert_eq!(traces.len(), 2);
        let plan = dispatch(&cfg, &traces);
        assert!(plan.merged.is_empty());
        assert_eq!(plan.per_machine.len(), 3);
        assert!(plan.per_machine.iter().all(Vec::is_empty));
    }

    #[test]
    fn numa_machines_absorb_more_by_vcore_normalisation() {
        // Machine 7 (every 8th) has twice the vcores. Under uniform load
        // with affinity off it should receive noticeably more threads
        // than the single-socket average.
        let mut cfg = fleet(8, 16);
        cfg.dispatch.affinity_bonus = 0.0;
        let traces = tenant_traces(&cfg);
        let plan = dispatch(&cfg, &traces);
        let counts: Vec<usize> = plan.per_machine.iter().map(Vec::len).collect();
        let single_avg: f64 = counts[..7].iter().sum::<usize>() as f64 / 7.0;
        assert!(
            counts[7] as f64 > single_avg,
            "NUMA box got {} vs single-socket average {single_avg:.1}",
            counts[7]
        );
    }
}
