//! Epoch-driven fleet dispatch with machine-fault tolerance.
//!
//! The one-shot dispatcher in [`crate::dispatch`] routes every arrival
//! before any machine simulates a tick — perfect for a healthy fleet,
//! blind to machines that die mid-run. This module restructures the run
//! into *epochs*: simulate every machine up to an epoch barrier, observe
//! per-machine health (alive/brownout/down state, queue depth, running
//! count), route the next epoch's arrivals with a health-aware scorer
//! that quarantines failed machines, re-dispatch orphaned work from
//! crashed machines to healthy peers under a bounded per-arrival retry
//! budget with linear backoff, and re-admit recovered machines with
//! decayed trust that warms back up over epochs.
//!
//! Machine faults come from [`MachineFaultConfig`] — the same seeded
//! stateless hashing as the per-thread channels, drawn once per
//! `(machine, epoch)` at the barrier, so the whole run stays a pure
//! function of its config and is byte-identical at any worker count
//! (health is only ever observed at barriers; machines never communicate
//! inside an epoch).
//!
//! ## Failure semantics
//!
//! * **Crash**: the machine freezes at the barrier — it stops accepting
//!   and stops draining. Its *queued* (never-spawned) arrivals are
//!   orphaned for re-dispatch (whole events only: an event with some
//!   threads already admitted keeps its queued remainder, because
//!   barrier siblings must never split across machines); its admitted
//!   threads are stranded in flight until recovery. On recovery every
//!   alive thread is stalled by exactly the outage length, so no work
//!   progresses while the box is down, and the machine re-enters routing
//!   with `readmit_trust` that recovers toward 1 per epoch.
//! * **Brownout**: the machine keeps its queue and keeps (slowly)
//!   draining — every alive thread stalls `brownout_stall_ms` per epoch
//!   — but the health-aware scorer stops routing new work to it.
//! * **Lost, never dropped**: an arrival whose retry budget is exhausted
//!   (or that cannot be routed because no machine is healthy) is counted
//!   in the [`ConservationLedger`]; `dispatched = drained + in_flight +
//!   lost` holds at every fault level.
//!
//! With `failover: false` the same epoch loop runs the PR-8-style blind
//! decayed-load scorer over *all* machines: arrivals routed into a dead
//! machine are lost, stranded queues are lost, nothing is re-dispatched
//! — the baseline the failover experiment compares against.

use crate::dispatch::{home_machine, tenant_traces};
use crate::run::{FleetRunner, WINDOW_S, WINDOW_STEP_S};
use dike_machine::{AppId, BarrierId, MachineFaultConfig, SimTime, ThreadId};
use dike_metrics::{
    fairness_summary, mean_sojourn, merge_spans, windowed_fairness, ConservationLedger, ThreadSpan,
};
use dike_sched_core::{run_open_epoch_pooled, Scheduler, TimedSpawn};
use dike_scheduler::{Dike, SchedConfig};
use dike_util::{json_struct, Pool};
use dike_workloads::ArrivalTrace;
use std::sync::Mutex;

/// Knobs of one failover run (passed per run, never stored in the fleet
/// config, so the zero-fault one-shot path is untouched).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailoverConfig {
    /// Epoch length in milliseconds — the health-observation cadence.
    pub epoch_ms: u64,
    /// Health-aware routing + orphan re-dispatch on. Off = the blind
    /// baseline: same epoch loop, same faults, decayed-load scoring over
    /// all machines, no quarantine, no re-dispatch.
    pub failover: bool,
    /// Re-dispatch attempts each arrival event may consume before it is
    /// counted as lost. Zero means an orphaned event is lost immediately.
    pub retry_budget: u32,
    /// Trust a recovered machine re-enters routing with, in (0, 1]. The
    /// scorer divides effective load by trust, so low trust makes the
    /// machine look loaded and it warms up gradually.
    pub readmit_trust: f64,
    /// Per-epoch trust recovery rate in [0, 1]:
    /// `trust += (1 - trust) * trust_recovery`.
    pub trust_recovery: f64,
    /// The seeded machine-scope fault stream.
    pub faults: MachineFaultConfig,
}

json_struct!(FailoverConfig {
    epoch_ms,
    failover,
    retry_budget,
    readmit_trust,
    trust_recovery,
    faults,
});

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            epoch_ms: 2_000,
            failover: true,
            retry_budget: 2,
            readmit_trust: 0.25,
            trust_recovery: 0.5,
            faults: MachineFaultConfig::default(),
        }
    }
}

impl FailoverConfig {
    /// Validate knobs and the embedded fault config.
    pub fn validate(&self) -> Result<(), String> {
        if self.epoch_ms == 0 {
            return Err("epoch_ms must be > 0".into());
        }
        if !(self.readmit_trust > 0.0 && self.readmit_trust <= 1.0) {
            return Err(format!(
                "readmit_trust must be in (0,1], got {}",
                self.readmit_trust
            ));
        }
        if !(0.0..=1.0).contains(&self.trust_recovery) {
            return Err(format!(
                "trust_recovery must be in [0,1], got {}",
                self.trust_recovery
            ));
        }
        self.faults.validate()
    }
}

/// One machine's health as seen at epoch barriers.
#[derive(Debug, Clone, Copy)]
struct MachineHealth {
    /// Routing trust in (0, 1]; 1 = fully trusted.
    trust: f64,
    /// `Some(epoch)` while down (recovers at that barrier), with
    /// `u64::MAX` for a permanent crash; `None` while up.
    down_until: Option<u64>,
    /// First epoch after the current brownout window (exclusive).
    brown_until: u64,
    /// The machine recovered and must be clock-caught-up (all alive
    /// threads stalled by the outage length) before it next runs.
    needs_catchup: bool,
    crashes: u64,
    brownouts: u64,
}

impl MachineHealth {
    fn new() -> Self {
        MachineHealth {
            trust: 1.0,
            down_until: None,
            brown_until: 0,
            needs_catchup: false,
            crashes: 0,
            brownouts: 0,
        }
    }

    fn is_down(&self) -> bool {
        self.down_until.is_some()
    }

    /// Routable under the health-aware scorer: up and not browned out.
    fn routable(&self, epoch: u64) -> bool {
        !self.is_down() && self.brown_until <= epoch
    }
}

/// An orphaned arrival event awaiting re-dispatch.
#[derive(Debug, Clone, Copy)]
struct Orphan {
    /// Global merged-event index (also its `AppId`/`BarrierId`).
    event: u32,
    /// Original arrival instant (re-dispatch never back-dates it).
    at: SimTime,
    /// First epoch this orphan may be re-dispatched (linear backoff:
    /// each failed attempt pushes eligibility one epoch further out).
    eligible: u64,
}

/// Retry/loss bookkeeping shared by the crash and routing paths.
struct OrphanBook {
    /// Re-dispatch attempts consumed per global event — persists across
    /// repeated orphanings of the same event.
    retries: Vec<u32>,
    orphans: Vec<Orphan>,
    orphaned: u64,
    redispatched: u64,
    lost_threads: u64,
    lost_by_tenant: Vec<u64>,
}

impl OrphanBook {
    fn new(n_events: usize, n_tenants: usize) -> Self {
        OrphanBook {
            retries: vec![0; n_events],
            orphans: Vec::new(),
            orphaned: 0,
            redispatched: 0,
            lost_threads: 0,
            lost_by_tenant: vec![0; n_tenants],
        }
    }

    fn lose(&mut self, nthreads: u32, tenant: u32) {
        self.lost_threads += u64::from(nthreads);
        self.lost_by_tenant[tenant as usize] += u64::from(nthreads);
    }

    /// Orphan event `g` at epoch `e`, or count it lost when its budget is
    /// already exhausted. Never drops silently.
    fn orphan_or_lose(
        &mut self,
        g: u32,
        nthreads: u32,
        tenant: u32,
        at: SimTime,
        epoch: u64,
        budget: u32,
    ) {
        if self.retries[g as usize] >= budget {
            self.lose(nthreads, tenant);
        } else {
            self.orphans.push(Orphan {
                event: g,
                at,
                eligible: epoch + 1 + u64::from(self.retries[g as usize]),
            });
            self.orphaned += 1;
        }
    }
}

/// One machine's contribution to a failover run.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverMachineSummary {
    /// Machine index in the fleet.
    pub machine: u32,
    /// Threads ever admitted (spawned) on this machine.
    pub admitted: u64,
    /// Admitted threads that finished.
    pub drained: u64,
    /// Threads still queued (never spawned) at run end.
    pub queued: u64,
    /// Hard crashes suffered.
    pub crashes: u64,
    /// Brownout windows entered.
    pub brownouts: u64,
    /// Whether the machine ended the run down.
    pub down_at_end: bool,
    /// The machine's own clock at run end, seconds.
    pub makespan_s: f64,
}

/// One tenant's roll-up, tolerant of partial-machine results: threads
/// stranded on a dead machine still appear (unfinished, charged to the
/// fleet wall), and lost threads are reported explicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverTenantPoint {
    /// Tenant index.
    pub tenant: u32,
    /// Tenant name.
    pub name: String,
    /// Threads the tenant offered.
    pub offered: u64,
    /// Threads that finished somewhere in the fleet.
    pub drained: u64,
    /// Threads lost (budget exhausted or routed into a dead machine).
    pub lost: u64,
    /// Mean sojourn over the tenant's *admitted* threads, unfinished
    /// charged to the fleet wall. Lost threads never ran and are excluded
    /// (they are accounted in `lost`, not smeared into sojourn).
    pub mean_sojourn_s: f64,
}

/// A whole epoch-driven fleet run, rolled up.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverResult {
    /// Scheduler label.
    pub scheduler: String,
    /// Whether health-aware failover routing was on.
    pub failover: bool,
    /// Epochs actually executed (the loop exits early once drained).
    pub epochs: u64,
    /// Per-machine summaries, in machine order.
    pub machines: Vec<FailoverMachineSummary>,
    /// Per-tenant roll-ups, in tenant order.
    pub tenants: Vec<FailoverTenantPoint>,
    /// The conservation balance sheet:
    /// `dispatched = drained + in_flight + lost`.
    pub ledger: ConservationLedger,
    /// Machines quarantined at a barrier (crash + brownout entries).
    pub quarantines: u64,
    /// Recovered machines re-admitted to routing.
    pub readmissions: u64,
    /// Events orphaned off crashed machines (or un-routable arrivals).
    pub orphaned: u64,
    /// Orphaned events successfully re-dispatched to a healthy peer.
    pub redispatched: u64,
    /// Mean of the per-window fleet fairness scores (Eqn 4 per window
    /// over the merged span set, grouped by tenant).
    pub mean_windowed_fairness: f64,
    /// Worst window.
    pub min_windowed_fairness: f64,
    /// Latest machine clock — the fleet wall, seconds.
    pub makespan_s: f64,
    /// Mean sojourn over every admitted thread, unfinished charged to the
    /// wall.
    pub mean_sojourn_s: f64,
}

json_struct!(FailoverMachineSummary {
    machine,
    admitted,
    drained,
    queued,
    crashes,
    brownouts,
    down_at_end,
    makespan_s,
});
json_struct!(FailoverTenantPoint {
    tenant,
    name,
    offered,
    drained,
    lost,
    mean_sojourn_s,
});
json_struct!(FailoverResult {
    scheduler,
    failover,
    epochs,
    machines,
    tenants,
    ledger,
    quarantines,
    readmissions,
    orphaned,
    redispatched,
    mean_windowed_fairness,
    min_windowed_fairness,
    makespan_s,
    mean_sojourn_s,
});

impl FleetRunner {
    /// Run the epoch-driven fault-tolerant fleet under the default Dike
    /// policy. See [`FleetRunner::run_failover_with`].
    pub fn run_failover(&self, pool: &Pool, fo: &FailoverConfig) -> FailoverResult {
        self.run_failover_with(pool, fo, "dike", |_| {
            Box::new(Dike::fixed(SchedConfig::DEFAULT))
        })
    }

    /// Run the epoch-driven loop: simulate an epoch on every up machine
    /// (fanning over the pool in machine order), observe health at the
    /// barrier, route the next epoch's arrivals, re-dispatch orphans.
    /// Scheduler state persists across epochs (one policy instance per
    /// machine for the whole run). Deterministic at any worker count:
    /// all cross-machine decisions happen serially at barriers.
    ///
    /// After the arrival window closes, the loop keeps running *drain*
    /// epochs — orphans become immediately eligible, recoverable machines
    /// come back and catch up, permanently-down machines never run — and
    /// exits as soon as no machine can make further progress, or at the
    /// fleet deadline (rounded up to the epoch grid).
    ///
    /// # Panics
    /// Panics on an invalid [`FailoverConfig`] or an empty fleet.
    pub fn run_failover_with<F>(
        &self,
        pool: &Pool,
        fo: &FailoverConfig,
        label: &str,
        make: F,
    ) -> FailoverResult
    where
        F: Fn(usize) -> Box<dyn Scheduler + Send> + Sync,
    {
        fo.validate().expect("invalid failover config");
        let cfg = &self.cfg;
        let n = self.machines.len();
        assert!(n > 0, "cannot run failover over an empty fleet");
        let n_tenants = cfg.tenants.len();

        let traces = tenant_traces(cfg);
        let merged = ArrivalTrace::merge_order(&traces);
        let tenant_of: Vec<u32> = merged.iter().map(|m| m.tenant).collect();
        let threads_of: Vec<u32> = merged
            .iter()
            .map(|m| traces[m.tenant as usize].events[m.event as usize].nthreads)
            .collect();
        let total_offered: u64 = threads_of.iter().map(|&t| u64::from(t)).sum();
        let spec_of = |g: usize| {
            let ev = &merged[g];
            let event = &traces[ev.tenant as usize].events[ev.event as usize];
            event
                .app
                .thread_spec(AppId(g as u32), cfg.scale, BarrierId(g as u32))
        };

        let epoch_ms = fo.epoch_ms;
        let deadline_ms = (cfg.deadline_s * 1_000.0).ceil() as u64;
        // Faults are drawn over the arrival window; drain epochs past it
        // only recover, re-dispatch and finish work.
        let fault_epochs = merged.last().map_or(0, |m| m.at_ms) / epoch_ms + 1;
        let total_epochs = deadline_ms.div_ceil(epoch_ms).max(fault_epochs);

        for m in &self.machines {
            m.lock().expect("fleet machine lock").reset();
        }
        let scheds: Vec<Mutex<Box<dyn Scheduler + Send>>> =
            (0..n).map(|i| Mutex::new(make(i))).collect();
        // Per-machine pending work (queued leftovers + this epoch's
        // routed arrivals). Lives in mutexes so epoch closures can take
        // and refill it; barriers are the only other accessor.
        let slots: Vec<Mutex<Vec<TimedSpawn>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();

        let vcores: Vec<f64> = cfg
            .machines
            .iter()
            .map(|mc| mc.topology.num_vcores() as f64)
            .collect();
        let homes: Vec<u32> = (0..n_tenants as u32).map(|t| home_machine(t, n)).collect();

        let mut health: Vec<MachineHealth> = vec![MachineHealth::new(); n];
        // Alive (admitted, unfinished) thread count per machine, observed
        // at the previous barrier; frozen while a machine is down.
        let mut running: Vec<u64> = vec![0; n];
        let mut book = OrphanBook::new(merged.len(), n_tenants);
        // Blind decayed-load estimator for the no-failover baseline (the
        // PR-8 pre-pass scorer, fed epoch by epoch).
        let mut blind_load = vec![0.0f64; n];
        let mut blind_last = vec![0u64; n];
        let tau = cfg.dispatch.decay_tau_ms.max(1.0);

        let mut quarantines = 0u64;
        let mut readmissions = 0u64;
        let mut next_event = 0usize;
        let mut epochs_run = 0u64;

        for e in 0..total_epochs {
            let e_start = SimTime::from_ms(e * epoch_ms);
            let e_end = SimTime::from_ms((e + 1) * epoch_ms);

            // ---- barrier: health transitions + fault draws ----
            for i in 0..n {
                let h = &mut health[i];
                if let Some(u) = h.down_until {
                    if u == u64::MAX || e < u {
                        continue; // still down: no draws, no trust motion
                    }
                    h.down_until = None;
                    h.trust = fo.readmit_trust;
                    h.needs_catchup = true;
                    readmissions += 1;
                } else {
                    h.trust = (h.trust + (1.0 - h.trust) * fo.trust_recovery).min(1.0);
                }
                if e >= fault_epochs {
                    continue;
                }
                if fo.faults.crash_at(i as u32, e) {
                    h.crashes += 1;
                    quarantines += 1;
                    h.down_until = Some(if fo.faults.recovery_epochs == 0 {
                        u64::MAX
                    } else {
                        e + u64::from(fo.faults.recovery_epochs)
                    });
                    h.needs_catchup = false; // re-set at the next recovery
                    let stranded =
                        std::mem::take(&mut *slots[i].lock().expect("failover slot lock"));
                    if stranded.is_empty() {
                        continue;
                    }
                    if fo.failover {
                        // Orphan whole events only: an event with threads
                        // already admitted here keeps its queued remainder
                        // (barrier siblings never split across machines);
                        // it resumes if the machine recovers.
                        let machine = self.machines[i].lock().expect("fleet machine lock");
                        let admitted_of = |g: u32| {
                            (0..machine.num_threads())
                                .any(|t| machine.app_of(ThreadId(t as u32)).0 == g)
                        };
                        let mut keep = Vec::new();
                        let mut j = 0;
                        while j < stranded.len() {
                            let g = stranded[j].spec.app.0;
                            let mut k = j;
                            while k < stranded.len() && stranded[k].spec.app.0 == g {
                                k += 1;
                            }
                            if admitted_of(g) {
                                keep.extend_from_slice(&stranded[j..k]);
                            } else {
                                book.orphan_or_lose(
                                    g,
                                    (k - j) as u32,
                                    tenant_of[g as usize],
                                    stranded[j].at,
                                    e,
                                    fo.retry_budget,
                                );
                            }
                            j = k;
                        }
                        *slots[i].lock().expect("failover slot lock") = keep;
                    } else {
                        // Blind baseline: the stranded queue is lost.
                        for ts in &stranded {
                            book.lose(1, tenant_of[ts.spec.app.0 as usize]);
                        }
                    }
                } else if e >= h.brown_until && fo.faults.brownout_at(i as u32, e) {
                    h.brownouts += 1;
                    quarantines += 1;
                    h.brown_until = e + u64::from(fo.faults.brownout_epochs);
                }
            }

            // ---- barrier: route orphans + this epoch's fresh arrivals ----
            let drain = next_event >= merged.len();
            let routable: Vec<usize> = (0..n).filter(|&i| health[i].routable(e)).collect();
            // Effective-backlog estimate (threads) per machine: queued +
            // running at the last barrier + assigned this barrier.
            let mut backlog: Vec<f64> = (0..n)
                .map(|i| {
                    slots[i].lock().expect("failover slot lock").len() as f64 + running[i] as f64
                })
                .collect();
            let route_healthy = |g: u32, at: SimTime, backlog: &mut [f64]| -> usize {
                let home = homes[tenant_of[g as usize] as usize];
                let mut best = routable[0];
                let mut best_eff = f64::INFINITY;
                for &i in &routable {
                    let mut eff = backlog[i] / vcores[i] / health[i].trust;
                    if i as u32 == home {
                        eff -= cfg.dispatch.affinity_bonus;
                    }
                    // Strict `<` keeps the lowest index on ties.
                    if eff < best_eff {
                        best_eff = eff;
                        best = i;
                    }
                }
                let nthreads = threads_of[g as usize];
                backlog[best] += f64::from(nthreads);
                let mut slot = slots[best].lock().expect("failover slot lock");
                for _ in 0..nthreads {
                    slot.push(TimedSpawn {
                        at,
                        spec: spec_of(g as usize),
                    });
                }
                best
            };

            if fo.failover && !book.orphans.is_empty() {
                let mut pending = std::mem::take(&mut book.orphans);
                // Deterministic processing order regardless of how
                // orphanings interleaved across machines.
                pending.sort_by_key(|o| o.event);
                for mut o in pending {
                    // Drain epochs force-dispatch: backoff no longer buys
                    // anything once no new faults can fire.
                    if !drain && o.eligible > e {
                        book.orphans.push(o);
                        continue;
                    }
                    let g = o.event as usize;
                    book.retries[g] += 1;
                    if routable.is_empty() {
                        // The attempt is consumed even when nobody is
                        // healthy — this bounds the loop and turns a
                        // fleet-wide outage into explicit losses.
                        if book.retries[g] > fo.retry_budget {
                            book.lose(threads_of[g], tenant_of[g]);
                        } else {
                            o.eligible = e + 1 + u64::from(book.retries[g]);
                            book.orphans.push(o);
                        }
                        continue;
                    }
                    let at = if o.at < e_start { e_start } else { o.at };
                    route_healthy(o.event, at, &mut backlog);
                    book.redispatched += 1;
                }
            }

            while next_event < merged.len() && merged[next_event].at_ms < (e + 1) * epoch_ms {
                let g = next_event as u32;
                let at = SimTime::from_ms(merged[next_event].at_ms);
                let tenant = tenant_of[next_event];
                if fo.failover {
                    if routable.is_empty() {
                        book.orphan_or_lose(
                            g,
                            threads_of[next_event],
                            tenant,
                            at,
                            e,
                            fo.retry_budget,
                        );
                    } else {
                        route_healthy(g, at, &mut backlog);
                    }
                } else {
                    // Blind decayed-load scorer over ALL machines — the
                    // exact pre-pass rule, unaware of machine health.
                    let at_ms = merged[next_event].at_ms;
                    let home = homes[tenant as usize];
                    let mut best = 0usize;
                    let mut best_eff = f64::INFINITY;
                    for i in 0..n {
                        let decayed =
                            blind_load[i] * (-((at_ms - blind_last[i]) as f64) / tau).exp();
                        let mut eff = decayed / vcores[i];
                        if i as u32 == home {
                            eff -= cfg.dispatch.affinity_bonus;
                        }
                        if eff < best_eff {
                            best_eff = eff;
                            best = i;
                        }
                    }
                    let nthreads = threads_of[next_event];
                    blind_load[best] = blind_load[best]
                        * (-((at_ms - blind_last[best]) as f64) / tau).exp()
                        + f64::from(nthreads);
                    blind_last[best] = at_ms;
                    if health[best].is_down() {
                        // Routed into a dead machine: the work is lost —
                        // the cost of dispatching blind.
                        book.lose(nthreads, tenant);
                    } else {
                        let mut slot = slots[best].lock().expect("failover slot lock");
                        for _ in 0..nthreads {
                            slot.push(TimedSpawn {
                                at,
                                spec: spec_of(next_event),
                            });
                        }
                    }
                }
                next_event += 1;
            }

            // ---- epoch plan: who runs, with what entry stalls ----
            // (catchup, brownout) per machine; None = down, skipped.
            let plan: Vec<Option<(bool, bool)>> = (0..n)
                .map(|i| {
                    let h = &mut health[i];
                    if h.is_down() {
                        return None;
                    }
                    let catchup = h.needs_catchup;
                    if catchup {
                        h.needs_catchup = false;
                        // The queue slept through the outage with the
                        // machine: nothing admits before the recovery
                        // barrier.
                        for ts in slots[i].lock().expect("failover slot lock").iter_mut() {
                            if ts.at < e_start {
                                ts.at = e_start;
                            }
                        }
                    }
                    Some((catchup, h.brown_until > e))
                })
                .collect();

            // ---- simulate the epoch: machines fan out, no cross-talk ----
            pool.map_indexed(n, |i| {
                let Some((catchup, brown)) = plan[i] else {
                    return;
                };
                let mut machine = self.machines[i].lock().expect("fleet machine lock");
                let mut sched = scheds[i].lock().expect("failover sched lock");
                if catchup {
                    // Freeze semantics: alive threads made no progress
                    // while the box was down, so stall them by exactly
                    // the outage length before the clock catches up.
                    let gap = e_start.saturating_sub(machine.now());
                    if gap > SimTime::ZERO {
                        let ids: Vec<ThreadId> = machine.alive_ids().collect();
                        for t in ids {
                            machine.stall(t, gap);
                        }
                    }
                }
                if brown {
                    let dur = SimTime::from_ms(fo.faults.brownout_stall_ms);
                    let ids: Vec<ThreadId> = machine.alive_ids().collect();
                    for t in ids {
                        machine.stall(t, dur);
                    }
                }
                let arrivals = std::mem::take(&mut *slots[i].lock().expect("failover slot lock"));
                let (_, leftovers) =
                    run_open_epoch_pooled(&mut machine, &mut **sched, e_end, arrivals);
                *slots[i].lock().expect("failover slot lock") = leftovers;
            });

            // ---- barrier: observe drain state ----
            epochs_run = e + 1;
            for i in 0..n {
                if !health[i].is_down() {
                    running[i] = self.machines[i]
                        .lock()
                        .expect("fleet machine lock")
                        .alive_ids()
                        .count() as u64;
                }
            }
            if next_event >= merged.len() && book.orphans.is_empty() {
                let settled = (0..n).all(|i| {
                    if health[i].down_until == Some(u64::MAX) {
                        return true; // never runs again; its work is in_flight
                    }
                    running[i] == 0 && slots[i].lock().expect("failover slot lock").is_empty()
                });
                if settled {
                    break;
                }
            }
        }

        // ---- roll-up: query machines directly, tolerating partial
        // results (a frozen machine's threads count as unfinished) ----
        let mut machines_out = Vec::with_capacity(n);
        let mut span_lists: Vec<Vec<ThreadSpan>> = Vec::with_capacity(n);
        for i in 0..n {
            let machine = self.machines[i].lock().expect("fleet machine lock");
            let mut spans = Vec::with_capacity(machine.num_threads());
            let mut drained = 0u64;
            for t in 0..machine.num_threads() {
                let id = ThreadId(t as u32);
                let fin = machine.finish_time(id);
                drained += u64::from(fin.is_some());
                spans.push(ThreadSpan {
                    app: tenant_of[machine.app_of(id).0 as usize],
                    spawned_at: machine.spawn_time(id).as_secs_f64(),
                    finished_at: fin.map(|f| f.as_secs_f64()),
                });
            }
            machines_out.push(FailoverMachineSummary {
                machine: i as u32,
                admitted: machine.num_threads() as u64,
                drained,
                queued: slots[i].lock().expect("failover slot lock").len() as u64,
                crashes: health[i].crashes,
                brownouts: health[i].brownouts,
                down_at_end: health[i].is_down(),
                makespan_s: machine.now().as_secs_f64(),
            });
            span_lists.push(spans);
        }

        let drained: u64 = machines_out.iter().map(|m| m.drained).sum();
        let admitted: u64 = machines_out.iter().map(|m| m.admitted).sum();
        let queued: u64 = machines_out.iter().map(|m| m.queued).sum();
        let orphan_threads: u64 = book
            .orphans
            .iter()
            .map(|o| u64::from(threads_of[o.event as usize]))
            .sum();
        let ledger = ConservationLedger {
            dispatched: total_offered,
            drained,
            in_flight: (admitted - drained) + queued + orphan_threads,
            lost: book.lost_threads,
        };

        let merged_spans = merge_spans(&span_lists);
        let wall = machines_out
            .iter()
            .map(|m| m.makespan_s)
            .fold(0.0, f64::max);
        let windows = windowed_fairness(&merged_spans, WINDOW_S, WINDOW_STEP_S, wall.max(WINDOW_S));
        let (mean_fair, min_fair) = fairness_summary(&windows);

        let offered_by_tenant: Vec<u64> = (0..n_tenants)
            .map(|t| traces[t].num_threads() as u64)
            .collect();
        let tenants: Vec<FailoverTenantPoint> = (0..n_tenants as u32)
            .map(|t| {
                let spans: Vec<&ThreadSpan> = merged_spans.iter().filter(|s| s.app == t).collect();
                let drained = spans.iter().filter(|s| s.finished_at.is_some()).count() as u64;
                let sum: f64 = spans.iter().map(|s| s.sojourn(wall)).sum();
                FailoverTenantPoint {
                    tenant: t,
                    name: cfg.tenants[t as usize].name.clone(),
                    offered: offered_by_tenant[t as usize],
                    drained,
                    lost: book.lost_by_tenant[t as usize],
                    mean_sojourn_s: if spans.is_empty() {
                        0.0
                    } else {
                        sum / spans.len() as f64
                    },
                }
            })
            .collect();

        FailoverResult {
            scheduler: label.to_string(),
            failover: fo.failover,
            epochs: epochs_run,
            machines: machines_out,
            tenants,
            ledger,
            quarantines,
            readmissions,
            orphaned: book.orphaned,
            redispatched: book.redispatched,
            mean_windowed_fairness: mean_fair,
            min_windowed_fairness: min_fair,
            makespan_s: wall,
            mean_sojourn_s: mean_sojourn(&merged_spans, wall),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetConfig;
    use dike_util::json;
    use dike_workloads::ArrivalConfig;

    fn tiny_fleet(seed: u64) -> FleetConfig {
        let mut cfg = FleetConfig::uniform(
            3,
            4,
            ArrivalConfig {
                mean_interarrival_ms: 800.0,
                horizon_ms: 6_000,
                threads_min: 1,
                threads_max: 2,
            },
            seed,
        );
        cfg.scale = 0.01;
        cfg.deadline_s = 60.0;
        cfg
    }

    #[test]
    fn failover_config_validation() {
        assert!(FailoverConfig::default().validate().is_ok());
        let bad = FailoverConfig {
            epoch_ms: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = FailoverConfig {
            readmit_trust: 0.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = FailoverConfig {
            faults: MachineFaultConfig {
                crash_rate: 1.5,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let s = json::to_string(&FailoverConfig::default());
        let back: FailoverConfig = json::from_str(&s).expect("parse");
        assert_eq!(back, FailoverConfig::default());
    }

    #[test]
    fn zero_fault_run_drains_conserves_and_is_reusable() {
        let runner = FleetRunner::new(tiny_fleet(11));
        let pool = Pool::new(1);
        let fo = FailoverConfig::default();
        assert!(!fo.faults.is_active());
        let a = runner.run_failover(&pool, &fo);
        let b = runner.run_failover(&pool, &fo);
        assert_eq!(a, b, "machines reset per run: identical laps");
        a.ledger.assert_holds("zero-fault");
        assert_eq!(a.ledger.lost, 0);
        assert_eq!(a.ledger.in_flight, 0, "light load drains fully");
        assert_eq!(a.ledger.drained, a.ledger.dispatched);
        assert_eq!(a.quarantines, 0);
        assert_eq!(a.orphaned, 0);
        assert!(a.ledger.dispatched > 0);
        assert!(a.mean_windowed_fairness > 0.0);
        assert_eq!(
            a.ledger.dispatched,
            a.tenants.iter().map(|t| t.offered).sum::<u64>()
        );
    }

    #[test]
    fn failover_result_is_worker_count_invariant() {
        let runner = FleetRunner::new(tiny_fleet(13));
        let fo = FailoverConfig {
            faults: MachineFaultConfig::axis(0.25, 0.2, 7),
            ..Default::default()
        };
        let serial = json::to_string(&runner.run_failover(&Pool::new(1), &fo));
        for workers in [2, 8] {
            let par = json::to_string(&runner.run_failover(&Pool::new(workers), &fo));
            assert_eq!(serial, par, "diverged at {workers} workers");
        }
    }

    #[test]
    fn crashes_lose_work_blind_but_failover_recovers_it() {
        let runner = FleetRunner::new(tiny_fleet(17));
        let faults = MachineFaultConfig::axis(0.35, 0.0, 23);
        let pool = Pool::new(1);
        let with = runner.run_failover(
            &pool,
            &FailoverConfig {
                failover: true,
                faults,
                ..Default::default()
            },
        );
        let without = runner.run_failover(
            &pool,
            &FailoverConfig {
                failover: false,
                faults,
                ..Default::default()
            },
        );
        with.ledger.assert_holds("failover on");
        without.ledger.assert_holds("failover off");
        let crashes: u64 = with.machines.iter().map(|m| m.crashes).sum();
        assert!(crashes > 0, "the seeded stream must actually crash");
        assert!(
            without.ledger.lost > 0,
            "blind dispatch into a crashing fleet must lose work: {:?}",
            without.ledger
        );
        assert!(
            with.ledger.lost < without.ledger.lost,
            "failover must lose strictly less: {:?} vs {:?}",
            with.ledger,
            without.ledger
        );
        assert!(with.redispatched > 0);
    }

    #[test]
    fn permanent_fleet_wide_crash_loses_everything_explicitly() {
        let runner = FleetRunner::new(tiny_fleet(19));
        let fo = FailoverConfig {
            faults: MachineFaultConfig {
                crash_rate: 1.0,
                recovery_epochs: 0, // permanent
                ..Default::default()
            },
            ..Default::default()
        };
        let r = runner.run_failover(&Pool::new(1), &fo);
        r.ledger.assert_holds("fleet-wide permanent crash");
        // Every machine died at the first barrier, before admitting
        // anything: all offered work becomes explicit losses (bounded by
        // the retry budget), never a silent drop.
        assert_eq!(r.ledger.drained, 0);
        assert_eq!(r.ledger.in_flight, 0);
        assert_eq!(r.ledger.lost, r.ledger.dispatched);
        assert!(r.machines.iter().all(|m| m.down_at_end));
    }

    #[test]
    fn brownouts_conserve_and_quarantine_routing() {
        let runner = FleetRunner::new(tiny_fleet(29));
        let fo = FailoverConfig {
            faults: MachineFaultConfig::axis(0.0, 0.5, 31),
            ..Default::default()
        };
        let r = runner.run_failover(&Pool::new(1), &fo);
        r.ledger.assert_holds("brownouts");
        let brownouts: u64 = r.machines.iter().map(|m| m.brownouts).sum();
        assert!(brownouts > 0, "the seeded stream must brown out");
        assert!(r.quarantines >= brownouts);
        // Brownouts slow machines but kill nothing: with a generous
        // deadline everything still drains.
        assert_eq!(r.ledger.drained, r.ledger.dispatched, "{:?}", r.ledger);
    }

    #[test]
    fn recovered_machines_are_readmitted() {
        let runner = FleetRunner::new(tiny_fleet(37));
        let fo = FailoverConfig {
            faults: MachineFaultConfig {
                crash_rate: 0.4,
                recovery_epochs: 1,
                seed: 41,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = runner.run_failover(&Pool::new(1), &fo);
        r.ledger.assert_holds("crash + fast recovery");
        let crashes: u64 = r.machines.iter().map(|m| m.crashes).sum();
        assert!(crashes > 0);
        assert_eq!(
            r.readmissions, crashes,
            "every 1-epoch outage recovers within the run"
        );
        assert!(r.machines.iter().all(|m| !m.down_at_end));
    }
}
