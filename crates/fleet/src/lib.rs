//! # dike-fleet — fleet-scale multi-tenancy over independent machines
//!
//! Everything below the fleet layer simulates *one* machine. Real
//! consolidated deployments run thousands, with tenants' jobs arriving
//! at a dispatcher that must pick a machine for each. This crate models
//! that layer while preserving the workspace's two core contracts:
//!
//! * **Determinism** — a fleet run is a pure function of its
//!   [`FleetConfig`]. The dispatcher routes *before* simulation starts
//!   (an open-loop pre-pass over the merged arrival stream), so machines
//!   never communicate and the per-machine runs fan out over
//!   [`dike_util::Pool`] workers with byte-identical output at any
//!   `DIKE_THREADS`.
//! * **Paper metrics** — per-tenant fairness is the windowed Eqn-4
//!   reduction from [`dike_metrics::windowed`], computed over the merged
//!   fleet-wide span set; with one machine the roll-up equals the
//!   single-machine value exactly.
//!
//! Pipeline: [`config`] describes machines + tenants → [`dispatch`]
//! routes arrivals (least-loaded, vcore-normalised, home-affinity bonus)
//! → [`run`] fans the machines out and rolls the results up.

pub mod config;
pub mod dispatch;
pub mod failover;
pub mod run;

pub use config::{DispatchConfig, FleetConfig, TenantSpec};
pub use dispatch::{dispatch, home_machine, tenant_traces, DispatchPlan};
pub use failover::{FailoverConfig, FailoverMachineSummary, FailoverResult, FailoverTenantPoint};
pub use run::{FleetResult, FleetRunner, MachineSummary, TenantPoint, WINDOW_S, WINDOW_STEP_S};
