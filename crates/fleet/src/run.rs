//! Fan a dispatched fleet across pool workers and roll the results up.
//!
//! Each machine's open-system run is completely independent after the
//! dispatch pre-pass (see [`crate::dispatch`]), so the fleet fans out
//! over [`dike_util::Pool`]'s workers with `map_indexed` — results come
//! back in machine order regardless of worker count, which is what makes
//! the fleet JSON byte-identical at `DIKE_THREADS=1`, `2`, or `8`. The
//! roll-up then re-tags every thread span with its owning *tenant* (the
//! dispatcher records the event→tenant map) and scores fleet-wide
//! windowed fairness over the merged span set, exactly the way a single
//! machine's open run scores its own.

use crate::config::FleetConfig;
use crate::dispatch::{dispatch, home_machine, tenant_traces, DispatchPlan};
use dike_machine::{Machine, SimTime};
use dike_metrics::{
    fairness_summary, mean_sojourn, merge_spans, windowed_fairness, ThreadSpan, WindowPoint,
};
use dike_sched_core::{run_open_pooled, Scheduler, TimedSpawn};
use dike_scheduler::{Dike, SchedConfig};
use dike_util::{json_struct, Pool};
use std::sync::Mutex;

/// Sliding-window length for fleet fairness, in seconds (matches the
/// single-machine open experiment).
pub const WINDOW_S: f64 = 5.0;

/// Window step, in seconds.
pub const WINDOW_STEP_S: f64 = 2.5;

/// One machine's contribution to a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSummary {
    /// Machine index in the fleet.
    pub machine: u32,
    /// Threads dispatched to this machine.
    pub arrivals: u64,
    /// Threads that departed before the deadline.
    pub departures: u64,
    /// Whether every dispatched thread departed in time.
    pub completed: bool,
    /// Time of the machine's last departure (or the deadline).
    pub makespan_s: f64,
    /// Scheduling quanta executed.
    pub quanta: u64,
    /// Migrations applied by the policy.
    pub migrations: u64,
}

/// One tenant's fleet-wide roll-up.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPoint {
    /// Tenant index.
    pub tenant: u32,
    /// Tenant name.
    pub name: String,
    /// The tenant's home machine under the dispatch hash.
    pub home: u32,
    /// Threads the tenant offered.
    pub arrivals: u64,
    /// Threads that departed.
    pub departures: u64,
    /// Mean sojourn across the tenant's threads, unfinished charged to
    /// the fleet wall.
    pub mean_sojourn_s: f64,
}

/// A whole fleet run, rolled up.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// Scheduler label (every machine runs the same policy).
    pub scheduler: String,
    /// Per-machine summaries, in machine order.
    pub machines: Vec<MachineSummary>,
    /// Per-tenant roll-ups, in tenant order.
    pub tenants: Vec<TenantPoint>,
    /// Fleet-wide fairness-over-time series (Eqn 4 per window over the
    /// merged span set, grouped by tenant).
    pub windows: Vec<WindowPoint>,
    /// Mean of the per-window fleet fairness scores.
    pub mean_windowed_fairness: f64,
    /// Worst window.
    pub min_windowed_fairness: f64,
    /// Total threads dispatched across the fleet.
    pub total_arrivals: u64,
    /// Total departures.
    pub total_departures: u64,
    /// Whether every machine drained before its deadline.
    pub completed: bool,
    /// Latest machine makespan — the fleet wall clock.
    pub makespan_s: f64,
    /// Mean sojourn over every thread in the fleet.
    pub mean_sojourn_s: f64,
}

json_struct!(MachineSummary {
    machine,
    arrivals,
    departures,
    completed,
    makespan_s,
    quanta,
    migrations,
});
json_struct!(TenantPoint {
    tenant,
    name,
    home,
    arrivals,
    departures,
    mean_sojourn_s,
});
json_struct!(FleetResult {
    scheduler,
    machines,
    tenants,
    windows,
    mean_windowed_fairness,
    min_windowed_fairness,
    total_arrivals,
    total_departures,
    completed,
    makespan_s,
    mean_sojourn_s,
});

/// A reusable fleet: machines are built once and reset per run, so bench
/// iterations pay construction cost only on the first lap.
pub struct FleetRunner {
    pub(crate) cfg: FleetConfig,
    pub(crate) machines: Vec<Mutex<Machine>>,
}

impl FleetRunner {
    /// Build every machine in the fleet.
    pub fn new(cfg: FleetConfig) -> FleetRunner {
        let machines = cfg
            .machines
            .iter()
            .map(|mc| Mutex::new(Machine::new(mc.clone())))
            .collect();
        FleetRunner { cfg, machines }
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Materialise traces and the dispatch plan for this config.
    pub fn plan(&self) -> DispatchPlan {
        dispatch(&self.cfg, &tenant_traces(&self.cfg))
    }

    /// Run the whole fleet under the default Dike policy.
    pub fn run(&self, pool: &Pool) -> FleetResult {
        self.run_with(pool, "dike", |_| {
            Box::new(Dike::fixed(SchedConfig::DEFAULT))
        })
    }

    /// Run the whole fleet, constructing one scheduler per machine with
    /// `make` (called with the machine index). Machines fan out over the
    /// pool's workers; results are reassembled in machine order, so the
    /// output is identical at any worker count.
    pub fn run_with<F>(&self, pool: &Pool, label: &str, make: F) -> FleetResult
    where
        F: Fn(usize) -> Box<dyn Scheduler> + Sync,
    {
        let mut plan = self.plan();
        let deadline = SimTime::from_secs_f64(self.cfg.deadline_s);
        let n = self.machines.len();

        // Hand each machine its spawn plan by move: a fleet-sized plan is
        // millions of specs, and cloning it once more per run would cost
        // more than the dispatch pre-pass itself.
        let spawn_plans: Vec<Mutex<Option<Vec<TimedSpawn>>>> = plan
            .per_machine
            .drain(..)
            .map(|v| Mutex::new(Some(v)))
            .collect();

        // (summary, tenant-tagged spans) per machine, in machine order.
        let per_machine: Vec<(MachineSummary, Vec<ThreadSpan>)> = pool.map_indexed(n, |i| {
            let mut machine = self.machines[i].lock().expect("fleet machine lock");
            machine.reset();
            let mut sched = make(i);
            let spawns = spawn_plans[i]
                .lock()
                .expect("fleet plan lock")
                .take()
                .expect("each machine's plan is taken exactly once");
            let result = run_open_pooled(&mut machine, sched.as_mut(), deadline, spawns);
            let wall = result.wall.as_secs_f64();
            let spans: Vec<ThreadSpan> = result
                .threads
                .iter()
                .map(|t| ThreadSpan {
                    // The dispatcher tagged AppId with the global event
                    // index; translate to the owning tenant for roll-up.
                    app: plan.tenant_of_event[t.app as usize],
                    spawned_at: t.spawned_at.as_secs_f64(),
                    finished_at: t.finished_at.map(|f| f.as_secs_f64()),
                })
                .collect();
            let summary = MachineSummary {
                machine: i as u32,
                arrivals: spans.len() as u64,
                departures: spans.iter().filter(|s| s.finished_at.is_some()).count() as u64,
                completed: result.completed,
                makespan_s: wall,
                quanta: result.quanta,
                migrations: result.migrations,
            };
            (summary, spans)
        });

        let (machines, span_lists): (Vec<MachineSummary>, Vec<Vec<ThreadSpan>>) =
            per_machine.into_iter().unzip();
        let merged = merge_spans(&span_lists);
        let wall = machines.iter().map(|m| m.makespan_s).fold(0.0, f64::max);
        let windows = windowed_fairness(&merged, WINDOW_S, WINDOW_STEP_S, wall.max(WINDOW_S));
        let (mean_fair, min_fair) = fairness_summary(&windows);

        let n_tenants = self.cfg.tenants.len();
        let tenants: Vec<TenantPoint> = (0..n_tenants as u32)
            .map(|t| {
                let spans: Vec<&ThreadSpan> = merged.iter().filter(|s| s.app == t).collect();
                let departures = spans.iter().filter(|s| s.finished_at.is_some()).count() as u64;
                let sum: f64 = spans.iter().map(|s| s.sojourn(wall)).sum();
                TenantPoint {
                    tenant: t,
                    name: self.cfg.tenants[t as usize].name.clone(),
                    home: home_machine(t, n),
                    arrivals: spans.len() as u64,
                    departures,
                    mean_sojourn_s: if spans.is_empty() {
                        0.0
                    } else {
                        sum / spans.len() as f64
                    },
                }
            })
            .collect();

        FleetResult {
            scheduler: label.to_string(),
            total_arrivals: machines.iter().map(|m| m.arrivals).sum(),
            total_departures: machines.iter().map(|m| m.departures).sum(),
            completed: machines.iter().all(|m| m.completed),
            makespan_s: wall,
            mean_sojourn_s: mean_sojourn(&merged, wall),
            machines,
            tenants,
            windows,
            mean_windowed_fairness: mean_fair,
            min_windowed_fairness: min_fair,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_workloads::ArrivalConfig;

    fn tiny_fleet() -> FleetConfig {
        let mut cfg = FleetConfig::uniform(
            2,
            3,
            ArrivalConfig {
                mean_interarrival_ms: 1_000.0,
                horizon_ms: 5_000,
                threads_min: 1,
                threads_max: 2,
            },
            11,
        );
        cfg.scale = 0.01;
        cfg
    }

    #[test]
    fn fleet_run_is_deterministic_and_reusable() {
        let runner = FleetRunner::new(tiny_fleet());
        let pool = Pool::new(1);
        let a = runner.run(&pool);
        // Second lap on the *same* runner: machines reset, identical out.
        let b = runner.run(&pool);
        assert_eq!(a, b);
        assert!(a.total_arrivals > 0);
        assert_eq!(
            a.total_arrivals,
            a.machines.iter().map(|m| m.arrivals).sum::<u64>()
        );
        assert_eq!(
            a.total_arrivals,
            a.tenants.iter().map(|t| t.arrivals).sum::<u64>()
        );
    }

    #[test]
    fn fleet_drains_under_light_load() {
        let runner = FleetRunner::new(tiny_fleet());
        let r = runner.run(&Pool::new(1));
        assert!(r.completed, "light load should drain: {r:?}");
        assert_eq!(r.total_arrivals, r.total_departures);
        assert!(r.makespan_s > 0.0);
        assert!(r.mean_windowed_fairness > 0.0);
        assert!(r.min_windowed_fairness <= r.mean_windowed_fairness);
    }
}
