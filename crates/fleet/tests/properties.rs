//! Dispatcher and roll-up properties the fleet layer is contractually
//! bound to: routing is a pure function of the config, no arrival is
//! lost or duplicated, and the M=1 fleet degenerates *exactly* to a
//! single-machine open run.

use dike_fleet::{
    dispatch, tenant_traces, FailoverConfig, FleetConfig, FleetRunner, WINDOW_S, WINDOW_STEP_S,
};
use dike_machine::{FaultConfig, Machine, MachineFaultConfig};
use dike_metrics::{fairness_summary, windowed_fairness, ThreadSpan};
use dike_sched_core::run_open;
use dike_scheduler::{Dike, SchedConfig};
use dike_util::check::check;
use dike_util::Pool;
use dike_workloads::ArrivalConfig;

fn arrivals(mean_ms: f64, horizon_ms: u64) -> ArrivalConfig {
    ArrivalConfig {
        mean_interarrival_ms: mean_ms,
        horizon_ms,
        threads_min: 1,
        threads_max: 3,
    }
}

#[test]
fn routing_is_deterministic_for_a_fixed_seed() {
    check("routing_is_deterministic_for_a_fixed_seed", 12, |rng| {
        let m = rng.gen_range(1u64..12) as usize;
        let t = rng.gen_range(1u64..8) as usize;
        let seed = rng.gen_range(0u64..u64::MAX);
        let cfg = FleetConfig::uniform(m, t, arrivals(400.0, 8_000), seed);
        let traces = tenant_traces(&cfg);
        let a = dispatch(&cfg, &traces);
        let b = dispatch(&cfg, &tenant_traces(&cfg));
        assert_eq!(a, b, "same config must route identically");
        assert!(a.assignment.iter().all(|&i| (i as usize) < m));
    });
}

#[test]
fn every_arrival_lands_on_exactly_one_machine() {
    check("every_arrival_lands_on_exactly_one_machine", 12, |rng| {
        let m = rng.gen_range(1u64..12) as usize;
        let t = rng.gen_range(1u64..8) as usize;
        let seed = rng.gen_range(0u64..u64::MAX);
        let cfg = FleetConfig::uniform(m, t, arrivals(300.0, 8_000), seed);
        let traces = tenant_traces(&cfg);
        let plan = dispatch(&cfg, &traces);

        // Event conservation: one assignment per merged event…
        let total_events: usize = traces.iter().map(|tr| tr.events.len()).sum();
        assert_eq!(plan.merged.len(), total_events);
        assert_eq!(plan.assignment.len(), total_events);
        assert_eq!(plan.tenant_of_event.len(), total_events);

        // …and thread conservation: the per-machine plans partition the
        // offered threads exactly.
        let offered: usize = traces.iter().map(|tr| tr.num_threads()).sum();
        assert_eq!(plan.total_threads(), offered);

        // Every global event index appears on exactly one machine, with
        // exactly its event's thread count.
        let mut seen = vec![0u32; total_events];
        for (mi, spawns) in plan.per_machine.iter().enumerate() {
            for s in spawns {
                let g = s.spec.app.0 as usize;
                assert_eq!(
                    plan.assignment[g] as usize, mi,
                    "thread of event {g} on machine {mi}, assigned {}",
                    plan.assignment[g]
                );
                seen[g] += 1;
            }
        }
        for (g, ev) in plan.merged.iter().enumerate() {
            let nthreads = traces[ev.tenant as usize].events[ev.event as usize].nthreads;
            assert_eq!(seen[g], nthreads, "event {g} thread count mismatch");
        }
    });
}

/// With one machine the fleet's roll-up must equal a single-machine open
/// run exactly: same spans, same windows, same summary scalars — not
/// approximately, byte-for-byte.
#[test]
fn m1_rollup_equals_the_single_machine_value() {
    let mut cfg = FleetConfig::uniform(1, 3, arrivals(800.0, 6_000), 21);
    cfg.scale = 0.01;
    let runner = FleetRunner::new(cfg.clone());
    let fleet = runner.run(&Pool::new(1));

    // The reference: drive the dispatch plan's (single) machine plan
    // through the plain open-system driver and roll up by tenant by hand.
    let plan = dispatch(&cfg, &tenant_traces(&cfg));
    let mut machine = Machine::new(cfg.machines[0].clone());
    let mut sched = Dike::fixed(SchedConfig::DEFAULT);
    let deadline = dike_machine::SimTime::from_secs_f64(cfg.deadline_s);
    let result = run_open(
        &mut machine,
        &mut sched,
        deadline,
        plan.per_machine[0].clone(),
    );
    let wall = result.wall.as_secs_f64();
    let spans: Vec<ThreadSpan> = result
        .threads
        .iter()
        .map(|t| ThreadSpan {
            app: plan.tenant_of_event[t.app as usize],
            spawned_at: t.spawned_at.as_secs_f64(),
            finished_at: t.finished_at.map(|f| f.as_secs_f64()),
        })
        .collect();
    let windows = windowed_fairness(&spans, WINDOW_S, WINDOW_STEP_S, wall.max(WINDOW_S));
    let (mean_fair, min_fair) = fairness_summary(&windows);

    assert!(fleet.total_arrivals > 0);
    assert_eq!(fleet.total_arrivals as usize, spans.len());
    assert_eq!(fleet.windows, windows);
    assert_eq!(fleet.mean_windowed_fairness, mean_fair);
    assert_eq!(fleet.min_windowed_fairness, min_fair);
    assert_eq!(fleet.makespan_s, wall);
    let tenant_arrivals: u64 = fleet.tenants.iter().map(|t| t.arrivals).sum();
    assert_eq!(tenant_arrivals, fleet.total_arrivals);
}

/// A machine with an aggressive fault plan still drains its share: the
/// fleet layer inherits the single-machine graceful-degradation
/// guarantee, and the faulty machine's results stay deterministic.
#[test]
fn faulty_machines_still_drain_their_dispatch_share() {
    let mut cfg = FleetConfig::uniform(3, 4, arrivals(900.0, 5_000), 33);
    cfg.scale = 0.01;
    cfg.machines[1].faults = FaultConfig {
        dropout_rate: 0.3,
        corruption_rate: 0.1,
        stale_rate: 0.1,
        noise_amplitude: 0.2,
        migration_fail_rate: 0.2,
        migration_delay_rate: 0.2,
        migration_delay_quanta: 2,
        stall_rate: 0.05,
        stall_us: 500,
        seed: 99,
    };
    let runner = FleetRunner::new(cfg);
    let pool = Pool::new(1);
    let a = runner.run(&pool);
    let b = runner.run(&pool);
    assert_eq!(a, b, "faulty fleet must still be deterministic");
    assert!(a.completed, "light load should drain even under faults");
    assert_eq!(a.total_arrivals, a.total_departures);
}

/// The failover loop's contract under *arbitrary* machine-fault regimes:
/// every offered thread is accounted for exactly once
/// (`dispatched = drained + in_flight + lost`), the per-tenant roll-up
/// partitions the same totals, and the whole run — blind or health-aware
/// — is a pure function of its config.
#[test]
fn failover_conserves_and_is_deterministic_under_random_faults() {
    check(
        "failover_conserves_and_is_deterministic_under_random_faults",
        8,
        |rng| {
            let m = rng.gen_range(2u64..5) as usize;
            let t = rng.gen_range(2u64..5) as usize;
            let seed = rng.gen_range(0u64..1_000);
            let mut cfg = FleetConfig::uniform(m, t, arrivals(800.0, 5_000), seed);
            cfg.scale = 0.01;
            cfg.deadline_s = 60.0;
            let offered: u64 = tenant_traces(&cfg)
                .iter()
                .map(|tr| tr.num_threads() as u64)
                .sum();
            let runner = FleetRunner::new(cfg);

            let fo = FailoverConfig {
                failover: rng.gen_range(0u64..2) == 0,
                retry_budget: rng.gen_range(0u64..4) as u32,
                faults: MachineFaultConfig {
                    crash_rate: rng.gen_range(0u64..500) as f64 / 1_000.0,
                    recovery_epochs: rng.gen_range(0u64..4) as u32,
                    brownout_rate: rng.gen_range(0u64..500) as f64 / 1_000.0,
                    brownout_epochs: rng.gen_range(1u64..3) as u32,
                    brownout_stall_ms: 1_500,
                    seed: rng.gen_range(0u64..u64::MAX),
                },
                ..FailoverConfig::default()
            };

            let pool = Pool::new(1);
            let a = runner.run_failover(&pool, &fo);
            let b = runner.run_failover(&pool, &fo);
            assert_eq!(a, b, "failover run must be deterministic");

            // Conservation: nothing silently dropped, nothing counted
            // twice — at any fault level, with or without failover.
            assert!(a.ledger.holds(), "ledger imbalance: {:?}", a.ledger);
            assert_eq!(a.ledger.dispatched, offered, "ledger covers all offered");

            // The tenant roll-up partitions the same balance sheet.
            let t_offered: u64 = a.tenants.iter().map(|p| p.offered).sum();
            let t_drained: u64 = a.tenants.iter().map(|p| p.drained).sum();
            let t_lost: u64 = a.tenants.iter().map(|p| p.lost).sum();
            assert_eq!(t_offered, a.ledger.dispatched);
            assert_eq!(t_drained, a.ledger.drained);
            assert_eq!(t_lost, a.ledger.lost);

            // Machine summaries agree with the drained total.
            let m_drained: u64 = a.machines.iter().map(|s| s.drained).sum();
            assert_eq!(m_drained, a.ledger.drained);
        },
    );
}

/// With no faults configured, the epoch-driven loop is just a sliced
/// re-phrasing of the one-shot fleet: everything offered drains, nothing
/// is lost or quarantined, and the blind and health-aware dispatchers
/// agree with each other exactly (no fault ever differentiates them).
#[test]
fn zero_fault_failover_matches_blind_and_drains_everything() {
    check(
        "zero_fault_failover_matches_blind_and_drains_everything",
        6,
        |rng| {
            let m = rng.gen_range(1u64..4) as usize;
            let t = rng.gen_range(1u64..4) as usize;
            let seed = rng.gen_range(0u64..1_000);
            let mut cfg = FleetConfig::uniform(m, t, arrivals(900.0, 4_000), seed);
            cfg.scale = 0.01;
            cfg.deadline_s = 60.0;
            let runner = FleetRunner::new(cfg);
            let pool = Pool::new(1);

            let on = runner.run_failover(&pool, &FailoverConfig::default());
            let off = runner.run_failover(
                &pool,
                &FailoverConfig {
                    failover: false,
                    ..FailoverConfig::default()
                },
            );
            for r in [&on, &off] {
                assert!(r.ledger.holds());
                assert_eq!(r.ledger.lost, 0, "no faults, nothing lost");
                assert_eq!(r.ledger.in_flight, 0, "light load fully drains");
                assert_eq!(r.ledger.drained, r.ledger.dispatched);
                assert_eq!(r.quarantines, 0);
                assert_eq!(r.orphaned, 0);
            }
            // The scorers may route differently (backlog vs decayed-load
            // estimates), but fault-free both balance the same sheet.
            assert_eq!(on.ledger, off.ledger);
        },
    );
}
