//! A counting wrapper around the system allocator, for asserting
//! allocation behaviour in tests.
//!
//! The engine's steady-state claim — zero heap allocations per quantum
//! once the driver's scratch buffers have warmed up — is enforced by a
//! test, not by convention. Install [`CountingAllocator`] as the
//! `#[global_allocator]` of a test binary, snapshot
//! [`CountingAllocator::allocations`] around the region of interest, and
//! assert on the delta:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! let before = ALLOC.allocations();
//! hot_path();
//! assert_eq!(ALLOC.allocations() - before, 0);
//! ```
//!
//! Every `alloc`, `alloc_zeroed`, and growth `realloc` counts as one
//! allocation event; `dealloc` does not (freeing is not the behaviour the
//! steady-state claim restricts, and counting it would double-charge
//! temporaries). Counters use relaxed atomics: the tests that read them
//! are single-threaded over the region they measure, and the counter is a
//! diagnostic, not a synchronisation point.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocation events and bytes.
#[derive(Debug)]
pub struct CountingAllocator {
    allocations: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAllocator {
    /// A fresh counter (const so it can be a `static`).
    pub const fn new() -> Self {
        CountingAllocator {
            allocations: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Total allocation events (alloc + alloc_zeroed + realloc) so far.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Total bytes requested across all allocation events so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        CountingAllocator::new()
    }
}

// SAFETY: defers all allocation to `System`, which upholds the
// `GlobalAlloc` contract; the wrapper only bumps atomic counters.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}
