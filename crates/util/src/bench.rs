//! A monotonic-clock micro-benchmark runner.
//!
//! Replaces `criterion` for the workspace's `[[bench]] harness = false`
//! targets. The loop structure is the classic one: a warmup phase sizes
//! the per-sample iteration count so each sample lasts long enough to
//! swamp timer overhead, then a fixed number of timed samples is taken
//! and summarized as min/median/mean.
//!
//! ```ignore
//! use dike_util::bench::Bench;
//!
//! fn main() {
//!     let mut b = Bench::from_env();
//!     b.bench("selector/paper_scale", || run_selector_once());
//!     b.finish();
//! }
//! ```
//!
//! Environment overrides:
//!
//! * `DIKE_BENCH_SAMPLES=<n>` — timed samples per benchmark (default 20).
//! * `DIKE_BENCH_WARMUP_MS=<ms>` — warmup duration (default 300).
//! * `DIKE_BENCH_SAMPLE_MS=<ms>` — target duration per sample (default 100).
//!
//! A CLI argument acts as a substring filter over benchmark names, like
//! `cargo bench -- selector`.

use std::time::{Duration, Instant};

/// One benchmark's summary statistics, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name as passed to [`Bench::bench`].
    pub name: String,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Per-iteration time of the fastest sample.
    pub min_ns: f64,
    /// Per-iteration median across samples.
    pub median_ns: f64,
    /// Per-iteration mean across samples.
    pub mean_ns: f64,
}

/// The benchmark runner. Create with [`Bench::from_env`], call
/// [`Bench::bench`] per benchmark, then [`Bench::finish`].
pub struct Bench {
    samples: u32,
    warmup: Duration,
    target_sample: Duration,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Bench {
    /// A runner configured from the environment and CLI args (the first
    /// non-flag argument is a name filter; `--bench`/`--exact` flags that
    /// cargo forwards are ignored).
    pub fn from_env() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench {
            samples: env_u64("DIKE_BENCH_SAMPLES").map_or(20, |n| n.max(1) as u32),
            warmup: Duration::from_millis(env_u64("DIKE_BENCH_WARMUP_MS").unwrap_or(300)),
            target_sample: Duration::from_millis(env_u64("DIKE_BENCH_SAMPLE_MS").unwrap_or(100)),
            filter,
            results: Vec::new(),
        }
    }

    /// Time `f`, printing a one-line summary. Skipped (with a note) when a
    /// CLI filter is set and `name` doesn't contain it.
    pub fn bench<F, R>(&mut self, name: &str, mut f: F)
    where
        F: FnMut() -> R,
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }

        // Warmup doubles the iteration count until a batch exceeds the
        // warmup budget; that sizes iters_per_sample for the timed phase.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.warmup {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let target = self.target_sample.as_secs_f64();
                iters = ((target / per_iter).ceil() as u64).max(1);
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));

        let min_ns = per_iter_ns[0];
        let median_ns = per_iter_ns[per_iter_ns.len() / 2];
        let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let result = BenchResult {
            name: name.to_string(),
            iters_per_sample: iters,
            min_ns,
            median_ns,
            mean_ns,
        };
        println!(
            "{:<44} {:>12}/iter  median {:>12}  min {:>12}  ({} iters x {} samples)",
            result.name,
            fmt_ns(mean_ns),
            fmt_ns(median_ns),
            fmt_ns(min_ns),
            iters,
            self.samples,
        );
        self.results.push(result);
    }

    /// All results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print a closing line. Call at the end of `main`.
    pub fn finish(&self) {
        println!("ran {} benchmark(s)", self.results.len());
    }
}

/// Format nanoseconds with an adaptive unit, e.g. `1.234 ms`.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_runner() -> Bench {
        Bench {
            samples: 3,
            warmup: Duration::from_micros(100),
            target_sample: Duration::from_micros(100),
            filter: None,
            results: Vec::new(),
        }
    }

    #[test]
    fn records_a_result_with_sane_stats() {
        let mut b = tiny_runner();
        b.bench("noop_sum", || (0..100u64).sum::<u64>());
        assert_eq!(b.results().len(), 1);
        let r = &b.results()[0];
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let mut b = tiny_runner();
        b.filter = Some("selector".to_string());
        b.bench("machine/tick", || 1u64);
        b.bench("selector/pairs", || 1u64);
        assert_eq!(b.results().len(), 1);
        assert_eq!(b.results()[0].name, "selector/pairs");
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with("s"));
    }
}
