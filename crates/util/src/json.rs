//! Derive-free JSON: a writer-based serializer and a recursive-descent
//! parser behind two small traits.
//!
//! The output shape matches what the workspace's former `serde` derives
//! produced, so recorded fixtures and figure emitters keep their format:
//!
//! * structs → objects with fields in declaration order;
//! * newtype ids (`VCoreId(u32)`) → the bare inner value;
//! * unit enum variants → `"VariantName"`;
//! * newtype enum variants → `{"VariantName": payload}` (externally tagged);
//! * `Option` → `null` / the bare payload; tuples → fixed-length arrays.
//!
//! Implementations for concrete types are written by hand or through the
//! `macro_rules!` helpers [`json_struct!`](crate::json_struct),
//! [`json_enum!`](crate::json_enum) and
//! [`json_newtype!`](crate::json_newtype) — declarative expansion only, no
//! proc-macro reflection, and the expansion is readable in this file's
//! terms.

use std::collections::VecDeque;
use std::fmt;

/// A parsed or buildable JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(Num),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved (serde_json's default maps
    /// preserve nothing we rely on — field order here matches declaration
    /// order so output is reproducible byte for byte).
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept in its widest exact representation so 64-bit seeds
/// survive round trips that `f64` would corrupt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Anything with a fraction or exponent.
    F(f64),
}

impl Num {
    /// The value as `f64` (lossy for large integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Num::U(u) => u as f64,
            Num::I(i) => i as f64,
            Num::F(f) => f,
        }
    }

    /// The value as `u64`, if exactly representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Num::U(u) => Some(u),
            Num::I(i) => u64::try_from(i).ok(),
            Num::F(f) => {
                if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 {
                    Some(f as u64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as `i64`, if exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Num::U(u) => i64::try_from(u).ok(),
            Num::I(i) => Some(i),
            Num::F(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }
}

/// A serialization or parse error with byte position (parse only).
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset in the input for parse errors; 0 for shape errors.
    pub pos: usize,
}

impl JsonError {
    /// A shape/decoding error (no input position).
    pub fn shape(msg: impl Into<String>) -> Self {
        JsonError {
            msg: msg.into(),
            pos: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Render compactly (no whitespace), serde_json style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append the compact rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup, as a decode error when absent or not an object.
    pub fn field(&self, name: &str) -> Result<&Value, JsonError> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::shape(format!("missing field `{name}`"))),
            other => Err(JsonError::shape(format!(
                "expected object with field `{name}`, found {}",
                kind_name(other)
            ))),
        }
    }

    /// The array items, or a decode error.
    pub fn items(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(JsonError::shape(format!(
                "expected array, found {}",
                kind_name(other)
            ))),
        }
    }
}

fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Num(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

fn write_num(n: Num, out: &mut String) {
    use fmt::Write as _;
    match n {
        Num::U(u) => {
            let _ = write!(out, "{u}");
        }
        Num::I(i) => {
            let _ = write!(out, "{i}");
        }
        Num::F(f) => {
            if !f.is_finite() {
                // serde_json writes null for non-finite floats.
                out.push_str("null");
                return;
            }
            let start = out.len();
            let _ = write!(out, "{f}");
            // Rust's shortest-round-trip formatting prints integral floats
            // without a fractional part; serde_json prints `1.0`. Keep the
            // fixture-visible shape.
            if !out[start..].contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Trailing whitespace is allowed; trailing content
/// is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            msg: msg.into(),
            pos: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal, expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-consume as UTF-8: step back and take the full char.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            self.pos += 1;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number token is ASCII");
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        let num = if is_float {
            Num::F(text.parse::<f64>().map_err(|e| self.err(e.to_string()))?)
        } else if let Some(stripped) = text.strip_prefix('-') {
            match stripped.parse::<i64>() {
                Ok(i) => Num::I(-i),
                Err(_) => Num::F(text.parse::<f64>().map_err(|e| self.err(e.to_string()))?),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Num::U(u),
                Err(_) => Num::F(text.parse::<f64>().map_err(|e| self.err(e.to_string()))?),
            }
        };
        Ok(Value::Num(num))
    }
}

/// Serialize to a [`Value`] (and through it, to text).
pub trait ToJson {
    /// The value tree for this object.
    fn to_json_value(&self) -> Value;

    /// Compact rendering, equivalent to `serde_json::to_string`.
    fn to_json(&self) -> String {
        self.to_json_value().render()
    }
}

/// Deserialize from a [`Value`] (and through it, from text).
pub trait FromJson: Sized {
    /// Decode from a parsed value tree.
    fn from_json_value(v: &Value) -> Result<Self, JsonError>;

    /// Parse and decode, equivalent to `serde_json::from_str`.
    fn from_json(s: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&parse(s)?)
    }
}

/// Compact serialization — drop-in for `serde_json::to_string(&v).unwrap()`.
pub fn to_string<T: ToJson + ?Sized>(v: &T) -> String {
    v.to_json()
}

/// Parse and decode — drop-in for `serde_json::from_str`.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, JsonError> {
    T::from_json(s)
}

// ---- primitive impls --------------------------------------------------

impl ToJson for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(JsonError::shape(format!(
                "expected bool, found {}",
                kind_name(other)
            ))),
        }
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json_value(&self) -> Value {
                Value::Num(Num::U(*self as u64))
            }
        }
        impl FromJson for $t {
            fn from_json_value(v: &Value) -> Result<Self, JsonError> {
                match v {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| JsonError::shape(concat!(
                            "number out of range for ", stringify!($t)
                        ))),
                    other => Err(JsonError::shape(format!(
                        "expected number, found {}", kind_name(other)
                    ))),
                }
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json_value(&self) -> Value {
                let i = *self as i64;
                if i < 0 {
                    Value::Num(Num::I(i))
                } else {
                    Value::Num(Num::U(i as u64))
                }
            }
        }
        impl FromJson for $t {
            fn from_json_value(v: &Value) -> Result<Self, JsonError> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| JsonError::shape(concat!(
                            "number out of range for ", stringify!($t)
                        ))),
                    other => Err(JsonError::shape(format!(
                        "expected number, found {}", kind_name(other)
                    ))),
                }
            }
        }
    )*};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json_value(&self) -> Value {
        Value::Num(Num::F(*self))
    }
}

impl FromJson for f64 {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            other => Err(JsonError::shape(format!(
                "expected number, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl ToJson for f32 {
    fn to_json_value(&self) -> Value {
        Value::Num(Num::F(*self as f64))
    }
}

impl FromJson for f32 {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        f64::from_json_value(v).map(|f| f as f32)
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(JsonError::shape(format!(
                "expected string, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_json_value(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        v.items()?.iter().map(T::from_json_value).collect()
    }
}

impl<T: ToJson> ToJson for VecDeque<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: FromJson> FromJson for VecDeque<T> {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        v.items()?.iter().map(T::from_json_value).collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let items = v.items()?;
        if items.len() != 2 {
            return Err(JsonError::shape(format!(
                "expected 2-element array, found {} elements",
                items.len()
            )));
        }
        Ok((
            A::from_json_value(&items[0])?,
            B::from_json_value(&items[1])?,
        ))
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

// ---- impl-writing macros ----------------------------------------------

/// Implement [`ToJson`]/[`FromJson`] for a plain struct, serializing the
/// listed fields in order as a JSON object — the same shape
/// `#[derive(Serialize, Deserialize)]` produced.
#[macro_export]
macro_rules! json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json_value(&self) -> $crate::json::Value {
                $crate::json::Value::Object(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json_value(&self.$field),
                    ),)+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json_value(
                v: &$crate::json::Value,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $($field: $crate::json::FromJson::from_json_value(
                        v.field(stringify!($field))?,
                    )?,)+
                })
            }
        }
    };
}

/// Implement [`ToJson`]/[`FromJson`] for a tuple newtype (`VCoreId(u32)`),
/// serializing as the bare inner value — serde's newtype behaviour.
#[macro_export]
macro_rules! json_newtype {
    ($($ty:ty),+ $(,)?) => {$(
        impl $crate::json::ToJson for $ty {
            fn to_json_value(&self) -> $crate::json::Value {
                $crate::json::ToJson::to_json_value(&self.0)
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json_value(
                v: &$crate::json::Value,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok(Self($crate::json::FromJson::from_json_value(v)?))
            }
        }
    )+};
}

/// Implement [`ToJson`]/[`FromJson`] for an enum of unit and/or newtype
/// variants, externally tagged like serde: unit variants as
/// `"VariantName"`, newtype variants as `{"VariantName": payload}`.
///
/// ```ignore
/// json_enum!(Placement { Interleaved, AppContiguous } { Random(u64) });
/// json_enum!(AppClass { Memory, Compute, Communication } {});
/// ```
#[macro_export]
macro_rules! json_enum {
    ($ty:ident { $($unit:ident),* $(,)? } { $($nt:ident($ntty:ty)),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json_value(&self) -> $crate::json::Value {
                match self {
                    $(Self::$unit =>
                        $crate::json::Value::Str(stringify!($unit).to_string()),)*
                    $(Self::$nt(payload) => $crate::json::Value::Object(vec![(
                        stringify!($nt).to_string(),
                        $crate::json::ToJson::to_json_value(payload),
                    )]),)*
                }
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json_value(
                v: &$crate::json::Value,
            ) -> Result<Self, $crate::json::JsonError> {
                match v {
                    #[allow(unused_variables)]
                    $crate::json::Value::Str(s) => match s.as_str() {
                        $(stringify!($unit) => Ok(Self::$unit),)*
                        other => Err($crate::json::JsonError::shape(format!(
                            "unknown {} variant `{}`",
                            stringify!($ty),
                            other
                        ))),
                    },
                    #[allow(unused_variables)]
                    $crate::json::Value::Object(fields) if fields.len() == 1 => {
                        let (tag, payload) = &fields[0];
                        match tag.as_str() {
                            $(stringify!($nt) => Ok(Self::$nt(
                                <$ntty as $crate::json::FromJson>::from_json_value(
                                    payload,
                                )?,
                            )),)*
                            other => Err($crate::json::JsonError::shape(format!(
                                "unknown {} variant `{}`",
                                stringify!($ty),
                                other
                            ))),
                        }
                    }
                    _ => Err($crate::json::JsonError::shape(format!(
                        "invalid shape for enum {}",
                        stringify!($ty)
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&42u64), "42");
        assert_eq!(to_string(&-7i64), "-7");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string(&"hi".to_string()), "\"hi\"");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(from_str::<u32>("12").unwrap(), 12);
        assert_eq!(from_str::<f64>("2.25").unwrap(), 2.25);
        assert_eq!(from_str::<String>("\"x\"").unwrap(), "x");
    }

    #[test]
    fn integral_floats_keep_their_point() {
        // serde_json's shape: floats always show a fraction or exponent.
        assert_eq!(to_string(&1.0f64), "1.0");
        assert_eq!(to_string(&0.0f64), "0.0");
        assert_eq!(to_string(&-3.0f64), "-3.0");
        assert_eq!(to_string(&4e20f64), "400000000000000000000.0");
        assert_eq!(from_str::<f64>("4e20").unwrap(), 4e20);
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
    }

    #[test]
    fn large_u64_survives_round_trip() {
        let big = u64::MAX - 1;
        assert_eq!(from_str::<u64>(&to_string(&big)).unwrap(), big);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1.0, 2.0], vec![3.5]];
        let s = to_string(&v);
        assert_eq!(s, "[[1.0,2.0],[3.5]]");
        assert_eq!(from_str::<Vec<Vec<f64>>>(&s).unwrap(), v);

        let opt_none: Option<u32> = None;
        assert_eq!(to_string(&opt_none), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));

        let pairs: Vec<(f64, f64)> = vec![(0.5, 1.0), (1.5, 2.0)];
        let s = to_string(&pairs);
        assert_eq!(s, "[[0.5,1.0],[1.5,2.0]]");
        assert_eq!(from_str::<Vec<(f64, f64)>>(&s).unwrap(), pairs);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}√";
        let rendered = to_string(&s.to_string());
        assert_eq!(from_str::<String>(&rendered).unwrap(), s);
        // \u escapes incl. surrogate pairs parse.
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("-").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.field("a").unwrap().items().unwrap().len(), 2);
        assert_eq!(*v.field("b").unwrap(), Value::Null);
    }

    #[test]
    fn shape_errors_are_descriptive() {
        let e = from_str::<u32>("\"nope\"").unwrap_err();
        assert!(e.msg.contains("expected number"), "{e}");
        let v = parse("{\"a\":1}").unwrap();
        assert!(v.field("missing").is_err());
    }

    // Macro smoke tests on local types.
    #[derive(Debug, PartialEq)]
    struct P {
        x: u32,
        y: f64,
        name: String,
    }
    json_struct!(P { x, y, name });

    #[derive(Debug, PartialEq)]
    struct Id(pub u32);
    json_newtype!(Id);

    #[derive(Debug, PartialEq)]
    enum E {
        A,
        B,
        W(u64),
    }
    json_enum!(E { A, B } { W(u64) });

    #[test]
    fn macro_impls_match_serde_shapes() {
        let p = P {
            x: 3,
            y: 1.0,
            name: "n".into(),
        };
        let s = to_string(&p);
        assert_eq!(s, "{\"x\":3,\"y\":1.0,\"name\":\"n\"}");
        assert_eq!(from_str::<P>(&s).unwrap(), p);

        assert_eq!(to_string(&Id(9)), "9");
        assert_eq!(from_str::<Id>("9").unwrap(), Id(9));

        assert_eq!(to_string(&E::A), "\"A\"");
        assert_eq!(to_string(&E::W(5)), "{\"W\":5}");
        for e in [E::A, E::B, E::W(123)] {
            assert_eq!(from_str::<E>(&to_string(&e)).unwrap(), e);
        }
        assert!(from_str::<E>("\"C\"").is_err());
        assert!(from_str::<E>("{\"Z\":1}").is_err());
    }
}
