//! A std-only work-sharing thread pool for embarrassingly parallel maps.
//!
//! The experiment layer runs dozens of independent (workload × scheduler ×
//! config) cells per figure; this module shards such index spaces across
//! scoped `std::thread` workers while keeping the *output* order exactly
//! the input order, so a parallel driver can be byte-identical to the
//! serial one.
//!
//! Design:
//!
//! * **Work sharing, not work stealing.** Workers repeatedly claim the next
//!   unclaimed index from a shared [`AtomicUsize`]; cells vary wildly in
//!   cost (a saturated UM workload simulates far longer than a balanced
//!   one), and a single atomic counter load-balances them optimally with
//!   no per-item channel traffic.
//! * **Deterministic result ordering.** Each claimed index writes into its
//!   own pre-allocated slot, so `map_indexed(n, f)[i] == f(i)` regardless
//!   of which worker ran it or in what order items finished.
//! * **Graceful single-thread fallback.** With one worker (or one item)
//!   the map degenerates to a plain serial loop on the calling thread — no
//!   threads spawned, no atomics touched — so `DIKE_THREADS=1` is exactly
//!   the pre-pool code path.
//! * **Panic propagation.** A panicking worker aborts the scope and the
//!   panic resurfaces on the caller, as with `std::thread::scope`.
//!
//! The worker count comes from the `DIKE_THREADS` environment variable
//! when set (minimum 1), else from [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A pool configuration: just the worker count. Construction is free; the
/// actual OS threads are scoped to each [`Pool::map_indexed`] call, so a
/// `Pool` can be stored in configs and cloned freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with an explicit worker count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized from the environment: `DIKE_THREADS` if set and valid,
    /// else the machine's available parallelism.
    pub fn from_env() -> Self {
        Pool::new(env_threads().unwrap_or_else(default_threads))
    }

    /// The worker count this pool will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every index in `0..n`, in parallel, returning results
    /// in index order. `f` must be `Sync` because multiple workers call it
    /// concurrently.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let value = f(i);
                        *slots[i].lock().expect("pool slot poisoned") = Some(value);
                    })
                })
                .collect();
            // Join explicitly so a worker's panic payload resurfaces
            // verbatim on the caller (the scope's implicit join would
            // replace it with "a scoped thread panicked").
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("pool slot poisoned")
                    .expect("every index claimed exactly once")
            })
            .collect()
    }

    /// Apply `f` to every element of a slice, in parallel, preserving
    /// order.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.map_indexed(items.len(), |i| f(&items[i]))
    }
}

/// [`Pool::map_indexed`] on the environment-sized pool.
pub fn map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    Pool::from_env().map_indexed(n, f)
}

/// [`Pool::map`] on the environment-sized pool.
pub fn map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    Pool::from_env().map(items, f)
}

/// The worker count an environment-sized pool would use.
pub fn num_threads() -> usize {
    Pool::from_env().threads()
}

/// Parse a `DIKE_THREADS`-style override. Returns `None` for unset, empty,
/// unparsable or zero values (zero means "pick for me").
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw?.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

fn env_threads() -> Option<usize> {
    let raw = std::env::var("DIKE_THREADS").ok();
    parse_threads(raw.as_deref())
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let out = pool.map_indexed(37, |i| i * i);
            assert_eq!(
                out,
                (0..37).map(|i| i * i).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Early indices take much longer than late ones: a naive
        // completion-order collect would reverse them.
        let pool = Pool::new(4);
        let out = pool.map_indexed(16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn map_over_slice_preserves_order() {
        let items = vec!["a", "bb", "ccc"];
        let out = Pool::new(2).map(&items, |s| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(8);
        assert_eq!(pool.map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map_indexed(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn thread_count_is_clamped_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(5).threads(), 5);
    }

    #[test]
    fn parse_threads_rejects_nonsense() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("abc")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some(" 4 ")), Some(4));
        assert_eq!(parse_threads(Some("16")), Some(16));
    }

    #[test]
    fn parallel_matches_serial_for_stateful_per_item_work() {
        // Each item seeds its own RNG from the index, so results cannot
        // depend on which worker ran it.
        let work = |i: usize| {
            let mut rng = crate::Pcg32::seed_from_u64(i as u64);
            (0..100).map(|_| rng.gen_range(0u64..1000)).sum::<u64>()
        };
        let serial: Vec<u64> = (0..24).map(work).collect();
        for threads in [2, 8] {
            assert_eq!(Pool::new(threads).map_indexed(24, work), serial);
        }
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panic_propagates() {
        Pool::new(2).map_indexed(8, |i| {
            if i == 3 {
                panic!("worker boom");
            }
            i
        });
    }
}
