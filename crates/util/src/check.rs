//! A seeded property-testing harness.
//!
//! Replaces the workspace's former `proptest!` blocks with the part of
//! property testing the tests actually relied on: many randomized cases
//! per property, full determinism, and an exactly reproducible failure.
//! There is no shrinking — instead the harness prints the failing case
//! seed, and `DIKE_CHECK_SEED` re-runs that single case under a debugger
//! or with extra logging.
//!
//! ```ignore
//! use dike_util::check::check;
//!
//! check("sum_is_commutative", 64, |rng| {
//!     let a = rng.gen_range(0u64..1000);
//!     let b = rng.gen_range(0u64..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Environment overrides:
//!
//! * `DIKE_CHECK_CASES=<n>` — run `n` cases per property instead of the
//!   count passed at the call site (global stress/smoke dial).
//! * `DIKE_CHECK_SEED=<seed>` — run exactly one case, generated from this
//!   seed; use the seed printed by a failure report.

use crate::rng::{splitmix64, Pcg32};

/// The base stream all properties derive their case seeds from. Fixed so
/// a failure seed stays valid across machines and runs.
const CHECK_STREAM_SEED: u64 = 0xD1CE_0000_2016_0001;

/// Run `f` against `cases` independently-seeded inputs.
///
/// Each case gets a fresh [`Pcg32`] derived from the property `name` and
/// the case index, so adding or reordering properties in a file never
/// changes the inputs another property sees. On panic, the case seed is
/// printed in a `DIKE_CHECK_SEED=... ` form that reproduces the exact
/// failing input.
pub fn check<F>(name: &str, cases: u32, mut f: F)
where
    F: FnMut(&mut Pcg32),
{
    if let Some(seed) = env_u64("DIKE_CHECK_SEED") {
        let guard = FailureReport { name, seed };
        let mut rng = Pcg32::seed_from_u64(seed);
        f(&mut rng);
        std::mem::forget(guard);
        return;
    }

    let cases = match env_u64("DIKE_CHECK_CASES") {
        Some(n) => n.min(u32::MAX as u64) as u32,
        None => cases,
    };

    // Derive a per-property stream from the name so every property sees
    // different data even at the same case index.
    let mut s = CHECK_STREAM_SEED;
    for b in name.bytes() {
        s = s.wrapping_mul(0x100).wrapping_add(b as u64);
        splitmix64(&mut s);
    }

    for case in 0..cases {
        let mut case_state = s.wrapping_add(case as u64);
        let seed = splitmix64(&mut case_state);
        let guard = FailureReport { name, seed };
        let mut rng = Pcg32::seed_from_u64(seed);
        f(&mut rng);
        std::mem::forget(guard);
    }
}

/// Prints the reproduction line if dropped while panicking.
///
/// A Drop guard (rather than `catch_unwind`) keeps `f` free of
/// `UnwindSafe` bounds and preserves the original panic message/location.
struct FailureReport<'a> {
    name: &'a str,
    seed: u64,
}

impl Drop for FailureReport<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "property `{}` failed; reproduce with DIKE_CHECK_SEED={} cargo test {}",
                self.name, self.seed, self.name
            );
        }
    }
}

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_case_count() {
        let mut n = 0u32;
        check("count_cases", 17, |_rng| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    fn cases_are_deterministic_and_distinct() {
        let mut first: Vec<u64> = Vec::new();
        check("det_stream", 8, |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        check("det_stream", 8, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second, "same property must see the same inputs");
        let mut dedup = first.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), first.len(), "cases must differ");
    }

    #[test]
    fn different_properties_see_different_inputs() {
        let mut a: Vec<u64> = Vec::new();
        check("prop_a", 4, |rng| a.push(rng.next_u64()));
        let mut b: Vec<u64> = Vec::new();
        check("prop_b", 4, |rng| b.push(rng.next_u64()));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn panics_propagate() {
        check("boom", 4, |_rng| panic!("deliberate"));
    }
}
