//! A seeded property-testing harness.
//!
//! Replaces the workspace's former `proptest!` blocks with the parts of
//! property testing the tests actually rely on: many randomized cases per
//! property, full determinism, an exactly reproducible failure, and a
//! *shrunk* counterexample. On failure the harness does not stop at the
//! first failing input: it greedily bisects the failing case's draws
//! toward their range minimums (see [`crate::rng`]'s shrink shift) while
//! the property keeps failing, then reports the minimized draws plus a
//! `DIKE_CHECK_SEED=… DIKE_CHECK_SHRINK=…` line that reproduces the
//! minimized case exactly.
//!
//! ```ignore
//! use dike_util::check::check;
//!
//! check("sum_is_commutative", 64, |rng| {
//!     let a = rng.gen_range(0u64..1000);
//!     let b = rng.gen_range(0u64..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Environment overrides:
//!
//! * `DIKE_CHECK_CASES=<n>` — run `n` cases per property instead of the
//!   count passed at the call site (global stress/smoke dial).
//! * `DIKE_CHECK_SEED=<seed>` — run exactly one case, generated from this
//!   seed; use the seed printed by a failure report.
//! * `DIKE_CHECK_SHRINK=<shift>` — with `DIKE_CHECK_SEED`, replay the
//!   case at the reported shrink level instead of the raw draws.
//!
//! ## How shrinking works
//!
//! Classic shrinkers mutate a recorded value tree; this harness exploits
//! that every sample funnels through two [`crate::Pcg32`] methods
//! (`bounded_u64` for integers, `gen_f64` for floats). A thread-local
//! *shrink shift* `s` makes each funnel return its value shifted toward
//! the range minimum (`v >> s`, or `v / 2^s` for floats) while consuming
//! exactly the raw draws of the unshrunk run — so the case keeps its
//! shape (same number of draws, same branching on draw count) and only
//! its magnitudes shrink. The harness raises `s` while the property still
//! fails and stops at the last failing level: a greedy bisection of every
//! drawn value at once, converging in at most 64 replays.

use crate::rng::{self, splitmix64, Pcg32};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The base stream all properties derive their case seeds from. Fixed so
/// a failure seed stays valid across machines and runs.
const CHECK_STREAM_SEED: u64 = 0xD1CE_0000_2016_0001;

/// Run `f` against `cases` independently-seeded inputs.
///
/// Each case gets a fresh [`Pcg32`] derived from the property `name` and
/// the case index, so adding or reordering properties in a file never
/// changes the inputs another property sees. On panic, the failing case
/// is shrunk (see the module docs) and the minimized draws are printed
/// with a `DIKE_CHECK_SEED=… DIKE_CHECK_SHRINK=…` reproduction line; the
/// minimized run's panic is then propagated.
pub fn check<F>(name: &str, cases: u32, mut f: F)
where
    F: FnMut(&mut Pcg32),
{
    if let Some(seed) = env_u64("DIKE_CHECK_SEED") {
        let shift = env_u64("DIKE_CHECK_SHRINK").unwrap_or(0) as u32;
        let guard = FailureReport { name, seed, shift };
        rng::set_shrink_shift(shift);
        let mut case_rng = Pcg32::seed_from_u64(seed);
        f(&mut case_rng);
        rng::set_shrink_shift(0);
        std::mem::forget(guard);
        return;
    }

    let cases = match env_u64("DIKE_CHECK_CASES") {
        Some(n) => n.min(u32::MAX as u64) as u32,
        None => cases,
    };

    // Derive a per-property stream from the name so every property sees
    // different data even at the same case index.
    let mut s = CHECK_STREAM_SEED;
    for b in name.bytes() {
        s = s.wrapping_mul(0x100).wrapping_add(b as u64);
        splitmix64(&mut s);
    }

    for case in 0..cases {
        let mut case_state = s.wrapping_add(case as u64);
        let seed = splitmix64(&mut case_state);
        if let Err(payload) = run_case(&mut f, seed, 0) {
            shrink_and_report(name, seed, &mut f, payload);
        }
    }
}

/// Run one case at a shrink level, catching any panic.
fn run_case<F>(f: &mut F, seed: u64, shift: u32) -> Result<(), Box<dyn std::any::Any + Send>>
where
    F: FnMut(&mut Pcg32),
{
    rng::set_shrink_shift(shift);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut case_rng = Pcg32::seed_from_u64(seed);
        f(&mut case_rng);
    }));
    rng::set_shrink_shift(0);
    outcome
}

/// Greedily shrink the failing case, print the minimized counterexample,
/// and propagate the (minimized) panic.
fn shrink_and_report<F>(
    name: &str,
    seed: u64,
    f: &mut F,
    original: Box<dyn std::any::Any + Send>,
) -> !
where
    F: FnMut(&mut Pcg32),
{
    // Raise the shift while the property still fails; stop at the first
    // level that passes (greedy bisection of every draw at once).
    let mut best = 0u32;
    for shift in 1..=63 {
        if run_case(f, seed, shift).is_err() {
            best = shift;
        } else {
            break;
        }
    }

    // Replay the minimized case once more with the draw log on, to print
    // the actual counterexample values.
    rng::set_shrink_shift(best);
    rng::start_draw_log();
    let minimized = catch_unwind(AssertUnwindSafe(|| {
        let mut case_rng = Pcg32::seed_from_u64(seed);
        f(&mut case_rng);
    }));
    let draws = rng::take_draw_log();
    rng::set_shrink_shift(0);

    eprintln!(
        "property `{name}` failed; minimized counterexample (shrink level {best}, {} draws):",
        draws.len()
    );
    for (i, d) in draws.iter().enumerate() {
        eprintln!("  draw[{i}] = {d}");
    }
    eprintln!("reproduce with DIKE_CHECK_SEED={seed} DIKE_CHECK_SHRINK={best} cargo test {name}");

    match minimized {
        Err(payload) => resume_unwind(payload),
        // A flaky property (fails, then passes on the identical replay)
        // cannot happen with a deterministic generator, but if `f` keeps
        // external state, fall back to the original failure.
        Ok(()) => resume_unwind(original),
    }
}

/// Prints the reproduction line if dropped while panicking (the
/// `DIKE_CHECK_SEED` replay path, which runs `f` uncaught so a debugger
/// sees the original panic site).
struct FailureReport<'a> {
    name: &'a str,
    seed: u64,
    shift: u32,
}

impl Drop for FailureReport<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            rng::set_shrink_shift(0);
            eprintln!(
                "property `{}` failed; reproduce with DIKE_CHECK_SEED={} DIKE_CHECK_SHRINK={} cargo test {}",
                self.name, self.seed, self.shift, self.name
            );
        }
    }
}

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn runs_requested_case_count() {
        let mut n = 0u32;
        check("count_cases", 17, |_rng| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    fn cases_are_deterministic_and_distinct() {
        let mut first: Vec<u64> = Vec::new();
        check("det_stream", 8, |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        check("det_stream", 8, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second, "same property must see the same inputs");
        let mut dedup = first.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), first.len(), "cases must differ");
    }

    #[test]
    fn different_properties_see_different_inputs() {
        let mut a: Vec<u64> = Vec::new();
        check("prop_a", 4, |rng| a.push(rng.next_u64()));
        let mut b: Vec<u64> = Vec::new();
        check("prop_b", 4, |rng| b.push(rng.next_u64()));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn panics_propagate() {
        check("boom", 4, |_rng| panic!("deliberate"));
    }

    /// The known-failure shrink test: a property failing whenever a draw
    /// from `0..1000` is ≥ 10 must be minimized to a value just past the
    /// threshold — `v >> s` halves per level, so the last failing level
    /// lands in `[10, 19]`.
    #[test]
    fn known_failure_shrinks_to_just_past_the_threshold() {
        let last_seen = Cell::new(u64::MAX);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            check("shrink_known_failure", 64, |rng| {
                let v = rng.gen_range(0u64..1000);
                last_seen.set(v);
                assert!(v < 10, "too big: {v}");
            });
        }));
        assert!(outcome.is_err(), "property must fail somewhere in 64 cases");
        let v = last_seen.get();
        assert!(
            (10..20).contains(&v),
            "minimized value {v} should sit just past the failing threshold"
        );
    }

    /// Shrinking preserves the case's *shape*: the same number of draws
    /// is consumed at every shrink level, so multi-draw properties keep
    /// their structure while values shrink.
    #[test]
    fn shrinking_keeps_the_draw_count_stable() {
        let draws_in_failing_run = Cell::new(0usize);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            check("shrink_draw_count", 32, |rng| {
                let mut n = 0usize;
                let a = rng.gen_range(0u64..100);
                n += 1;
                let b = rng.gen_range(0u64..100);
                n += 1;
                draws_in_failing_run.set(n);
                assert!(a + b < 5, "sum too big: {a} + {b}");
            });
        }));
        assert!(outcome.is_err());
        assert_eq!(draws_in_failing_run.get(), 2);
    }

    /// The minimized panic (not the original) is what propagates, so
    /// `should_panic(expected = …)` matches the shrunk values.
    #[test]
    #[should_panic(expected = "too big")]
    fn minimized_panic_propagates() {
        check("shrink_propagates", 16, |rng| {
            let v = rng.gen_range(0u64..1_000_000);
            assert!(v < 3, "too big: {v}");
        });
    }
}
