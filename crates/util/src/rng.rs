//! Deterministic pseudo-randomness: SplitMix64 seeding and a PCG32 stream.
//!
//! The simulated machine's determinism claim extends to everything seeded:
//! the same seed must produce the same workload, placement and schedule on
//! every platform and every build. The generators here are fully specified
//! by this file — there is no platform entropy, no `Hash`-based iteration
//! order, and no dependency whose internals could shift under us. The
//! output streams are frozen by golden tests in `tests/properties.rs`.
//!
//! * [`splitmix64`] — the standard SplitMix64 finalizer, used to expand a
//!   single `u64` seed into independent initial states.
//! * [`Pcg32`] — PCG-XSH-RR 64/32 (O'Neill 2014): 64-bit LCG state, 32-bit
//!   output, period 2^64 per stream.
//! * [`SliceRandom`] — Fisher–Yates `shuffle`, uniform `choose`, and
//!   without-replacement `sample` on slices.

use std::cell::{Cell, RefCell};

thread_local! {
    /// Shrink shift applied by the `check` harness while minimizing a
    /// failing case: sampled values are shifted toward their range minimum
    /// by `v >> shift` without consuming fewer raw draws, so the generator
    /// state (and with it every later draw in the case) stays aligned with
    /// the original failure.
    static SHRINK_SHIFT: Cell<u32> = const { Cell::new(0) };
    /// When `Some`, every funnel draw appends its (post-shrink) value —
    /// the `check` harness's minimized-counterexample report.
    static DRAW_LOG: RefCell<Option<Vec<String>>> = const { RefCell::new(None) };
}

/// Set the shrink shift for the current thread (0 = off). Used only by
/// the `check` harness.
pub(crate) fn set_shrink_shift(shift: u32) {
    SHRINK_SHIFT.with(|c| c.set(shift));
}

/// Start recording funnel draws on the current thread.
pub(crate) fn start_draw_log() {
    DRAW_LOG.with(|l| *l.borrow_mut() = Some(Vec::new()));
}

/// Stop recording and return the draws captured since
/// [`start_draw_log`].
pub(crate) fn take_draw_log() -> Vec<String> {
    DRAW_LOG.with(|l| l.borrow_mut().take().unwrap_or_default())
}

#[inline]
fn shrink_shift() -> u32 {
    SHRINK_SHIFT.with(|c| c.get())
}

#[inline]
fn log_draw(value: impl std::fmt::Display) {
    DRAW_LOG.with(|l| {
        if let Some(log) = l.borrow_mut().as_mut() {
            log.push(value.to_string());
        }
    });
}

/// Advance a SplitMix64 state and return the next output.
///
/// This is the reference finalizer (Steele, Lea & Flood 2014); it is a
/// bijection on `u64`, so distinct states never collide.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The PCG-XSH-RR 64/32 generator.
///
/// Drop-in for the workspace's former `rand_pcg::Pcg64` uses: everything
/// seeded goes through [`Pcg32::seed_from_u64`], and no call site depended
/// on the exact stream of the old generator — only on determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    /// Stream selector; always odd.
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Construct from an explicit initial state and stream id.
    pub fn new(initstate: u64, initseq: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(initstate);
        rng.next_u32();
        rng
    }

    /// Seed via SplitMix64, deriving both the state and the stream from one
    /// `u64` — the workspace's standard seeding path.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let initstate = splitmix64(&mut sm);
        let initseq = splitmix64(&mut sm);
        Pcg32::new(initstate, initseq)
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits (low half drawn first).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform integer in `[0, bound)` via Lemire's unbiased widening
    /// multiply with rejection.
    ///
    /// This is the funnel for every integer sample (ranges, shuffles,
    /// choices), so it is also where the `check` harness's shrink shift
    /// applies: the raw draws (and thus the generator state) are exactly
    /// those of an unshrunk run, only the returned value is pulled toward
    /// zero.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 requires a positive bound");
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        let v = ((m >> 64) as u64) >> shrink_shift().min(63);
        log_draw(v);
        v
    }

    /// Uniform sample from an integer or float range, e.g.
    /// `rng.gen_range(0..10)`, `rng.gen_range(2..=16)`,
    /// `rng.gen_range(0.0..1e8)`.
    ///
    /// # Panics
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits. The float
    /// funnel — the `check` harness's shrink shift halves the unit sample
    /// per step, pulling float draws toward their range minimum.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let shift = shrink_shift();
        let v = if shift == 0 {
            unit
        } else {
            unit * (1.0 / (1u64 << shift.min(53)) as f64)
        };
        log_draw(v);
        v
    }

    /// Fair coin flip.
    #[inline]
    pub fn gen_bool(&mut self) -> bool {
        self.next_u32() & 1 == 1
    }
}

/// A range that [`Pcg32::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample_from(self, rng: &mut Pcg32) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut Pcg32) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut Pcg32) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from(self, rng: &mut Pcg32) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

/// Random slice operations, mirroring the subset of `rand::seq` the
/// workspace uses.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle(&mut self, rng: &mut Pcg32);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose(&self, rng: &mut Pcg32) -> Option<&Self::Item>;

    /// `amount` distinct elements drawn without replacement (all of them,
    /// in random order, when `amount >= len`).
    fn sample(&self, rng: &mut Pcg32, amount: usize) -> Vec<Self::Item>
    where
        Self::Item: Clone;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut Pcg32) {
        for i in (1..self.len()).rev() {
            let j = rng.bounded_u64((i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose(&self, rng: &mut Pcg32) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.bounded_u64(self.len() as u64) as usize])
        }
    }

    fn sample(&self, rng: &mut Pcg32, amount: usize) -> Vec<T>
    where
        T: Clone,
    {
        // Partial Fisher–Yates over an index table: the first `amount`
        // positions end up holding a uniform without-replacement draw.
        let n = self.len();
        let amount = amount.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..amount {
            let j = i + rng.bounded_u64((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx[..amount].iter().map(|&i| self[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First three outputs from state 0 (reference implementation).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(1);
        let mut c = Pcg32::seed_from_u64(2);
        let va: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        let vc: Vec<u32> = (0..16).map(|_| c.next_u32()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Pcg32::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Pcg32::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_and_sample() {
        let mut rng = Pcg32::seed_from_u64(3);
        let pool = [10, 20, 30, 40];
        assert!(pool.contains(pool.choose(&mut rng).unwrap()));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let picked = pool.sample(&mut rng, 3);
        assert_eq!(picked.len(), 3);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "sample drew a duplicate: {picked:?}");
        // Oversized requests return everything.
        assert_eq!(pool.sample(&mut rng, 99).len(), 4);
    }

    #[test]
    fn bounded_u64_covers_small_bounds() {
        let mut rng = Pcg32::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.bounded_u64(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Pcg32::seed_from_u64(13);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
