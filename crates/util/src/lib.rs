//! # dike-util — the repo's zero-dependency utility subsystem
//!
//! A reproduction whose headline claim is *determinism* of the simulated
//! machine should own its randomness and serialization rather than pull
//! them from a registry. This crate replaces every external dependency the
//! workspace used to have, so `cargo build --offline` works from a clean
//! checkout with no network and no vendored sources:
//!
//! * [`rng`] — deterministic SplitMix64 seeder + PCG32 stream with
//!   `gen_range`/`shuffle`/`choose`/`sample` (replaces `rand`/`rand_pcg`);
//! * [`json`] — a small writer-based serializer and recursive-descent
//!   parser behind derive-free [`json::ToJson`]/[`json::FromJson`] traits,
//!   with `macro_rules!` helpers for structs, enums and id newtypes
//!   (replaces `serde`/`serde_json`);
//! * [`check`] — a seeded property-testing harness, shrinking-free but
//!   with the failing seed reported for exact reproduction (replaces
//!   `proptest`);
//! * [`bench`] — a monotonic-clock micro-bench runner with warmup and
//!   iteration control (replaces `criterion`);
//! * [`alloc`] — a counting `GlobalAlloc` wrapper for tests that assert
//!   allocation behaviour (e.g. the zero-allocation steady-state claim of
//!   the driver's scratch-buffer core);
//! * [`pool`] — a std-only work-sharing thread pool with deterministic
//!   result ordering and a `DIKE_THREADS` environment override (replaces
//!   `rayon` for the experiment drivers' embarrassingly parallel maps).
//!
//! The RNG stream and the JSON output shape are frozen by golden tests in
//! `tests/`: any change to either is a breaking change for recorded
//! experiment fixtures and seeded test expectations.

pub mod alloc;
pub mod bench;
pub mod check;
pub mod json;
pub mod pool;
pub mod rng;

pub use alloc::CountingAllocator;
pub use json::{FromJson, JsonError, ToJson, Value};
pub use pool::Pool;
pub use rng::{Pcg32, SliceRandom};
