//! Frozen-behaviour tests for dike-util.
//!
//! The golden vectors here pin the RNG stream and JSON output shape: any
//! change to either silently invalidates recorded experiment results and
//! seeded test expectations across the workspace, so a change that trips
//! these tests must be treated as a breaking change, not a refactor.

use dike_util::check::check;
use dike_util::json::{self, FromJson, ToJson};
use dike_util::{json_enum, json_newtype, json_struct, Pcg32, SliceRandom};

/// First eight `next_u32` outputs of `Pcg32::seed_from_u64(42)`.
///
/// Golden: regenerate only on a deliberate stream break (see module doc).
const GOLDEN_SEED42_U32: [u32; 8] = [
    3508393247, 2846903365, 3050928809, 2850731726, 4131377665, 2643455979, 3642635281, 4055695308,
];

/// First four `next_u64` outputs of `Pcg32::seed_from_u64(0)`.
const GOLDEN_SEED0_U64: [u64; 4] = [
    5051042479238038049,
    12622467182322506189,
    11644819991971040113,
    12607984752632713414,
];

/// `(0..10).shuffle` under seed 7 — pins `SliceRandom` on top of the raw
/// stream.
const GOLDEN_SHUFFLE_SEED7: [u32; 10] = [5, 2, 8, 9, 7, 1, 4, 0, 6, 3];

#[test]
fn rng_stream_is_frozen() {
    let mut rng = Pcg32::seed_from_u64(42);
    let got: Vec<u32> = (0..8).map(|_| rng.next_u32()).collect();
    assert_eq!(
        got, GOLDEN_SEED42_U32,
        "Pcg32 u32 stream changed — breaking for all seeded fixtures"
    );

    let mut rng = Pcg32::seed_from_u64(0);
    let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got, GOLDEN_SEED0_U64,
        "Pcg32 u64 stream changed — breaking for all seeded fixtures"
    );

    let mut rng = Pcg32::seed_from_u64(7);
    let mut v: Vec<u32> = (0..10).collect();
    v.shuffle(&mut rng);
    assert_eq!(
        v.as_slice(),
        GOLDEN_SHUFFLE_SEED7,
        "shuffle order changed — breaking for all seeded fixtures"
    );
}

#[test]
fn gen_range_is_uniform_enough() {
    // Coarse balance check: over 8k draws from 8 buckets, each bucket gets
    // within ±25% of the expected 1k. Catches gross bias (e.g. modulo bias
    // or a broken rotate), not subtle statistical flaws.
    let mut rng = Pcg32::seed_from_u64(99);
    let mut buckets = [0u32; 8];
    for _ in 0..8000 {
        buckets[rng.gen_range(0usize..8)] += 1;
    }
    for (i, &b) in buckets.iter().enumerate() {
        assert!(
            (750..=1250).contains(&b),
            "bucket {i} got {b} of 8000 draws: {buckets:?}"
        );
    }
}

// ---- json round-trips on fixture-shaped structs -----------------------

#[derive(Debug, Clone, PartialEq)]
struct FixtureId(u64);
json_newtype!(FixtureId);

#[derive(Debug, Clone, PartialEq)]
enum FixtureKind {
    Fast,
    Slow,
    Seeded(u64),
}
json_enum!(FixtureKind { Fast, Slow } { Seeded(u64) });

#[derive(Debug, Clone, PartialEq)]
struct FixtureCell {
    id: FixtureId,
    kind: FixtureKind,
    label: String,
    fairness: f64,
    trace: Vec<(f64, f64)>,
    note: Option<String>,
}
json_struct!(FixtureCell {
    id,
    kind,
    label,
    fairness,
    trace,
    note
});

fn arb_cell(rng: &mut Pcg32) -> FixtureCell {
    let kind = match rng.gen_range(0u32..3) {
        0 => FixtureKind::Fast,
        1 => FixtureKind::Slow,
        _ => FixtureKind::Seeded(rng.next_u64()),
    };
    let trace = (0..rng.gen_range(0usize..6))
        .map(|_| (rng.gen_range(0.0..100.0), rng.gen_range(0.0..2.0)))
        .collect();
    FixtureCell {
        id: FixtureId(rng.next_u64()),
        kind,
        label: format!("cell-{}", rng.gen_range(0u32..1000)),
        fairness: rng.gen_range(0.0..1.0),
        trace,
        note: if rng.gen_bool() {
            Some("quote \" backslash \\ newline \n".to_string())
        } else {
            None
        },
    }
}

#[test]
fn json_round_trip_on_fixture_structs() {
    check("json_round_trip", 64, |rng| {
        let cell = arb_cell(rng);
        let s = json::to_string(&cell);
        let back: FixtureCell = json::from_str(&s).expect("round trip parses");
        assert_eq!(back, cell, "round trip mismatch for {s}");
        // Serialization is a pure function of the value.
        assert_eq!(json::to_string(&back), s);
    });
}

#[test]
fn json_output_shape_is_frozen() {
    let cell = FixtureCell {
        id: FixtureId(18_446_744_073_709_551_615),
        kind: FixtureKind::Seeded(7),
        label: "x".into(),
        fairness: 1.0,
        trace: vec![(0.5, 2.0)],
        note: None,
    };
    assert_eq!(
        cell.to_json(),
        "{\"id\":18446744073709551615,\"kind\":{\"Seeded\":7},\"label\":\"x\",\
         \"fairness\":1.0,\"trace\":[[0.5,2.0]],\"note\":null}",
        "json shape changed — breaking for recorded fixtures"
    );
    assert_eq!(FixtureKind::Fast.to_json(), "\"Fast\"");
    assert_eq!(
        FixtureCell::from_json(&cell.to_json()).unwrap().id,
        FixtureId(u64::MAX)
    );
}
