//! Online rate estimators.
//!
//! The paper's Observer stores, per core, "the moving mean bandwidth …
//! updated every quanta" (`CoreBW`), and per thread the access rate of the
//! last quantum. Different estimators trade responsiveness against noise
//! rejection; the Dike predictor's accuracy depends directly on this choice,
//! so the estimator is pluggable and benchmarked as an ablation
//! (`bench/estimator_ablation`).

use dike_util::{json_enum, json_struct};
use std::collections::VecDeque;

/// An online estimator of a noisy scalar signal.
pub trait Estimator {
    /// Feed one new observation.
    fn update(&mut self, sample: f64);
    /// Current estimate. Implementations return 0.0 before any sample.
    fn value(&self) -> f64;
    /// Discard all history.
    fn reset(&mut self);
    /// Number of samples observed since the last reset.
    fn len(&self) -> usize;
    /// True if no samples have been observed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Cumulative moving mean over all samples — the paper's `CoreBW` estimator
/// ("moving mean represents average bandwidth of core throughout its
/// execution").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MovingMean {
    sum: f64,
    n: usize,
}

json_struct!(MovingMean { sum, n });

impl MovingMean {
    /// A fresh estimator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Estimator for MovingMean {
    fn update(&mut self, sample: f64) {
        self.sum += sample;
        self.n += 1;
    }

    fn value(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    fn reset(&mut self) {
        *self = Self::default();
    }

    fn len(&self) -> usize {
        self.n
    }
}

/// Mean over a sliding window of the last `window` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedMean {
    window: usize,
    buf: VecDeque<f64>,
    sum: f64,
    seen: usize,
}

json_struct!(WindowedMean {
    window,
    buf,
    sum,
    seen,
});

impl WindowedMean {
    /// A sliding mean over the last `window` samples.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        WindowedMean {
            window,
            buf: VecDeque::with_capacity(window),
            sum: 0.0,
            seen: 0,
        }
    }
}

impl Estimator for WindowedMean {
    fn update(&mut self, sample: f64) {
        if self.buf.len() == self.window {
            let old = self.buf.pop_front().expect("non-empty window");
            self.sum -= old;
        }
        self.buf.push_back(sample);
        self.sum += sample;
        self.seen += 1;
    }

    fn value(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum / self.buf.len() as f64
        }
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
        self.seen = 0;
    }

    fn len(&self) -> usize {
        self.seen
    }
}

/// Exponentially-weighted moving average with smoothing factor `alpha`
/// (1.0 = track the last sample exactly; small values smooth heavily).
#[derive(Debug, Clone, PartialEq)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
    seen: usize,
}

json_struct!(Ewma { alpha, state, seen });

impl Ewma {
    /// A fresh EWMA.
    ///
    /// # Panics
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        Ewma {
            alpha,
            state: None,
            seen: 0,
        }
    }
}

impl Estimator for Ewma {
    fn update(&mut self, sample: f64) {
        self.state = Some(match self.state {
            None => sample,
            Some(prev) => prev + self.alpha * (sample - prev),
        });
        self.seen += 1;
    }

    fn value(&self) -> f64 {
        self.state.unwrap_or(0.0)
    }

    fn reset(&mut self) {
        self.state = None;
        self.seen = 0;
    }

    fn len(&self) -> usize {
        self.seen
    }
}

/// The most recent sample, verbatim.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LastSample {
    state: Option<f64>,
    seen: usize,
}

json_struct!(LastSample { state, seen });

impl LastSample {
    /// A fresh estimator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Estimator for LastSample {
    fn update(&mut self, sample: f64) {
        self.state = Some(sample);
        self.seen += 1;
    }

    fn value(&self) -> f64 {
        self.state.unwrap_or(0.0)
    }

    fn reset(&mut self) {
        self.state = None;
        self.seen = 0;
    }

    fn len(&self) -> usize {
        self.seen
    }
}

/// Which estimator a component should use — serialisable so experiment
/// configurations can sweep it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorKind {
    /// Cumulative moving mean (the paper's choice for `CoreBW`).
    MovingMean,
    /// Sliding mean over the last N samples.
    WindowedMean(usize),
    /// Exponentially weighted moving average.
    Ewma(f64),
    /// Last sample only.
    LastSample,
}

json_enum!(EstimatorKind { MovingMean, LastSample } { WindowedMean(usize), Ewma(f64) });

/// A dynamically-dispatched estimator built from a kind tag.
pub fn build(kind: EstimatorKind) -> Box<dyn Estimator + Send> {
    match kind {
        EstimatorKind::MovingMean => Box::new(MovingMean::new()),
        EstimatorKind::WindowedMean(w) => Box::new(WindowedMean::new(w)),
        EstimatorKind::Ewma(a) => Box::new(Ewma::new(a)),
        EstimatorKind::LastSample => Box::new(LastSample::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_mean_is_exact_mean() {
        let mut e = MovingMean::new();
        assert_eq!(e.value(), 0.0);
        assert!(e.is_empty());
        for x in [1.0, 2.0, 3.0, 4.0] {
            e.update(x);
        }
        assert_eq!(e.value(), 2.5);
        assert_eq!(e.len(), 4);
        e.reset();
        assert_eq!(e.value(), 0.0);
        assert!(e.is_empty());
    }

    #[test]
    fn windowed_mean_forgets_old_samples() {
        let mut e = WindowedMean::new(2);
        e.update(10.0);
        assert_eq!(e.value(), 10.0);
        e.update(20.0);
        assert_eq!(e.value(), 15.0);
        e.update(30.0); // 10 falls out
        assert_eq!(e.value(), 25.0);
        assert_eq!(e.len(), 3);
        e.reset();
        assert_eq!(e.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn windowed_mean_rejects_zero_window() {
        let _ = WindowedMean::new(0);
    }

    #[test]
    fn ewma_converges_to_constant_signal() {
        let mut e = Ewma::new(0.3);
        for _ in 0..100 {
            e.update(5.0);
        }
        assert!((e.value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_sample_is_exact() {
        let mut e = Ewma::new(0.1);
        e.update(42.0);
        assert_eq!(e.value(), 42.0);
    }

    #[test]
    fn ewma_tracks_step_change_faster_with_higher_alpha() {
        let run = |alpha: f64| {
            let mut e = Ewma::new(alpha);
            for _ in 0..10 {
                e.update(0.0);
            }
            for _ in 0..3 {
                e.update(10.0);
            }
            e.value()
        };
        assert!(run(0.5) > run(0.1));
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn last_sample_tracks_immediately() {
        let mut e = LastSample::new();
        e.update(1.0);
        e.update(9.0);
        assert_eq!(e.value(), 9.0);
        assert_eq!(e.len(), 2);
        e.reset();
        assert_eq!(e.value(), 0.0);
    }

    #[test]
    fn build_dispatches_all_kinds() {
        for kind in [
            EstimatorKind::MovingMean,
            EstimatorKind::WindowedMean(4),
            EstimatorKind::Ewma(0.2),
            EstimatorKind::LastSample,
        ] {
            let mut e = build(kind);
            e.update(3.0);
            e.update(3.0);
            assert!((e.value() - 3.0).abs() < 1e-12, "{kind:?}");
        }
    }

    #[test]
    fn estimators_smoothness_ordering_on_noisy_step() {
        // After a step, responsiveness: LastSample >= Ewma(0.5) >= MovingMean.
        let signal: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 2.0 }).collect();
        let feed = |e: &mut dyn Estimator| {
            for &x in &signal {
                e.update(x);
            }
            e.value()
        };
        let mut last = LastSample::new();
        let mut ewma = Ewma::new(0.5);
        let mut mean = MovingMean::new();
        let l = feed(&mut last);
        let e = feed(&mut ewma);
        let m = feed(&mut mean);
        assert!(l >= e && e >= m, "l={l} e={e} m={m}");
    }
}
