//! # dike-counters — performance-counter plumbing for contention-aware scheduling
//!
//! The paper's Observer "keeps track of memory access rate per thread by
//! reading hardware performance counters". This crate contains the
//! machine-independent half of that observation pipeline:
//!
//! * [`RateSample`] — per-quantum rates (access rate, instruction rate,
//!   miss ratio, IPC) derived from raw counter deltas;
//! * [`Estimator`] implementations — [`MovingMean`] (the paper's `CoreBW`
//!   estimator), [`WindowedMean`], [`Ewma`] and [`LastSample`] — pluggable
//!   so the estimator choice can be ablated.
//!
//! The machine-dependent half (how counters are read from the simulated
//! hardware each quantum) lives in `dike-sched-core`.

pub mod estimators;
pub mod rates;

pub use estimators::{build, Estimator, EstimatorKind, Ewma, LastSample, MovingMean, WindowedMean};
pub use rates::RateSample;
