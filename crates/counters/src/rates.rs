//! Turning raw counter deltas into the per-quantum rates schedulers consume.

use dike_util::json_struct;

/// Per-quantum rates derived from hardware-counter deltas.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RateSample {
    /// Memory accesses (LLC misses) per second — the paper's "memory access
    /// rate", its primary contention metric.
    pub access_rate: f64,
    /// Instructions per second.
    pub instr_rate: f64,
    /// LLC misses per instruction.
    pub miss_ratio: f64,
    /// LLC misses per LLC access — the paper's classification quantity
    /// ("if a thread's LLC miss rate is more than 10 %, it is considered
    /// memory intensive").
    pub llc_miss_rate: f64,
    /// Instructions per cycle (the metric the paper argues *against* for
    /// heterogeneous machines — kept for the IPC-ablation benchmark).
    pub ipc: f64,
}

json_struct!(RateSample {
    access_rate,
    instr_rate,
    miss_ratio,
    llc_miss_rate,
    ipc,
});

impl RateSample {
    /// Derive rates from counter deltas over `dt_s` seconds.
    ///
    /// Returns a zero sample when `dt_s` is not a positive number (e.g. the
    /// first quantum, before any counters were captured).
    pub fn from_deltas(
        d_instructions: f64,
        d_misses: f64,
        d_accesses: f64,
        d_cycles: f64,
        dt_s: f64,
    ) -> Self {
        // The explicit NaN check matters: a bare `dt_s <= 0.0` is false
        // for NaN, which would leak NaN rates into the estimators.
        if dt_s.is_nan() || dt_s <= 0.0 {
            return RateSample::default();
        }
        RateSample {
            access_rate: d_misses / dt_s,
            instr_rate: d_instructions / dt_s,
            miss_ratio: if d_instructions > 0.0 {
                d_misses / d_instructions
            } else {
                0.0
            },
            llc_miss_rate: if d_accesses > 0.0 {
                d_misses / d_accesses
            } else {
                0.0
            },
            ipc: if d_cycles > 0.0 {
                d_instructions / d_cycles
            } else {
                0.0
            },
        }
    }

    /// LLC miss rate as a percentage of LLC accesses — directly comparable
    /// to the paper's 10 % boundary.
    pub fn miss_rate_percent(&self) -> f64 {
        self.llc_miss_rate * 100.0
    }

    /// True when every field is a finite number and inside its physical
    /// bounds (rates non-negative, ratios in their valid ranges — the
    /// `llc_miss_rate` is misses per access, so at most 1).
    pub fn is_plausible(&self) -> bool {
        self.access_rate.is_finite()
            && self.access_rate >= 0.0
            && self.instr_rate.is_finite()
            && self.instr_rate >= 0.0
            && self.miss_ratio.is_finite()
            && self.miss_ratio >= 0.0
            && (0.0..=1.0).contains(&self.llc_miss_rate)
            && self.ipc.is_finite()
            && self.ipc >= 0.0
    }

    /// A defensively cleaned copy: non-finite or negative fields become
    /// zero and ratio fields are clamped to their physical ranges. A
    /// plausible sample passes through bit-identical — the sanitizer never
    /// perturbs healthy telemetry, which keeps fault-free runs
    /// byte-identical to the goldens.
    pub fn sanitized(&self) -> RateSample {
        if self.is_plausible() {
            return *self;
        }
        let clean = |v: f64| if v.is_finite() && v >= 0.0 { v } else { 0.0 };
        RateSample {
            access_rate: clean(self.access_rate),
            instr_rate: clean(self.instr_rate),
            miss_ratio: clean(self.miss_ratio),
            llc_miss_rate: clean(self.llc_miss_rate).min(1.0),
            ipc: clean(self.ipc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_from_simple_deltas() {
        let r = RateSample::from_deltas(1000.0, 50.0, 400.0, 2000.0, 0.5);
        assert_eq!(r.instr_rate, 2000.0);
        assert_eq!(r.access_rate, 100.0);
        assert_eq!(r.miss_ratio, 0.05);
        assert_eq!(r.llc_miss_rate, 0.125);
        assert_eq!(r.ipc, 0.5);
        assert_eq!(r.miss_rate_percent(), 12.5);
    }

    #[test]
    fn zero_duration_yields_zero_sample() {
        assert_eq!(
            RateSample::from_deltas(100.0, 1.0, 5.0, 10.0, 0.0),
            RateSample::default()
        );
        assert_eq!(
            RateSample::from_deltas(100.0, 1.0, 5.0, 10.0, -1.0),
            RateSample::default()
        );
    }

    #[test]
    fn idle_thread_has_zero_ratios() {
        let r = RateSample::from_deltas(0.0, 0.0, 0.0, 0.0, 1.0);
        assert_eq!(r.miss_ratio, 0.0);
        assert_eq!(r.llc_miss_rate, 0.0);
        assert_eq!(r.ipc, 0.0);
        assert_eq!(r.access_rate, 0.0);
    }

    #[test]
    fn zero_accesses_with_nonzero_misses_never_divides_by_zero() {
        // Counter skew can report misses with no accesses in a short
        // quantum; the ratios must stay finite (0, by convention).
        let r = RateSample::from_deltas(100.0, 7.0, 0.0, 0.0, 0.25);
        assert_eq!(r.llc_miss_rate, 0.0);
        assert_eq!(r.miss_rate_percent(), 0.0);
        assert_eq!(r.ipc, 0.0);
        assert!(r.access_rate.is_finite());
        assert_eq!(r.access_rate, 28.0);
    }

    #[test]
    fn negative_and_tiny_durations_yield_zero_sample() {
        for dt in [0.0, -0.0, -1e-9, f64::NEG_INFINITY] {
            let r = RateSample::from_deltas(1e9, 1e6, 1e7, 1e9, dt);
            assert_eq!(r, RateSample::default(), "dt_s = {dt}");
        }
        // NaN durations must not leak NaN rates either.
        let r = RateSample::from_deltas(1e9, 1e6, 1e7, 1e9, f64::NAN);
        assert_eq!(r, RateSample::default());
    }

    #[test]
    fn sanitized_passes_healthy_samples_through_unchanged() {
        let r = RateSample::from_deltas(1000.0, 50.0, 400.0, 2000.0, 0.5);
        assert!(r.is_plausible());
        assert_eq!(r.sanitized(), r);
        assert!(RateSample::default().is_plausible());
    }

    #[test]
    fn sanitized_scrubs_poisoned_samples() {
        let poisoned = RateSample {
            access_rate: f64::NAN,
            instr_rate: f64::INFINITY,
            miss_ratio: -0.5,
            llc_miss_rate: 7.0,
            ipc: f64::NAN,
        };
        assert!(!poisoned.is_plausible());
        let clean = poisoned.sanitized();
        assert!(clean.is_plausible());
        assert_eq!(clean.access_rate, 0.0);
        assert_eq!(clean.instr_rate, 0.0);
        assert_eq!(clean.miss_ratio, 0.0);
        assert_eq!(clean.llc_miss_rate, 1.0);
        assert_eq!(clean.ipc, 0.0);
    }

    #[test]
    fn all_fields_finite_for_finite_inputs() {
        let r = RateSample::from_deltas(5.0, 3.0, 4.0, 2.0, 1e-6);
        for v in [
            r.access_rate,
            r.instr_rate,
            r.miss_ratio,
            r.llc_miss_rate,
            r.ipc,
        ] {
            assert!(v.is_finite(), "{r:?}");
        }
        assert_eq!(r.miss_rate_percent(), 75.0);
    }
}
