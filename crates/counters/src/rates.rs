//! Turning raw counter deltas into the per-quantum rates schedulers consume.

use serde::{Deserialize, Serialize};

/// Per-quantum rates derived from hardware-counter deltas.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RateSample {
    /// Memory accesses (LLC misses) per second — the paper's "memory access
    /// rate", its primary contention metric.
    pub access_rate: f64,
    /// Instructions per second.
    pub instr_rate: f64,
    /// LLC misses per instruction.
    pub miss_ratio: f64,
    /// LLC misses per LLC access — the paper's classification quantity
    /// ("if a thread's LLC miss rate is more than 10 %, it is considered
    /// memory intensive").
    pub llc_miss_rate: f64,
    /// Instructions per cycle (the metric the paper argues *against* for
    /// heterogeneous machines — kept for the IPC-ablation benchmark).
    pub ipc: f64,
}

impl RateSample {
    /// Derive rates from counter deltas over `dt_s` seconds.
    ///
    /// Returns a zero sample when `dt_s` is not positive (e.g. the first
    /// quantum, before any counters were captured).
    pub fn from_deltas(
        d_instructions: f64,
        d_misses: f64,
        d_accesses: f64,
        d_cycles: f64,
        dt_s: f64,
    ) -> Self {
        if dt_s <= 0.0 {
            return RateSample::default();
        }
        RateSample {
            access_rate: d_misses / dt_s,
            instr_rate: d_instructions / dt_s,
            miss_ratio: if d_instructions > 0.0 {
                d_misses / d_instructions
            } else {
                0.0
            },
            llc_miss_rate: if d_accesses > 0.0 {
                d_misses / d_accesses
            } else {
                0.0
            },
            ipc: if d_cycles > 0.0 {
                d_instructions / d_cycles
            } else {
                0.0
            },
        }
    }

    /// LLC miss rate as a percentage of LLC accesses — directly comparable
    /// to the paper's 10 % boundary.
    pub fn miss_rate_percent(&self) -> f64 {
        self.llc_miss_rate * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_from_simple_deltas() {
        let r = RateSample::from_deltas(1000.0, 50.0, 400.0, 2000.0, 0.5);
        assert_eq!(r.instr_rate, 2000.0);
        assert_eq!(r.access_rate, 100.0);
        assert_eq!(r.miss_ratio, 0.05);
        assert_eq!(r.llc_miss_rate, 0.125);
        assert_eq!(r.ipc, 0.5);
        assert_eq!(r.miss_rate_percent(), 12.5);
    }

    #[test]
    fn zero_duration_yields_zero_sample() {
        assert_eq!(
            RateSample::from_deltas(100.0, 1.0, 5.0, 10.0, 0.0),
            RateSample::default()
        );
        assert_eq!(
            RateSample::from_deltas(100.0, 1.0, 5.0, 10.0, -1.0),
            RateSample::default()
        );
    }

    #[test]
    fn idle_thread_has_zero_ratios() {
        let r = RateSample::from_deltas(0.0, 0.0, 0.0, 0.0, 1.0);
        assert_eq!(r.miss_ratio, 0.0);
        assert_eq!(r.llc_miss_rate, 0.0);
        assert_eq!(r.ipc, 0.0);
        assert_eq!(r.access_rate, 0.0);
    }
}
