//! Property tests on the estimators and rate derivations.

use dike_counters::{build, Estimator, EstimatorKind, Ewma, MovingMean, RateSample, WindowedMean};
use dike_util::check::check;
use dike_util::Pcg32;

fn gen_samples(rng: &mut Pcg32, lo: f64, hi: f64, len_lo: usize, len_hi: usize) -> Vec<f64> {
    let len = rng.gen_range(len_lo..len_hi);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

#[test]
fn estimates_stay_within_observed_range() {
    check("estimates_stay_within_observed_range", 256, |rng| {
        let samples = gen_samples(rng, 0.0, 1e9, 1, 100);
        let kind_sel = rng.gen_range(0usize..4);
        let window = rng.gen_range(1usize..20);
        let alpha = rng.gen_range(0.01f64..1.0);

        let kind = match kind_sel {
            0 => EstimatorKind::MovingMean,
            1 => EstimatorKind::WindowedMean(window),
            2 => EstimatorKind::Ewma(alpha),
            _ => EstimatorKind::LastSample,
        };
        let mut e = build(kind);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for s in &samples {
            e.update(*s);
            min = min.min(*s);
            max = max.max(*s);
            let v = e.value();
            assert!(
                v >= min - 1e-9 && v <= max + 1e-9,
                "{kind:?} estimate {v} outside [{min},{max}]"
            );
        }
        assert_eq!(e.len(), samples.len());
        e.reset();
        assert!(e.is_empty());
        assert_eq!(e.value(), 0.0);
    });
}

#[test]
fn moving_mean_equals_arithmetic_mean() {
    check("moving_mean_equals_arithmetic_mean", 256, |rng| {
        let samples = gen_samples(rng, -1e6, 1e6, 1, 200);

        let mut e = MovingMean::new();
        for s in &samples {
            e.update(*s);
        }
        let expect = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((e.value() - expect).abs() < 1e-6 * (1.0 + expect.abs()));
    });
}

#[test]
fn windowed_mean_matches_naive_tail_mean() {
    check("windowed_mean_matches_naive_tail_mean", 256, |rng| {
        let samples = gen_samples(rng, -1e6, 1e6, 1, 100);
        let window = rng.gen_range(1usize..20);

        let mut e = WindowedMean::new(window);
        for s in &samples {
            e.update(*s);
        }
        let tail: Vec<f64> = samples.iter().rev().take(window).copied().collect();
        let expect = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!((e.value() - expect).abs() < 1e-6 * (1.0 + expect.abs()));
    });
}

#[test]
fn ewma_is_a_convex_combination() {
    check("ewma_is_a_convex_combination", 256, |rng| {
        let samples = gen_samples(rng, 0.0, 1e6, 2, 100);
        let alpha = rng.gen_range(0.01f64..1.0);

        let mut e = Ewma::new(alpha);
        e.update(samples[0]);
        let mut prev = e.value();
        for s in &samples[1..] {
            e.update(*s);
            let v = e.value();
            let lo = prev.min(*s) - 1e-9;
            let hi = prev.max(*s) + 1e-9;
            assert!(v >= lo && v <= hi);
            prev = v;
        }
    });
}

#[test]
fn rate_sample_fields_are_consistent() {
    check("rate_sample_fields_are_consistent", 256, |rng| {
        let instr = rng.gen_range(0.0f64..1e12);
        let misses_frac = rng.gen_range(0.0f64..0.5);
        let accesses_extra = rng.gen_range(1.0f64..4.0);
        let cycles = rng.gen_range(1.0f64..1e12);
        let dt = rng.gen_range(0.001f64..10.0);

        let misses = instr * misses_frac;
        let accesses = misses * accesses_extra;
        let r = RateSample::from_deltas(instr, misses, accesses, cycles, dt);
        assert!((r.instr_rate * dt - instr).abs() < 1e-6 * (1.0 + instr));
        assert!((r.access_rate * dt - misses).abs() < 1e-6 * (1.0 + misses));
        if accesses > 0.0 {
            assert!((0.0..=1.0 + 1e-9).contains(&r.llc_miss_rate));
        }
        assert!(r.ipc >= 0.0);
        assert!(r.miss_rate_percent() >= 0.0);
    });
}
