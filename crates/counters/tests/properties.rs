//! Property tests on the estimators and rate derivations.

use dike_counters::{build, Estimator, EstimatorKind, Ewma, MovingMean, RateSample, WindowedMean};
use proptest::prelude::*;

proptest! {
    #[test]
    fn estimates_stay_within_observed_range(
        samples in prop::collection::vec(0.0f64..1e9, 1..100),
        kind_sel in 0usize..4,
        window in 1usize..20,
        alpha in 0.01f64..1.0,
    ) {
        let kind = match kind_sel {
            0 => EstimatorKind::MovingMean,
            1 => EstimatorKind::WindowedMean(window),
            2 => EstimatorKind::Ewma(alpha),
            _ => EstimatorKind::LastSample,
        };
        let mut e = build(kind);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for s in &samples {
            e.update(*s);
            min = min.min(*s);
            max = max.max(*s);
            let v = e.value();
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9,
                "{kind:?} estimate {v} outside [{min},{max}]");
        }
        prop_assert_eq!(e.len(), samples.len());
        e.reset();
        prop_assert!(e.is_empty());
        prop_assert_eq!(e.value(), 0.0);
    }

    #[test]
    fn moving_mean_equals_arithmetic_mean(
        samples in prop::collection::vec(-1e6f64..1e6, 1..200),
    ) {
        let mut e = MovingMean::new();
        for s in &samples {
            e.update(*s);
        }
        let expect = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((e.value() - expect).abs() < 1e-6 * (1.0 + expect.abs()));
    }

    #[test]
    fn windowed_mean_matches_naive_tail_mean(
        samples in prop::collection::vec(-1e6f64..1e6, 1..100),
        window in 1usize..20,
    ) {
        let mut e = WindowedMean::new(window);
        for s in &samples {
            e.update(*s);
        }
        let tail: Vec<f64> = samples
            .iter()
            .rev()
            .take(window)
            .copied()
            .collect();
        let expect = tail.iter().sum::<f64>() / tail.len() as f64;
        prop_assert!((e.value() - expect).abs() < 1e-6 * (1.0 + expect.abs()));
    }

    #[test]
    fn ewma_is_a_convex_combination(
        samples in prop::collection::vec(0.0f64..1e6, 2..100),
        alpha in 0.01f64..1.0,
    ) {
        let mut e = Ewma::new(alpha);
        e.update(samples[0]);
        let mut prev = e.value();
        for s in &samples[1..] {
            e.update(*s);
            let v = e.value();
            let lo = prev.min(*s) - 1e-9;
            let hi = prev.max(*s) + 1e-9;
            prop_assert!(v >= lo && v <= hi);
            prev = v;
        }
    }

    #[test]
    fn rate_sample_fields_are_consistent(
        instr in 0.0f64..1e12,
        misses_frac in 0.0f64..0.5,
        accesses_extra in 1.0f64..4.0,
        cycles in 1.0f64..1e12,
        dt in 0.001f64..10.0,
    ) {
        let misses = instr * misses_frac;
        let accesses = misses * accesses_extra;
        let r = RateSample::from_deltas(instr, misses, accesses, cycles, dt);
        prop_assert!((r.instr_rate * dt - instr).abs() < 1e-6 * (1.0 + instr));
        prop_assert!((r.access_rate * dt - misses).abs() < 1e-6 * (1.0 + misses));
        if accesses > 0.0 {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r.llc_miss_rate));
        }
        prop_assert!(r.ipc >= 0.0);
        prop_assert!(r.miss_rate_percent() >= 0.0);
    }
}
