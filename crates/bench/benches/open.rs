//! Open-system bench: wall-clock of one open-system cell — arrival-trace
//! generation, mid-run spawning through the event-driven driver, and the
//! windowed-fairness reduction — at each offered-load level.
//!
//! Each bench times `run_open_cell` with default Dike on the WL1-derived
//! Poisson trace of one [`LOAD_LEVELS_MS`] level, so the recorded numbers
//! track the end-to-end cost of the open path (admission, sub-segment
//! quanta, per-window reduction) as churn rises. Regressions here usually
//! mean the driver's admit loop or the view rebuild grew a per-arrival
//! cost it should not have.
//!
//! With `DIKE_BENCH_JSON=<path>` set, results are also written as JSON —
//! `scripts/bench.sh` uses this to record the numbers into
//! `results/BENCH_open.json`.

use dike_experiments::open::{run_open_cell, wl1_trace, LOAD_LEVELS_MS};
use dike_experiments::{RunOptions, SchedKind};
use dike_machine::presets;
use dike_scheduler::SchedConfig;
use dike_util::bench::Bench;
use dike_util::json::{Num, Value};
use dike_util::pool;
use std::hint::black_box;

fn main() {
    let mut b = Bench::from_env();
    let fast = std::env::var("DIKE_BENCH_FAST").is_ok_and(|v| v == "1");

    let opts = RunOptions {
        scale: if fast { 0.01 } else { 0.02 },
        deadline_s: 120.0,
        ..RunOptions::default()
    };
    let machine = presets::paper_machine(opts.seed);
    for &mean_ms in &LOAD_LEVELS_MS {
        let trace = wl1_trace(mean_ms, opts.seed);
        let name = format!("open/dike_{}ms_{}thr", mean_ms as u64, trace.num_threads());
        b.bench(&name, || {
            let point = run_open_cell(
                black_box(&machine),
                &trace,
                &SchedKind::Dike(SchedConfig::DEFAULT),
                &opts,
            );
            black_box(point.mean_sojourn_s)
        });
    }

    if let Ok(path) = std::env::var("DIKE_BENCH_JSON") {
        let benches: Vec<Value> = b
            .results()
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("name".into(), Value::Str(r.name.clone())),
                    (
                        "iters_per_sample".into(),
                        Value::Num(Num::U(r.iters_per_sample)),
                    ),
                    ("min_ns".into(), Value::Num(Num::F(r.min_ns))),
                    ("median_ns".into(), Value::Num(Num::F(r.median_ns))),
                    ("mean_ns".into(), Value::Num(Num::F(r.mean_ns))),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            (
                "host_threads".into(),
                Value::Num(Num::U(
                    std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
                )),
            ),
            (
                "pool_threads".into(),
                Value::Num(Num::U(pool::num_threads() as u64)),
            ),
            ("fast_mode".into(), Value::Bool(fast)),
            ("benches".into(), Value::Array(benches)),
        ]);
        std::fs::write(&path, doc.render() + "\n").expect("write DIKE_BENCH_JSON");
        println!("wrote {path}");
    }

    b.finish();
}
