//! Cache-partitioning bench: wall-clock of the partition actuator's hot
//! path — the LFOC classification/plan-build pass, the engine's
//! partitioned-capacity contention solve, and the partition actuation
//! channel in the driver.
//!
//! Three policies per workload mix bracket the cost: plain Dike
//! (migration-only — the pre-partition baseline the others are measured
//! against), LFOC (partition-only), and the Dike+LFOC hybrid (both
//! actuators). Each row's JSON record carries the cell's
//! `mean_windowed_fairness` and `partitions` as extras, so
//! `results/BENCH_cachepart.json` archives the hybrid-vs-Dike fairness
//! comparison on both mixes alongside the timings (the golden suite pins
//! the same cells byte-for-byte at test scale).
//!
//! With `DIKE_BENCH_JSON=<path>` set, results are also written as JSON —
//! `scripts/bench.sh` uses this to record the numbers into
//! `results/BENCH_cachepart.json`.

use dike_experiments::cachepart::run_cachepart_cell;
use dike_experiments::{RunOptions, SchedKind};
use dike_machine::presets;
use dike_scheduler::SchedConfig;
use dike_util::bench::Bench;
use dike_util::json::{Num, Value};
use dike_util::pool;
use std::hint::black_box;

fn main() {
    let mut b = Bench::from_env();
    let fast = std::env::var("DIKE_BENCH_FAST").is_ok_and(|v| v == "1");

    // Full mode runs at 0.05 — long enough for a partition to pay back
    // its plan-churn warm-up, so the recorded fairness extras reflect the
    // steady state (the acceptance comparison in the cachepart tests uses
    // the same scale).
    let opts = RunOptions {
        scale: if fast { 0.01 } else { 0.05 },
        deadline_s: 120.0,
        ..RunOptions::default()
    };
    let base = presets::paper_machine(opts.seed);

    let kinds: [(&str, SchedKind); 3] = [
        ("dike", SchedKind::Dike(SchedConfig::DEFAULT)),
        ("lfoc", SchedKind::Lfoc),
        ("dike_lfoc", SchedKind::DikeLfoc),
    ];

    // (row name, windowed fairness, partitions applied) recorded into the
    // JSON extras.
    let mut extras: Vec<(String, f64, u64)> = Vec::new();
    for wl in [1usize, 13] {
        for (suffix, kind) in &kinds {
            let name = format!("cachepart/wl{wl}_{suffix}");
            let mut fairness = 0.0;
            let mut partitions = 0u64;
            b.bench(&name, || {
                let point = run_cachepart_cell("none", 0.0, wl, black_box(&base), kind, &opts);
                fairness = point.mean_windowed_fairness;
                partitions = point.partitions;
                black_box(fairness)
            });
            extras.push((name, fairness, partitions));
        }
    }

    if let Ok(path) = std::env::var("DIKE_BENCH_JSON") {
        let benches: Vec<Value> = b
            .results()
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("name".into(), Value::Str(r.name.clone())),
                    (
                        "iters_per_sample".into(),
                        Value::Num(Num::U(r.iters_per_sample)),
                    ),
                    ("min_ns".into(), Value::Num(Num::F(r.min_ns))),
                    ("median_ns".into(), Value::Num(Num::F(r.median_ns))),
                    ("mean_ns".into(), Value::Num(Num::F(r.mean_ns))),
                ];
                // Fairness extras (ignored by bench_check's median
                // comparison, read by EXPERIMENTS.md): the cell's windowed
                // fairness and how many partition plans landed.
                if let Some((_, f, p)) = extras.iter().find(|(name, _, _)| *name == r.name) {
                    fields.push(("mean_windowed_fairness".into(), Value::Num(Num::F(*f))));
                    fields.push(("partitions".into(), Value::Num(Num::U(*p))));
                }
                Value::Object(fields)
            })
            .collect();
        let doc = Value::Object(vec![
            (
                "host_threads".into(),
                Value::Num(Num::U(
                    std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
                )),
            ),
            (
                "pool_threads".into(),
                Value::Num(Num::U(pool::num_threads() as u64)),
            ),
            ("fast_mode".into(), Value::Bool(fast)),
            ("benches".into(), Value::Array(benches)),
        ]);
        std::fs::write(&path, doc.render() + "\n").expect("write DIKE_BENCH_JSON");
        println!("wrote {path}");
    }

    b.finish();
}
