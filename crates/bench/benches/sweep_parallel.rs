//! The perf-trajectory bench: the two hot paths this repo optimises.
//!
//! * `solve_memory_40_demands` — the per-tick memory fixed point at the
//!   paper's 40-thread scale, through the allocation-free
//!   `solve_memory_into` scratch path (convergence early exit engaged).
//! * `solve_memory_40_demands_reference` — the same solve through the
//!   full-iteration-budget reference solver with a fresh allocation per
//!   call: the pre-optimisation cost model, kept runnable so the delta
//!   stays measurable release over release.
//! * `sweep_33_cells_serial` / `sweep_33_cells_parallel` — the Fig 2/4/5
//!   driver's 33-cell configuration sweep on one worker vs the
//!   environment-sized pool (`DIKE_THREADS` to override).
//!
//! With `DIKE_BENCH_JSON=<path>` set, results are also written as JSON —
//! `scripts/bench.sh` uses this to record the numbers into
//! `results/BENCH_sweep.json`.

use dike_experiments::sweep::sweep_workload_pool;
use dike_experiments::RunOptions;
use dike_machine::{
    presets, solve_memory_into, solve_memory_reference, MemDemand, MemSolution, MemoryConfig,
};
use dike_util::bench::Bench;
use dike_util::json::{Num, Value};
use dike_util::{pool, Pool};
use dike_workloads::paper;
use std::hint::black_box;

/// The paper machine runs 40 threads; half memory-bound, half compute.
fn forty_demands() -> Vec<MemDemand> {
    (0..40)
        .map(|i| {
            let memory_bound = i % 2 == 0;
            MemDemand {
                base_time_per_instr: (0.5 + 0.05 * (i % 8) as f64) / 2.33e9,
                miss_ratio: if memory_bound {
                    0.02 + 0.001 * (i % 5) as f64
                } else {
                    2e-4
                },
            }
        })
        .collect()
}

fn main() {
    let mut b = Bench::from_env();
    let fast = std::env::var("DIKE_BENCH_FAST").is_ok_and(|v| v == "1");

    let demands = forty_demands();
    let mem_cfg = MemoryConfig::default();
    let mut scratch = MemSolution::empty();
    b.bench("solve_memory_40_demands", || {
        solve_memory_into(black_box(&demands), &mem_cfg, &mut scratch);
        black_box(scratch.utilisation)
    });
    b.bench("solve_memory_40_demands_reference", || {
        black_box(solve_memory_reference(black_box(&demands), &mem_cfg).utilisation)
    });

    // The 33-cell sweep behind Figures 2, 4 and 5. The smoke scale keeps
    // verify runs short; the recording scale matches dike-bench's figure
    // benches.
    let opts = RunOptions {
        scale: if fast { 0.01 } else { 0.03 },
        deadline_s: 60.0,
        ..RunOptions::default()
    };
    let machine = presets::paper_machine(opts.seed);
    let workload = paper::workload(2);
    b.bench("sweep_33_cells_serial", || {
        let s = sweep_workload_pool(&machine, &workload, black_box(&opts), &Pool::new(1));
        black_box(s.best_fairness())
    });
    b.bench("sweep_33_cells_parallel", || {
        let s = sweep_workload_pool(&machine, &workload, black_box(&opts), &Pool::from_env());
        black_box(s.best_fairness())
    });

    if let Ok(path) = std::env::var("DIKE_BENCH_JSON") {
        let benches: Vec<Value> = b
            .results()
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("name".into(), Value::Str(r.name.clone())),
                    (
                        "iters_per_sample".into(),
                        Value::Num(Num::U(r.iters_per_sample)),
                    ),
                    ("min_ns".into(), Value::Num(Num::F(r.min_ns))),
                    ("median_ns".into(), Value::Num(Num::F(r.median_ns))),
                    ("mean_ns".into(), Value::Num(Num::F(r.mean_ns))),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            (
                "host_threads".into(),
                Value::Num(Num::U(
                    std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
                )),
            ),
            (
                "pool_threads".into(),
                Value::Num(Num::U(pool::num_threads() as u64)),
            ),
            ("fast_mode".into(), Value::Bool(fast)),
            ("benches".into(), Value::Array(benches)),
        ]);
        std::fs::write(&path, doc.render() + "\n").expect("write DIKE_BENCH_JSON");
        println!("wrote {path}");
    }

    b.finish();
}
