//! Scheduler decision-latency microbenchmarks.
//!
//! The paper claims "low scheduling overhead": Dike trades a little
//! prediction work per quantum for a large reduction in migrations. These
//! benches time a single `on_quantum` decision at the paper's scale (40
//! threads, 40 cores) for each policy, isolating the userspace-daemon cost
//! from the machine simulation.

use dike_baselines::{Dio, RandomScheduler, SortOnce, StaticSpread};
use dike_counters::RateSample;
use dike_machine::topology::CoreKind;
use dike_machine::{AppId, SimTime, ThreadCounters, ThreadId, VCoreId};
use dike_sched_core::{Actions, CoreObservation, Scheduler, SystemView, ThreadObservation};
use dike_scheduler::Dike;
use dike_util::bench::Bench;
use std::hint::black_box;

/// Build a realistic 40-thread, 40-core view: five 8-thread apps with
/// distinct access-rate bands and some in-app spread.
fn paper_scale_view(quantum_index: u64) -> SystemView {
    let mut threads = Vec::new();
    for app in 0..5u32 {
        let base = match app {
            0 | 1 => 9e6, // memory apps
            4 => 4e6,     // kmeans-like
            _ => 1e6,     // compute apps
        };
        for k in 0..8u32 {
            let id = app * 8 + k;
            let rate = base * (1.0 + 0.05 * k as f64);
            threads.push(ThreadObservation {
                id: ThreadId(id),
                app: AppId(app),
                vcore: VCoreId(id),
                rates: RateSample {
                    access_rate: rate,
                    instr_rate: rate * 40.0,
                    miss_ratio: 0.02,
                    llc_miss_rate: if base > 5e6 { 0.12 } else { 0.02 },
                    ipc: 1.2,
                },
                cumulative: ThreadCounters::default(),
                migrated_last_quantum: false,
                llc_occupancy_mib: 0.0,
            });
        }
    }
    let cores = (0..40u32)
        .map(|c| CoreObservation {
            id: VCoreId(c),
            kind: if c < 20 {
                CoreKind::FAST
            } else {
                CoreKind::SLOW
            },
            domain: dike_machine::DomainId(0),
            bandwidth: threads[c as usize].rates.access_rate,
        })
        .collect();
    let mut view = SystemView {
        now: SimTime::from_ms(500 * (quantum_index + 1)),
        quantum: SimTime::from_ms(500),
        quantum_index,
        threads,
        cores,
        ..SystemView::default()
    };
    view.assign_occupants();
    view
}

fn bench_policy(b: &mut Bench, name: &str, mut sched: impl Scheduler) {
    let mut q = 0u64;
    b.bench(name, || {
        let view = paper_scale_view(q);
        q += 1;
        let mut actions = Actions::default();
        sched.on_quantum(black_box(&view), &mut actions);
        black_box(actions.migrations.len())
    });
}

fn main() {
    let mut b = Bench::from_env();
    bench_policy(&mut b, "on_quantum/dike", Dike::new());
    bench_policy(&mut b, "on_quantum/dike_af", Dike::adaptive_fairness());
    bench_policy(&mut b, "on_quantum/dio", Dio::new());
    bench_policy(&mut b, "on_quantum/cfs", StaticSpread::new());
    bench_policy(&mut b, "on_quantum/random", RandomScheduler::new(1));
    bench_policy(&mut b, "on_quantum/sort_once", SortOnce::new());
    b.finish();
}
