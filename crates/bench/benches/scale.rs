//! Scale bench: wall-clock of one full Dike run as the machine grows from
//! the paper's 40 vcores to 160- and 320-vcore multi-controller boxes.
//!
//! Each bench times `run_cell` (machine build + workload spawn + a whole
//! driven simulation) with default Dike on the matching [`scale`] sweep
//! point, so the recorded numbers track the end-to-end cost of the
//! per-domain contention solve as controller count rises. The 1-domain
//! point doubles as the single-controller regression reference: the NUMA
//! generalisation must not tax the paper machine.
//!
//! With `DIKE_BENCH_JSON=<path>` set, results are also written as JSON —
//! `scripts/bench.sh` uses this to record the numbers into
//! `results/BENCH_scale.json`.

use dike_experiments::scale::{scale_machine, scale_workload, SCALE_DOMAINS};
use dike_experiments::{run_cell, RunOptions, SchedKind};
use dike_scheduler::SchedConfig;
use dike_util::bench::Bench;
use dike_util::json::{Num, Value};
use dike_util::pool;
use std::hint::black_box;

fn main() {
    let mut b = Bench::from_env();
    let fast = std::env::var("DIKE_BENCH_FAST").is_ok_and(|v| v == "1");

    let opts = RunOptions {
        scale: if fast { 0.01 } else { 0.02 },
        deadline_s: 60.0,
        ..RunOptions::default()
    };
    for &domains in &SCALE_DOMAINS {
        let machine = scale_machine(domains, opts.seed);
        let workload = scale_workload(domains as usize);
        let name = format!(
            "scale/dike_{}dom_{}c",
            domains,
            machine.topology.num_vcores()
        );
        b.bench(&name, || {
            let cell = run_cell(
                black_box(&machine),
                &workload,
                &SchedKind::Dike(SchedConfig::DEFAULT),
                &opts,
            );
            black_box(cell.fairness)
        });
    }

    if let Ok(path) = std::env::var("DIKE_BENCH_JSON") {
        let benches: Vec<Value> = b
            .results()
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("name".into(), Value::Str(r.name.clone())),
                    (
                        "iters_per_sample".into(),
                        Value::Num(Num::U(r.iters_per_sample)),
                    ),
                    ("min_ns".into(), Value::Num(Num::F(r.min_ns))),
                    ("median_ns".into(), Value::Num(Num::F(r.median_ns))),
                    ("mean_ns".into(), Value::Num(Num::F(r.mean_ns))),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            (
                "host_threads".into(),
                Value::Num(Num::U(
                    std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
                )),
            ),
            (
                "pool_threads".into(),
                Value::Num(Num::U(pool::num_threads() as u64)),
            ),
            ("fast_mode".into(), Value::Bool(fast)),
            ("benches".into(), Value::Array(benches)),
        ]);
        std::fs::write(&path, doc.render() + "\n").expect("write DIKE_BENCH_JSON");
        println!("wrote {path}");
    }

    b.finish();
}
