//! Failover bench: wall-clock of the epoch-driven fault-tolerant fleet
//! loop — epoch slicing, health barriers, orphan re-dispatch — under the
//! harshest swept fault cell, for both dispatchers.
//!
//! Two rows, both run in fast and full mode (the pair is cheap — the
//! smoke fleet at a 10 s horizon — so `scripts/bench_check.sh` can guard
//! both against the recorded reference):
//!
//! * `failover/quick_nofail` — the blind decayed-load baseline: same
//!   epoch loop, same fault stream, no quarantine or re-dispatch. Its
//!   recorded row carries `lost` (threads stranded on crashed machines)
//!   and `arrivals`, so the artefact itself shows the baseline *loses*
//!   work.
//! * `failover/quick_fail` — the health-aware dispatcher. Its `lost`
//!   extra is the tentpole claim: strictly below the baseline's at the
//!   identical fault stream.
//!
//! With `DIKE_BENCH_JSON=<path>` set, results are also written as JSON —
//! `scripts/bench.sh` records them into `results/BENCH_failover.json`.

use dike_experiments::failover::{cell_config, FAILOVER_SEED};
use dike_experiments::fleet::smoke_config;
use dike_fleet::FleetRunner;
use dike_util::bench::Bench;
use dike_util::json::{Num, Value};
use dike_util::{pool, Pool};
use std::hint::black_box;

fn main() {
    let mut b = Bench::from_env();
    let fast = std::env::var("DIKE_BENCH_FAST").is_ok_and(|v| v == "1");
    let pool = Pool::from_env();
    let runner = FleetRunner::new(smoke_config(FAILOVER_SEED));

    // The harshest grid cell: crash 0.2 × brownout 0.15, budget 2.
    // (name, lost, arrivals) per row, recorded into the JSON extras.
    let mut extras: Vec<(String, u64, u64)> = Vec::new();
    for (name, failover) in [
        ("failover/quick_nofail", false),
        ("failover/quick_fail", true),
    ] {
        let fo = cell_config(0.2, 0.15, 2, failover);
        let mut lost = 0u64;
        let mut arrivals = 0u64;
        b.bench(name, || {
            let r = runner.run_failover(&pool, &fo);
            lost = r.ledger.lost;
            arrivals = r.ledger.dispatched;
            black_box(r.mean_windowed_fairness)
        });
        extras.push((name.to_string(), lost, arrivals));
    }

    if let Ok(path) = std::env::var("DIKE_BENCH_JSON") {
        let benches: Vec<Value> = b
            .results()
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("name".into(), Value::Str(r.name.clone())),
                    (
                        "iters_per_sample".into(),
                        Value::Num(Num::U(r.iters_per_sample)),
                    ),
                    ("min_ns".into(), Value::Num(Num::F(r.min_ns))),
                    ("median_ns".into(), Value::Num(Num::F(r.median_ns))),
                    ("mean_ns".into(), Value::Num(Num::F(r.mean_ns))),
                ];
                // The fault-tolerance extras (ignored by bench_check's
                // median comparison, read by EXPERIMENTS.md): threads
                // offered and threads lost at the harsh cell.
                if let Some((_, lost, arrivals)) =
                    extras.iter().find(|(name, _, _)| *name == r.name)
                {
                    fields.push(("arrivals".into(), Value::Num(Num::U(*arrivals))));
                    fields.push(("lost".into(), Value::Num(Num::U(*lost))));
                }
                Value::Object(fields)
            })
            .collect();
        let doc = Value::Object(vec![
            (
                "host_threads".into(),
                Value::Num(Num::U(
                    std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
                )),
            ),
            (
                "pool_threads".into(),
                Value::Num(Num::U(pool::num_threads() as u64)),
            ),
            ("fast_mode".into(), Value::Bool(fast)),
            ("benches".into(), Value::Array(benches)),
        ]);
        std::fs::write(&path, doc.render() + "\n").expect("write DIKE_BENCH_JSON");
        println!("wrote {path}");
    }

    b.finish();
}
