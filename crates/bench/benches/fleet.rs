//! Fleet bench: wall-clock of a whole fleet lap — tenant trace
//! generation, the open-loop dispatch pre-pass, every machine's
//! open-system run over the pool workers, and the fleet-wide windowed
//! fairness roll-up.
//!
//! Two rows:
//!
//! * `fleet/dike_8m_12t` — the smoke fleet, run in both fast and full
//!   mode. This is the row `scripts/bench_check.sh` guards (same
//!   configuration in both modes, so the smoke-vs-reference ratio is a
//!   pure host-speed measurement).
//! * `fleet/dike_64m_96t` — the headline fleet: 64 machines, 96
//!   tenants, >1M simulated thread-arrivals per lap. Full mode only; a
//!   smoke lap at this size would dominate CI. Its recorded row carries
//!   `arrivals` and `arrivals_per_sec` so the throughput trajectory is
//!   visible release over release.
//! * `fleet/dike_<N>m_quick` — the wide fleet: `--machines` machines
//!   (default 1024) with a quick 2 s horizon, probing the ROADMAP's
//!   "thousands of machines" knob. Full mode only, like the headline;
//!   pass `--machines <N> --quick` after `--` to re-run it at another
//!   width (`--quick` additionally skips the 64m headline row).
//!
//! With `DIKE_BENCH_JSON=<path>` set, results are also written as JSON —
//! `scripts/bench.sh` records them into `results/BENCH_fleet.json`.

use dike_experiments::fleet::{headline_config, smoke_config, wide_quick_config, FLEET_SEED};
use dike_fleet::FleetRunner;
use dike_util::bench::Bench;
use dike_util::json::{Num, Value};
use dike_util::{pool, Pool};
use std::hint::black_box;

fn main() {
    let mut b = Bench::from_env();
    let fast = std::env::var("DIKE_BENCH_FAST").is_ok_and(|v| v == "1");
    let pool = Pool::from_env();

    // `--machines <N>` resizes the wide row; `--quick` drops the headline
    // row so a wide-fleet probe doesn't pay for the 64m lap too.
    let mut wide_machines = 1024usize;
    let mut quick_only = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--machines" => {
                wide_machines = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--machines needs a count");
            }
            "--quick" => quick_only = true,
            _ => {}
        }
    }

    // (row name, arrivals per lap), recorded into the JSON extras.
    let mut arrivals: Vec<(String, u64)> = Vec::new();

    let smoke = FleetRunner::new(smoke_config(FLEET_SEED));
    let mut smoke_arrivals = 0u64;
    b.bench("fleet/dike_8m_12t", || {
        let r = smoke.run(&pool);
        smoke_arrivals = r.total_arrivals;
        black_box(r.mean_windowed_fairness)
    });
    arrivals.push(("fleet/dike_8m_12t".to_string(), smoke_arrivals));

    if !fast && !quick_only {
        let headline = FleetRunner::new(headline_config(FLEET_SEED));
        let mut headline_arrivals = 0u64;
        b.bench("fleet/dike_64m_96t", || {
            let r = headline.run(&pool);
            headline_arrivals = r.total_arrivals;
            black_box(r.mean_windowed_fairness)
        });
        arrivals.push(("fleet/dike_64m_96t".to_string(), headline_arrivals));
    }

    if !fast {
        let name = format!("fleet/dike_{wide_machines}m_quick");
        let wide = FleetRunner::new(wide_quick_config(wide_machines, FLEET_SEED));
        let mut wide_arrivals = 0u64;
        b.bench(&name, || {
            let r = wide.run(&pool);
            wide_arrivals = r.total_arrivals;
            black_box(r.mean_windowed_fairness)
        });
        arrivals.push((name, wide_arrivals));
    }

    if let Ok(path) = std::env::var("DIKE_BENCH_JSON") {
        let benches: Vec<Value> = b
            .results()
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("name".into(), Value::Str(r.name.clone())),
                    (
                        "iters_per_sample".into(),
                        Value::Num(Num::U(r.iters_per_sample)),
                    ),
                    ("min_ns".into(), Value::Num(Num::F(r.min_ns))),
                    ("median_ns".into(), Value::Num(Num::F(r.median_ns))),
                    ("mean_ns".into(), Value::Num(Num::F(r.mean_ns))),
                ];
                // Throughput extras (ignored by bench_check's median
                // comparison, read by EXPERIMENTS.md): how many simulated
                // thread-arrivals one lap dispatches and completes, and
                // the resulting arrivals per wall-clock second.
                if let Some((_, n)) = arrivals.iter().find(|(name, _)| *name == r.name) {
                    fields.push(("arrivals".into(), Value::Num(Num::U(*n))));
                    fields.push((
                        "arrivals_per_sec".into(),
                        Value::Num(Num::F(*n as f64 / (r.median_ns / 1e9))),
                    ));
                }
                Value::Object(fields)
            })
            .collect();
        let doc = Value::Object(vec![
            (
                "host_threads".into(),
                Value::Num(Num::U(
                    std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
                )),
            ),
            (
                "pool_threads".into(),
                Value::Num(Num::U(pool::num_threads() as u64)),
            ),
            ("fast_mode".into(), Value::Bool(fast)),
            ("benches".into(), Value::Array(benches)),
        ]);
        std::fs::write(&path, doc.render() + "\n").expect("write DIKE_BENCH_JSON");
        println!("wrote {path}");
    }

    b.finish();
}
