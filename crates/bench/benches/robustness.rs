//! Robustness bench: wall-clock of one fault-injected cell — the seeded
//! per-channel fault draws in the driver's hot loop, the hardened
//! observer's holdover bookkeeping, and the actuation planner's
//! verify/retry pass.
//!
//! Three points bracket the cost: the zero-fault hardened cell (the
//! injection layer gated off — only the planner's verify pass and any
//! retries against the substrate balancer remain), and the worst
//! telemetry level for both the trusting and the hardened pipeline (the
//! per-thread-per-quantum fault hashing plus degradation machinery).
//! Regressions here usually mean the fault gate leaked work onto the
//! zero-fault path or the holdover scan stopped being linear.
//!
//! With `DIKE_BENCH_JSON=<path>` set, results are also written as JSON —
//! `scripts/bench.sh` uses this to record the numbers into
//! `results/BENCH_robustness.json`.

use dike_experiments::robustness::run_robustness_cell;
use dike_experiments::{RunOptions, SchedKind};
use dike_machine::{presets, FaultConfig};
use dike_scheduler::SchedConfig;
use dike_util::bench::Bench;
use dike_util::json::{Num, Value};
use dike_util::pool;
use std::hint::black_box;

fn main() {
    let mut b = Bench::from_env();
    let fast = std::env::var("DIKE_BENCH_FAST").is_ok_and(|v| v == "1");

    let opts = RunOptions {
        scale: if fast { 0.01 } else { 0.02 },
        deadline_s: 120.0,
        ..RunOptions::default()
    };
    let base = presets::paper_machine(opts.seed);
    let mut worst = base.clone();
    worst.faults = FaultConfig::telemetry_axis(0.30, opts.seed);

    let cases: [(&str, &dike_machine::MachineConfig, SchedKind); 3] = [
        (
            "robustness/zero_fault_dike_h",
            &base,
            SchedKind::DikeHardened,
        ),
        (
            "robustness/telemetry30_dike",
            &worst,
            SchedKind::Dike(SchedConfig::DEFAULT),
        ),
        (
            "robustness/telemetry30_dike_h",
            &worst,
            SchedKind::DikeHardened,
        ),
    ];
    for (name, cfg, kind) in &cases {
        b.bench(name, || {
            let point = run_robustness_cell("telemetry", 0.30, black_box(cfg), kind, &opts);
            black_box(point.mean_windowed_fairness)
        });
    }

    if let Ok(path) = std::env::var("DIKE_BENCH_JSON") {
        let benches: Vec<Value> = b
            .results()
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("name".into(), Value::Str(r.name.clone())),
                    (
                        "iters_per_sample".into(),
                        Value::Num(Num::U(r.iters_per_sample)),
                    ),
                    ("min_ns".into(), Value::Num(Num::F(r.min_ns))),
                    ("median_ns".into(), Value::Num(Num::F(r.median_ns))),
                    ("mean_ns".into(), Value::Num(Num::F(r.mean_ns))),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            (
                "host_threads".into(),
                Value::Num(Num::U(
                    std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
                )),
            ),
            (
                "pool_threads".into(),
                Value::Num(Num::U(pool::num_threads() as u64)),
            ),
            ("fast_mode".into(), Value::Bool(fast)),
            ("benches".into(), Value::Array(benches)),
        ]);
        std::fs::write(&path, doc.render() + "\n").expect("write DIKE_BENCH_JSON");
        println!("wrote {path}");
    }

    b.finish();
}
