//! Ablation benches for the design choices DESIGN.md calls out: each bench
//! times the full comparison run with one Dike mechanism altered, so
//! regressions in the *cost* of a mechanism show up here. The *quality*
//! effect of each ablation is reported by the `ablations` binary in
//! `dike-experiments` (benchmarks time, binaries measure outcomes).

use dike_bench::bench_opts;
use dike_experiments::{run_cell, SchedKind};
use dike_machine::presets;
use dike_scheduler::{CoreBwEstimate, CoreRanking, DikeConfig};
use dike_util::bench::Bench;
use dike_workloads::paper;
use std::hint::black_box;

fn ablation_configs() -> Vec<(&'static str, DikeConfig)> {
    vec![
        ("dike_default", DikeConfig::default()),
        (
            "dike_no_prediction",
            DikeConfig {
                use_prediction: false,
                ..DikeConfig::default()
            },
        ),
        (
            "dike_no_cooldown",
            DikeConfig {
                cooldown: false,
                ..DikeConfig::default()
            },
        ),
        (
            "dike_demand_gated_corebw",
            DikeConfig {
                core_bw_estimate: CoreBwEstimate::DemandGated,
                ..DikeConfig::default()
            },
        ),
        (
            "dike_observed_bw_ranking",
            DikeConfig {
                core_ranking: CoreRanking::ObservedBandwidth,
                ..DikeConfig::default()
            },
        ),
    ]
}

fn main() {
    let mut b = Bench::from_env();
    let opts = bench_opts();
    let machine = presets::paper_machine(opts.seed);
    let wl = paper::workload(1);
    for (name, cfg) in ablation_configs() {
        b.bench(&format!("ablation/{name}"), || {
            let cell = run_cell(
                black_box(&machine),
                &wl,
                &SchedKind::DikeCustom(cfg.clone()),
                &opts,
            );
            black_box((cell.fairness, cell.swaps))
        });
    }
    b.finish();
}
