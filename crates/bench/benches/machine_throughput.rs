//! Simulator-throughput microbenchmarks: simulated milliseconds per wall
//! second for the paper machine under a full 40-thread workload, plus the
//! memory-contention solver in isolation.

use dike_machine::{presets, solve_memory, Machine, MemDemand, MemoryConfig, SimTime};
use dike_util::bench::Bench;
use dike_workloads::{paper, Placement};
use std::hint::black_box;

fn machine_ticks(b: &mut Bench) {
    // One warm machine for the whole benchmark; each iteration advances
    // 100 ticks (100 simulated ms).
    let mut machine = Machine::new(presets::paper_machine(1));
    paper::workload(1).spawn(&mut machine, Placement::Interleaved, 100.0);
    b.bench("machine/tick_40_threads_x100", || {
        machine.run_for(SimTime::from_ms(100));
        black_box(machine.now())
    });
}

fn memory_solver(b: &mut Bench) {
    let cfg = MemoryConfig::default();
    let demands: Vec<MemDemand> = (0..40)
        .map(|i| MemDemand {
            base_time_per_instr: if i < 20 { 1.0 / 2.33e9 } else { 1.0 / 1.21e9 },
            miss_ratio: if i % 5 < 2 { 0.028 } else { 0.002 },
        })
        .collect();
    b.bench("solve_memory_40_demands", || {
        black_box(solve_memory(black_box(&demands), &cfg))
    });
}

fn main() {
    let mut b = Bench::from_env();
    machine_ticks(&mut b);
    memory_solver(&mut b);
    b.finish();
}
