//! One Criterion bench per paper table/figure: each iteration regenerates
//! the artefact at a reduced scale, so `cargo bench` both times the full
//! pipeline and exercises every experiment end to end.
//!
//! Figures that sweep the whole 32-point configuration grid (2, 4, 5) are
//! benched on a single representative workload to keep iteration time sane
//! on one core; their binaries run the full versions.

use criterion::{criterion_group, criterion_main, Criterion};
use dike_bench::bench_opts;
use dike_experiments::{fig1, fig6, fig7, fig8, sweep, table3};
use dike_machine::presets;
use dike_workloads::paper;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("fig1_standalone_vs_concurrent", |b| {
        b.iter(|| {
            let rows = fig1::run(black_box(&opts));
            black_box(rows.len())
        })
    });
}

fn bench_config_sweep(c: &mut Criterion) {
    // Shared core of Figures 2, 4 and 5: one full 32-config sweep.
    let opts = bench_opts();
    let machine = presets::paper_machine(opts.seed);
    let wl = paper::workload(2);
    c.bench_function("fig2_fig4_fig5_config_sweep", |b| {
        b.iter(|| {
            let s = sweep::sweep_workload(black_box(&machine), &wl, &opts);
            black_box(s.best_fairness())
        })
    });
}

fn bench_fig6a(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("fig6a_fairness", |b| {
        b.iter(|| {
            let fig = fig6::run_subset(black_box(&opts), &[1, 9, 13]);
            black_box(fig.fairness_improvements())
        })
    });
}

fn bench_fig6b(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("fig6b_performance", |b| {
        b.iter(|| {
            let fig = fig6::run_subset(black_box(&opts), &[1, 9, 13]);
            black_box(fig.speedups())
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("fig7_prediction_error", |b| {
        b.iter(|| {
            let rows = fig7::run_subset(black_box(&opts), &[1, 6, 13]);
            black_box(rows.len())
        })
    });
}

fn bench_fig8(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("fig8_prediction_trace", |b| {
        b.iter(|| {
            let traces = fig8::run_subset(black_box(&opts), &[6]);
            black_box(traces[0].series.len())
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("table3_swap_counts", |b| {
        b.iter(|| {
            let t3 = table3::run_subset(black_box(&opts), &[1, 13]);
            black_box(t3.averages())
        })
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_config_sweep, bench_fig6a, bench_fig6b,
              bench_fig7, bench_fig8, bench_table3
}
criterion_main!(paper);
