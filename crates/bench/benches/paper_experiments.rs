//! One bench per paper table/figure: each iteration regenerates the
//! artefact at a reduced scale, so `cargo bench` both times the full
//! pipeline and exercises every experiment end to end.
//!
//! Figures that sweep the whole 32-point configuration grid (2, 4, 5) are
//! benched on a single representative workload to keep iteration time sane
//! on one core; their binaries run the full versions.

use dike_bench::bench_opts;
use dike_experiments::{fig1, fig6, fig7, fig8, sweep, table3};
use dike_machine::presets;
use dike_util::bench::Bench;
use dike_workloads::paper;
use std::hint::black_box;

fn main() {
    let mut b = Bench::from_env();
    let opts = bench_opts();

    b.bench("fig1_standalone_vs_concurrent", || {
        let rows = fig1::run(black_box(&opts));
        black_box(rows.len())
    });

    // Shared core of Figures 2, 4 and 5: one full 32-config sweep.
    let machine = presets::paper_machine(opts.seed);
    let wl = paper::workload(2);
    b.bench("fig2_fig4_fig5_config_sweep", || {
        let s = sweep::sweep_workload(black_box(&machine), &wl, &opts);
        black_box(s.best_fairness())
    });

    b.bench("fig6a_fairness", || {
        let fig = fig6::run_subset(black_box(&opts), &[1, 9, 13]);
        black_box(fig.fairness_improvements())
    });

    b.bench("fig6b_performance", || {
        let fig = fig6::run_subset(black_box(&opts), &[1, 9, 13]);
        black_box(fig.speedups())
    });

    b.bench("fig7_prediction_error", || {
        let rows = fig7::run_subset(black_box(&opts), &[1, 6, 13]);
        black_box(rows.len())
    });

    b.bench("fig8_prediction_trace", || {
        let traces = fig8::run_subset(black_box(&opts), &[6]);
        black_box(traces[0].series.len())
    });

    b.bench("table3_swap_counts", || {
        let t3 = table3::run_subset(black_box(&opts), &[1, 13]);
        black_box(t3.averages())
    });

    b.finish();
}
