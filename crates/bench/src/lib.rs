//! # dike-bench — benchmark support library
//!
//! Shared helpers for the `dike_util::bench` targets in `benches/`: one
//! bench per paper table/figure (regenerating each artefact at a reduced,
//! benchmark-friendly scale) plus scheduler-overhead and
//! simulator-throughput microbenchmarks and the design-choice ablations.

use dike_experiments::RunOptions;

/// The reduced scale used by the figure-regeneration benches: large enough
/// for every scheduler mechanism to engage (several dozen quanta), small
/// enough for the bench runner to iterate.
pub const BENCH_SCALE: f64 = 0.03;

/// Run options for benchmark iterations.
pub fn bench_opts() -> RunOptions {
    RunOptions {
        scale: BENCH_SCALE,
        deadline_s: 60.0,
        ..RunOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_opts_are_small_but_nontrivial() {
        let o = bench_opts();
        assert!(o.scale > 0.0 && o.scale < 0.2);
        assert!(o.deadline_s >= 30.0);
    }
}
