//! Compare a smoke bench run against committed reference medians.
//!
//! Usage: `bench_check <smoke.json> <reference.json> [tolerance]`
//!
//! For every benchmark name present in both files, the smoke median must
//! not exceed `tolerance ×` the committed median (default 3.0, or
//! `DIKE_BENCH_TOLERANCE`). The check is one-sided: smoke mode runs the
//! same or less work per iteration than the recorded full run (smaller
//! workload scales, same hot paths), so "much slower than the reference"
//! signals a perf regression while "faster" never does. See
//! `EXPERIMENTS.md` for why the tolerance is this loose.

use dike_util::json::{self, Value};
use std::process::ExitCode;

/// `(name, median_ns)` pairs from a `scripts/bench.sh` JSON document.
fn medians(doc: &Value) -> Result<Vec<(String, f64)>, String> {
    let benches = doc
        .field("benches")
        .and_then(|b| b.items().map(<[Value]>::to_vec))
        .map_err(|e| format!("bad bench document: {e:?}"))?;
    benches
        .iter()
        .map(|b| {
            let name = match b.field("name") {
                Ok(Value::Str(s)) => s.clone(),
                other => return Err(format!("bad bench name: {other:?}")),
            };
            let median = match b.field("median_ns") {
                Ok(Value::Num(n)) => n.as_f64(),
                other => return Err(format!("bad median for {name}: {other:?}")),
            };
            Ok((name, median))
        })
        .collect()
}

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))?;
    medians(&doc)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [smoke_path, ref_path, rest @ ..] = args.as_slice() else {
        return Err("usage: bench_check <smoke.json> <reference.json> [tolerance]".into());
    };
    let tolerance: f64 = match rest {
        [] => std::env::var("DIKE_BENCH_TOLERANCE")
            .ok()
            .map(|v| {
                v.parse()
                    .map_err(|e| format!("bad DIKE_BENCH_TOLERANCE: {e}"))
            })
            .transpose()?
            .unwrap_or(3.0),
        [t] => t.parse().map_err(|e| format!("bad tolerance {t:?}: {e}"))?,
        _ => return Err("too many arguments".into()),
    };

    let smoke = load(smoke_path)?;
    let reference = load(ref_path)?;
    let mut ok = true;
    let mut compared = 0usize;
    for (name, m) in &smoke {
        let Some((_, r)) = reference.iter().find(|(n, _)| n == name) else {
            println!("SKIP  {name}: not in reference");
            continue;
        };
        compared += 1;
        let ratio = m / r;
        let verdict = if ratio <= tolerance { "ok  " } else { "SLOW" };
        println!(
            "{verdict}  {name}: smoke {m:.0} ns vs recorded {r:.0} ns ({ratio:.2}x, limit {tolerance:.1}x)"
        );
        if ratio > tolerance {
            ok = false;
        }
    }
    if compared == 0 {
        return Err("no benchmark names in common — wrong files?".into());
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("bench_check: OK");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("bench_check: FAIL (median above tolerance)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_check: {e}");
            ExitCode::from(2)
        }
    }
}
