//! The quantum driver: connects a policy to the machine.
//!
//! The driver advances the machine one scheduling quantum at a time, builds
//! a [`SystemView`] from counter deltas at each boundary, invokes the
//! scheduler, and applies the resulting migrations — mirroring a userspace
//! contention-aware scheduler daemon reading perf counters and calling
//! `sched_setaffinity` on a timer.

use crate::scheduler::Scheduler;
use crate::view::{Actions, CoreObservation, SystemView, ThreadObservation};
use dike_counters::RateSample;
use dike_machine::{CoreCounters, Machine, SimTime, ThreadCounters, ThreadId, VCoreId};

/// Outcome of a driven run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Scheduler name.
    pub scheduler: String,
    /// Wall time when the run ended (all threads done, or the deadline).
    pub wall: SimTime,
    /// True if every thread finished before the deadline.
    pub completed: bool,
    /// Per-thread results, in thread-id order.
    pub threads: Vec<ThreadResult>,
    /// Number of scheduling quanta executed.
    pub quanta: u64,
    /// Total migrations applied by the policy.
    pub migrations: u64,
    /// Swap operations (a swap = a pair of migrations, as in Table III).
    pub swaps: u64,
}

/// One thread's result.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadResult {
    /// Thread id.
    pub id: ThreadId,
    /// Application index (dense; matches spawn order).
    pub app: u32,
    /// Application name.
    pub app_name: String,
    /// Completion time, if the thread finished.
    pub finished_at: Option<SimTime>,
    /// Final cumulative counters.
    pub counters: ThreadCounters,
}

impl RunResult {
    /// Per-app thread runtimes in seconds. Unfinished threads are charged
    /// the full wall time (a fairness-conservative choice: a straggler that
    /// never finished is maximally unfair).
    pub fn per_app_runtimes(&self) -> Vec<(u32, Vec<f64>)> {
        let mut apps: Vec<u32> = self.threads.iter().map(|t| t.app).collect();
        apps.sort_unstable();
        apps.dedup();
        apps.into_iter()
            .map(|app| {
                let times: Vec<f64> = self
                    .threads
                    .iter()
                    .filter(|t| t.app == app)
                    .map(|t| {
                        t.finished_at
                            .map(|f| f.as_secs_f64())
                            .unwrap_or(self.wall.as_secs_f64())
                    })
                    .collect();
                (app, times)
            })
            .collect()
    }

    /// Runtimes of one app's threads.
    pub fn app_runtimes(&self, app: u32) -> Vec<f64> {
        self.per_app_runtimes()
            .into_iter()
            .find(|(a, _)| *a == app)
            .map(|(_, v)| v)
            .unwrap_or_default()
    }
}

/// Run `scheduler` over `machine` until all threads finish or `deadline`.
pub fn run(machine: &mut Machine, scheduler: &mut dyn Scheduler, deadline: SimTime) -> RunResult {
    run_with(machine, scheduler, deadline, |_| {})
}

/// Like [`run`], additionally invoking `observer` with every view built at
/// a quantum boundary (used by the experiment harness to trace access
/// rates, prediction errors, utilisation, …).
pub fn run_with(
    machine: &mut Machine,
    scheduler: &mut dyn Scheduler,
    deadline: SimTime,
    mut observer: impl FnMut(&SystemView),
) -> RunResult {
    let tick = machine.config().tick_us;
    let clamp_quantum = |q: SimTime| -> SimTime {
        let us = q.as_us().max(tick);
        SimTime::from_us(us - us % tick)
    };

    let mut quantum = clamp_quantum(scheduler.initial_quantum());
    let n_threads = machine.num_threads();
    let n_vcores = machine.config().topology.num_vcores();
    let mut prev_thread: Vec<ThreadCounters> = (0..n_threads)
        .map(|i| machine.counters(ThreadId(i as u32)))
        .collect();
    let mut prev_core: Vec<CoreCounters> = (0..n_vcores)
        .map(|v| machine.core_counters(VCoreId(v as u32)))
        .collect();

    let mut quanta = 0u64;
    let migrations_before = machine.total_migrations();

    while !machine.all_done() && machine.now() < deadline {
        let remaining = deadline.saturating_sub(machine.now());
        let step = clamp_quantum(if quantum.as_us() < remaining.as_us() {
            quantum
        } else {
            remaining
        });
        machine.run_for(step);
        quanta += 1;

        if machine.all_done() {
            break;
        }

        // Build the view from counter deltas.
        let dt_s = step.as_secs_f64();
        let mut threads = Vec::new();
        #[allow(clippy::needless_range_loop)] // i indexes two parallel arrays
        for i in 0..n_threads {
            let id = ThreadId(i as u32);
            if machine.finish_time(id).is_some() {
                // Still update prev so a thread finishing mid-run does not
                // distort later deltas (it cannot, but keep it coherent).
                prev_thread[i] = machine.counters(id);
                continue;
            }
            let cur = machine.counters(id);
            let d = cur.delta(&prev_thread[i]);
            let rates = RateSample::from_deltas(
                d.instructions,
                d.llc_misses,
                d.llc_accesses,
                d.cycles,
                dt_s,
            );
            threads.push(ThreadObservation {
                id,
                app: machine.app_of(id),
                vcore: machine.vcore_of(id),
                rates,
                cumulative: cur,
                migrated_last_quantum: d.migrations > 0,
            });
            prev_thread[i] = cur;
        }
        let mut cores = Vec::with_capacity(n_vcores);
        #[allow(clippy::needless_range_loop)] // v indexes a parallel array
        for v in 0..n_vcores {
            let vid = VCoreId(v as u32);
            let cur = machine.core_counters(vid);
            let d = cur.delta(&prev_core[v]);
            prev_core[v] = cur;
            let occupants: Vec<ThreadId> = threads
                .iter()
                .filter(|t| t.vcore == vid)
                .map(|t| t.id)
                .collect();
            cores.push(CoreObservation {
                id: vid,
                kind: machine.config().topology.kind_of(vid),
                domain: machine.config().topology.domain_of(vid),
                bandwidth: d.accesses / dt_s,
                occupants,
            });
        }
        let view = SystemView {
            now: machine.now(),
            quantum: step,
            quantum_index: quanta - 1,
            threads,
            cores,
        };

        observer(&view);

        let mut actions = Actions::default();
        scheduler.on_quantum(&view, &mut actions);
        for (t, v) in actions.migrations {
            machine.migrate(t, v);
        }
        if let Some(q) = actions.set_quantum {
            quantum = clamp_quantum(q);
        }
    }

    let migrations = machine.total_migrations() - migrations_before;
    RunResult {
        scheduler: scheduler.name().to_string(),
        wall: machine.now(),
        completed: machine.all_done(),
        threads: (0..n_threads)
            .map(|i| {
                let id = ThreadId(i as u32);
                ThreadResult {
                    id,
                    app: machine.app_of(id).0,
                    app_name: machine.app_name_of(id).to_string(),
                    finished_at: machine.finish_time(id),
                    counters: machine.counters(id),
                }
            })
            .collect(),
        quanta,
        migrations,
        swaps: migrations / 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::NullScheduler;
    use crate::view::SystemView;
    use dike_machine::{presets, AppId, Phase, PhaseProgram, ThreadSpec};

    fn spawn_pair(machine: &mut Machine) {
        for (i, vcore) in [(0u32, 0u32), (1, 4)] {
            machine.spawn(
                ThreadSpec {
                    app: AppId(i),
                    app_name: format!("app{i}"),
                    program: PhaseProgram::single(Phase::steady(0.8, 10.0, 2.0, 1e7), 2e9),
                    barrier: None,
                },
                VCoreId(vcore),
            );
        }
    }

    #[test]
    fn null_run_completes_and_reports() {
        let mut m = Machine::new(presets::small_machine(1));
        spawn_pair(&mut m);
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        let r = run(&mut m, &mut s, SimTime::from_secs_f64(60.0));
        assert!(r.completed);
        assert_eq!(r.scheduler, "null");
        assert_eq!(r.threads.len(), 2);
        assert_eq!(r.migrations, 0);
        assert_eq!(r.swaps, 0);
        assert!(r.quanta > 0);
        assert!(r.threads.iter().all(|t| t.finished_at.is_some()));
        let per_app = r.per_app_runtimes();
        assert_eq!(per_app.len(), 2);
        // Thread on the slow core takes longer.
        assert!(r.app_runtimes(1)[0] > r.app_runtimes(0)[0]);
    }

    #[test]
    fn deadline_cuts_run_short() {
        let mut m = Machine::new(presets::small_machine(1));
        spawn_pair(&mut m);
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        let r = run(&mut m, &mut s, SimTime::from_ms(300));
        assert!(!r.completed);
        assert_eq!(r.wall, SimTime::from_ms(300));
        // Unfinished threads are charged the wall time.
        assert_eq!(r.app_runtimes(0), vec![0.3]);
    }

    #[test]
    fn observer_sees_views_with_rates() {
        let mut m = Machine::new(presets::small_machine(1));
        spawn_pair(&mut m);
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        let mut seen = 0;
        let mut last_rate = 0.0;
        run_with(
            &mut m,
            &mut s,
            SimTime::from_ms(500),
            |view: &SystemView| {
                seen += 1;
                assert_eq!(view.threads.len(), 2);
                assert_eq!(view.cores.len(), 8);
                last_rate = view.threads[0].rates.access_rate;
                assert_eq!(view.quantum, SimTime::from_ms(100));
            },
        );
        assert!(seen >= 4, "saw {seen} views");
        assert!(last_rate > 0.0);
    }

    /// A scheduler that swaps the two threads once, then changes quantum.
    struct SwapOnce {
        done: bool,
    }
    impl Scheduler for SwapOnce {
        fn name(&self) -> &str {
            "swap-once"
        }
        fn initial_quantum(&self) -> SimTime {
            SimTime::from_ms(100)
        }
        fn on_quantum(&mut self, view: &SystemView, actions: &mut Actions) {
            if !self.done && view.threads.len() == 2 {
                let a = &view.threads[0];
                let b = &view.threads[1];
                actions.swap((a.id, a.vcore), (b.id, b.vcore));
                actions.set_quantum = Some(SimTime::from_ms(200));
                self.done = true;
            }
        }
    }

    #[test]
    fn migrations_are_applied_and_counted() {
        let mut m = Machine::new(presets::small_machine(1));
        spawn_pair(&mut m);
        let mut s = SwapOnce { done: false };
        let r = run(&mut m, &mut s, SimTime::from_secs_f64(60.0));
        assert_eq!(r.migrations, 2);
        assert_eq!(r.swaps, 1);
        assert!(r.completed);
    }

    #[test]
    fn quantum_is_clamped_to_ticks() {
        struct Odd;
        impl Scheduler for Odd {
            fn name(&self) -> &str {
                "odd"
            }
            fn initial_quantum(&self) -> SimTime {
                SimTime::from_us(1_500) // not a tick multiple
            }
            fn on_quantum(&mut self, _: &SystemView, _: &mut Actions) {}
        }
        let mut m = Machine::new(presets::small_machine(1));
        spawn_pair(&mut m);
        // Must not panic (run_for requires tick multiples).
        let r = run(&mut m, &mut Odd, SimTime::from_ms(10));
        assert!(r.quanta > 0);
    }
}
