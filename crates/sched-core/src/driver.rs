//! The quantum driver: connects a policy to the machine.
//!
//! The driver advances the machine one scheduling quantum at a time, builds
//! a [`SystemView`] from counter deltas at each boundary, invokes the
//! scheduler, and applies the resulting migrations — mirroring a userspace
//! contention-aware scheduler daemon reading perf counters and calling
//! `sched_setaffinity` on a timer.
//!
//! Two run modes share one event-driven loop:
//!
//! * **Closed** ([`run`]/[`run_with`]): every thread is spawned before the
//!   driver starts and the system runs to empty — the paper's batch mixes.
//! * **Open** ([`run_open`]/[`run_open_with`]): an arrival plan injects
//!   threads mid-run. Quantum boundaries stay on the regular grid the
//!   policy chose; arrival instants split a quantum into sub-segments so a
//!   thread starts executing at its arrival time, not at the next
//!   boundary. An arrival with no idle vcore waits in a FIFO queue until a
//!   departure frees a slot (slots are re-checked at every arrival instant
//!   and quantum boundary). An empty machine idles forward to the next
//!   arrival instead of terminating.
//!
//! The closed path is the open path with an empty plan, and is
//! byte-identical to the pre-open-system driver (enforced by the
//! `golden_stability` fixtures in `dike-experiments`).

use crate::scheduler::Scheduler;
use crate::view::{Actions, CoreObservation, SystemView, ThreadObservation};
use dike_counters::RateSample;
use dike_machine::{
    CoreCounters, FaultHasher, FaultKind, Machine, PartitionPlan, SimTime, ThreadCounters,
    ThreadId, ThreadSpec, VCoreId,
};
use std::collections::VecDeque;

/// A thread arrival scheduled for a future machine time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedSpawn {
    /// Machine time at which the thread arrives (rounded up to the tick
    /// grid by the driver).
    pub at: SimTime,
    /// What to spawn.
    pub spec: ThreadSpec,
}

/// Outcome of a driven run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Scheduler name.
    pub scheduler: String,
    /// Wall time when the run ended (all threads done, or the deadline).
    pub wall: SimTime,
    /// True if every thread finished before the deadline.
    pub completed: bool,
    /// Per-thread results, in thread-id order.
    pub threads: Vec<ThreadResult>,
    /// Number of scheduling quanta executed.
    pub quanta: u64,
    /// Total migrations applied by the policy.
    pub migrations: u64,
    /// Completed swap operations, as in Table III: planner/selector pairs
    /// where *both* members actually moved. Under actuation faults a pair
    /// can lose one member (fail, or a delay that never lands); such a
    /// half-swap is not a swap — the old `migrations / 2` accounting
    /// miscounted exactly those runs.
    pub swaps: u64,
    /// Applied migrations that were not part of a swap pair: planner
    /// re-issues of lost members, explicit single-thread placements.
    /// Fault-free, `migrations == 2 * swaps + unilateral_migrations`.
    pub unilateral_migrations: u64,
    /// LLC partition plans actually applied to the machine (after the
    /// actuation fault channel; failed or invalid plans are not counted).
    pub partitions: u64,
}

/// One thread's result.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadResult {
    /// Thread id.
    pub id: ThreadId,
    /// Application index (dense; matches spawn order).
    pub app: u32,
    /// Application name.
    pub app_name: String,
    /// Time the thread was spawned (zero in a closed run; the arrival
    /// instant in an open run).
    pub spawned_at: SimTime,
    /// Completion time, if the thread finished.
    pub finished_at: Option<SimTime>,
    /// Final cumulative counters.
    pub counters: ThreadCounters,
}

impl ThreadResult {
    /// Sojourn (response) time in seconds: completion minus arrival, the
    /// quantity fairness normalises by in an open system. An unfinished
    /// thread is charged up to `wall` (a fairness-conservative choice: a
    /// straggler that never finished is maximally unfair). Equal to the
    /// absolute completion time in a closed run, where `spawned_at` is 0.
    pub fn sojourn_secs(&self, wall: SimTime) -> f64 {
        self.finished_at
            .unwrap_or(wall)
            .saturating_sub(self.spawned_at)
            .as_secs_f64()
    }
}

impl RunResult {
    /// Per-app thread sojourn times in seconds, for every app present.
    pub fn per_app_runtimes(&self) -> Vec<(u32, Vec<f64>)> {
        let mut apps: Vec<u32> = self.threads.iter().map(|t| t.app).collect();
        apps.sort_unstable();
        apps.dedup();
        apps.into_iter()
            .map(|app| (app, self.app_runtimes(app)))
            .collect()
    }

    /// Sojourn times of one app's threads, without rebuilding the whole
    /// per-app table.
    pub fn app_runtimes(&self, app: u32) -> Vec<f64> {
        self.threads
            .iter()
            .filter(|t| t.app == app)
            .map(|t| t.sojourn_secs(self.wall))
            .collect()
    }
}

/// A pair the policy requested this (or an earlier, delay-extended)
/// quantum, still waiting for both members' actuation outcomes.
#[derive(Debug, Clone, Copy)]
struct PendingPair {
    /// Globally unique pair token (monotone across quanta).
    token: u64,
    /// Members that actually changed placement.
    hits: u8,
    /// Members whose outcome is still unknown (delayed in flight).
    outstanding: u8,
}

/// Delayed-pair sentinel: the migration carries no pair (unilateral).
const NO_PAIR_TOKEN: u64 = u64::MAX;

/// Reusable buffers for the driver's per-quantum work.
///
/// Everything the quantum loop needs — the [`SystemView`] (threads,
/// cores, CSR occupancy), the [`Actions`] passed to the policy, counter
/// snapshots, fault-draw buffers, admission scratch — lives here and is
/// reused across quanta and across runs, so the steady-state loop
/// performs no heap allocation. [`run_with`]/[`run_open_with`] create
/// one internally; harnesses that drive many runs back to back can hold
/// one [`DriverScratch`] and pass it to the `_scratch` variants.
#[derive(Debug, Default)]
pub struct DriverScratch {
    view: SystemView,
    actions: Actions,
    prev_thread: Vec<ThreadCounters>,
    prev_finished: Vec<bool>,
    prev_core: Vec<CoreCounters>,
    arrived: Vec<ThreadId>,
    /// Previous quantum's *true* per-thread rates, for stale-sample replay.
    last_rates: Vec<RateSample>,
    /// Whether a true sample exists for each thread (a stale draw before
    /// the first sample has nothing to replay — see the dropout fallback).
    rate_seen: Vec<bool>,
    telemetry: Vec<Option<FaultKind>>,
    noise: Vec<f64>,
    occupied: Vec<bool>,
    idle: Vec<VCoreId>,
    occ_cursor: Vec<u32>,
    /// Migrations deferred by the delay channel: (land at quantum counter,
    /// thread, target, pair token or [`NO_PAIR_TOKEN`]). FIFO-ordered
    /// because the delay is constant.
    delayed: VecDeque<(u64, ThreadId, VCoreId, u64)>,
    pending_pairs: Vec<PendingPair>,
    /// A partition plan deferred by the actuation delay channel: (land at
    /// quantum counter, plan). At most one — a newer delayed plan
    /// supersedes an older one, mirroring the machine's whole-plan apply
    /// semantics.
    delayed_partition: Option<(u64, PartitionPlan)>,
}

impl DriverScratch {
    /// Fresh scratch (no capacity reserved yet; it grows to steady state
    /// over the first quantum and stays there).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear all per-run state, retaining buffer capacity.
    fn reset(&mut self) {
        self.view.threads.clear();
        self.view.cores.clear();
        self.view.arrived.clear();
        self.view.departed.clear();
        self.view.occ_offsets.clear();
        self.view.occ_ids.clear();
        self.actions.clear();
        self.prev_thread.clear();
        self.prev_finished.clear();
        self.prev_core.clear();
        self.arrived.clear();
        self.last_rates.clear();
        self.rate_seen.clear();
        self.telemetry.clear();
        self.noise.clear();
        self.occupied.clear();
        self.idle.clear();
        self.occ_cursor.clear();
        self.delayed.clear();
        self.pending_pairs.clear();
        self.delayed_partition = None;
    }
}

/// Record one member's actuation outcome on its pending pair.
fn credit_pair(pairs: &mut [PendingPair], token: u64, applied: bool) {
    if let Some(p) = pairs.iter_mut().find(|p| p.token == token) {
        p.outstanding -= 1;
        if applied {
            p.hits += 1;
        }
    }
}

/// Run `scheduler` over `machine` until all threads finish or `deadline`.
pub fn run(machine: &mut Machine, scheduler: &mut dyn Scheduler, deadline: SimTime) -> RunResult {
    run_with(machine, scheduler, deadline, |_| {})
}

/// Like [`run`], additionally invoking `observer` with every view built at
/// a quantum boundary (used by the experiment harness to trace access
/// rates, prediction errors, utilisation, …).
pub fn run_with(
    machine: &mut Machine,
    scheduler: &mut dyn Scheduler,
    deadline: SimTime,
    observer: impl FnMut(&SystemView),
) -> RunResult {
    run_open_with(machine, scheduler, deadline, Vec::new(), observer)
}

/// [`run_with`] against caller-owned scratch buffers, for harnesses that
/// drive many runs and want later runs allocation-free too.
pub fn run_with_scratch(
    machine: &mut Machine,
    scheduler: &mut dyn Scheduler,
    deadline: SimTime,
    observer: impl FnMut(&SystemView),
    scratch: &mut DriverScratch,
) -> RunResult {
    run_open_with_scratch(machine, scheduler, deadline, Vec::new(), observer, scratch)
}

/// Run an open system: `arrivals` are injected mid-run, and the run ends
/// when the plan is drained, the wait queue is empty and every spawned
/// thread has finished (or at `deadline`).
pub fn run_open(
    machine: &mut Machine,
    scheduler: &mut dyn Scheduler,
    deadline: SimTime,
    arrivals: Vec<TimedSpawn>,
) -> RunResult {
    run_open_with(machine, scheduler, deadline, arrivals, |_| {})
}

/// [`run_open`] with a per-quantum view observer. This is the single
/// driver loop behind both run modes; see the module docs for the open
/// semantics (sub-segment execution at arrival instants, FIFO wait queue,
/// idle-forward on an empty machine).
pub fn run_open_with(
    machine: &mut Machine,
    scheduler: &mut dyn Scheduler,
    deadline: SimTime,
    arrivals: Vec<TimedSpawn>,
    observer: impl FnMut(&SystemView),
) -> RunResult {
    let mut scratch = DriverScratch::new();
    run_open_with_scratch(
        machine,
        scheduler,
        deadline,
        arrivals,
        observer,
        &mut scratch,
    )
}

std::thread_local! {
    /// Per-thread driver scratch for [`run_open_pooled`]: harnesses that
    /// drive many machines back to back on pool workers (the fleet layer
    /// runs hundreds of open-system loops per worker) share one warm
    /// buffer set per OS thread instead of reallocating per machine.
    static POOLED_SCRATCH: std::cell::RefCell<DriverScratch> =
        std::cell::RefCell::new(DriverScratch::new());
}

/// [`run_open`] against a per-OS-thread reusable [`DriverScratch`].
/// Results are identical to [`run_open`] (the scratch is reset per run —
/// see `scratch_reuse_is_equivalent_to_fresh_scratch`); only the buffer
/// reuse differs. This is the entry point the fleet layer drives its
/// machines through.
pub fn run_open_pooled(
    machine: &mut Machine,
    scheduler: &mut dyn Scheduler,
    deadline: SimTime,
    arrivals: Vec<TimedSpawn>,
) -> RunResult {
    POOLED_SCRATCH.with(|s| {
        run_open_with_scratch(
            machine,
            scheduler,
            deadline,
            arrivals,
            |_| {},
            &mut s.borrow_mut(),
        )
    })
}

/// [`run_open_with`] against caller-owned scratch buffers. After the
/// first quantum warms the buffers, the loop performs no steady-state
/// heap allocation (enforced by the workspace `zero_alloc` test).
pub fn run_open_with_scratch(
    machine: &mut Machine,
    scheduler: &mut dyn Scheduler,
    deadline: SimTime,
    arrivals: Vec<TimedSpawn>,
    observer: impl FnMut(&SystemView),
    scratch: &mut DriverScratch,
) -> RunResult {
    run_open_core(
        machine, scheduler, deadline, arrivals, observer, scratch, None,
    )
}

/// One *epoch* of an open-system run: [`run_open_pooled`] with the
/// deadline as an epoch cutoff, returning the undrained remainder instead
/// of dropping it. Queued-but-unadmitted specs come back first (due
/// immediately at the cutoff, FIFO order preserved), followed by plan
/// entries whose arrival instant lies beyond the cutoff, so a fleet can
/// feed them into the machine's next epoch — or re-dispatch them to a
/// peer when the machine failed. The returned [`RunResult`] is cumulative
/// over the machine's whole life since its last reset (thread lists grow
/// across epochs), exactly what the machine itself reports.
pub fn run_open_epoch_pooled(
    machine: &mut Machine,
    scheduler: &mut dyn Scheduler,
    until: SimTime,
    arrivals: Vec<TimedSpawn>,
) -> (RunResult, Vec<TimedSpawn>) {
    POOLED_SCRATCH.with(|s| {
        let mut leftovers = Vec::new();
        let result = run_open_core(
            machine,
            scheduler,
            until,
            arrivals,
            |_| {},
            &mut s.borrow_mut(),
            Some(&mut leftovers),
        );
        (result, leftovers)
    })
}

/// The single driver loop behind every run mode. With `leftovers` set,
/// undrained work at the deadline is drained into it instead of being
/// dropped (the epoch path); with `None` the behaviour is byte-identical
/// to the pre-epoch driver.
fn run_open_core(
    machine: &mut Machine,
    scheduler: &mut dyn Scheduler,
    deadline: SimTime,
    arrivals: Vec<TimedSpawn>,
    mut observer: impl FnMut(&SystemView),
    scratch: &mut DriverScratch,
    leftovers: Option<&mut Vec<TimedSpawn>>,
) -> RunResult {
    scratch.reset();
    let tick = machine.config().tick_us;
    let clamp_quantum = |q: SimTime| -> SimTime {
        let us = q.as_us().max(tick);
        SimTime::from_us(us - us % tick)
    };
    // The machine advances in whole ticks, so arrival instants round up to
    // the tick grid; equal-time arrivals keep their plan order.
    let mut pending: VecDeque<TimedSpawn> = {
        let mut a = arrivals;
        for ts in &mut a {
            let us = ts.at.as_us().div_ceil(tick) * tick;
            ts.at = SimTime::from_us(us);
        }
        a.sort_by_key(|ts| ts.at);
        a.into()
    };
    let mut waiting: VecDeque<ThreadSpec> = VecDeque::new();

    let mut quantum = clamp_quantum(scheduler.initial_quantum());
    let n_vcores = machine.config().topology.num_vcores();
    scratch
        .prev_thread
        .extend((0..machine.num_threads()).map(|i| machine.counters(ThreadId(i as u32))));
    scratch.prev_finished.extend(
        (0..machine.num_threads()).map(|i| machine.finish_time(ThreadId(i as u32)).is_some()),
    );
    scratch
        .prev_core
        .extend((0..n_vcores).map(|v| machine.core_counters(VCoreId(v as u32))));
    // Reserve for the run's full population up front so mid-run arrivals
    // and departures never grow a buffer: departures start quanta after
    // warmup, and a doubling there would break the steady-state
    // zero-allocation guarantee (see `tests/zero_alloc.rs`).
    let max_threads = machine.num_threads() + pending.len();
    scratch.view.departed.reserve(max_threads);
    scratch.arrived.reserve(max_threads);
    scratch.view.arrived.reserve(max_threads);
    scratch.prev_thread.reserve(pending.len());
    scratch.prev_finished.reserve(pending.len());

    // Core identity (id, kind, domain) is fixed at machine construction:
    // build the observation rows once and only refresh `bandwidth` per
    // quantum.
    for v in 0..n_vcores {
        let vid = VCoreId(v as u32);
        scratch.view.cores.push(CoreObservation {
            id: vid,
            kind: machine.config().topology.kind_of(vid),
            domain: machine.config().topology.domain_of(vid),
            bandwidth: 0.0,
        });
    }
    scratch.view.num_domains = machine.config().topology.num_domains();

    let mut quanta = 0u64;
    let migrations_before = machine.total_migrations();
    let mut swaps = 0u64;
    let mut unilateral = 0u64;
    let mut partitions = 0u64;
    let mut next_pair_token = 0u64;

    // Fault injection at the observe/act boundary (see `dike_machine::faults`).
    // With an all-zero config (`!faults_active`, the default) every guard
    // below is skipped and the loop is the exact pre-fault code path, so
    // fault-free runs stay byte-identical to the committed goldens.
    let faults = machine.config().faults;
    let faults_active = faults.is_active();
    let hasher = FaultHasher::new(&faults);

    // Admit everything due by `now`: move due plan entries to the wait
    // queue, then place queued specs (FIFO) on idle vcores, lowest id
    // first. Specs that find no slot stay queued until a departure frees
    // one.
    fn admit(
        machine: &mut Machine,
        pending: &mut VecDeque<TimedSpawn>,
        waiting: &mut VecDeque<ThreadSpec>,
        scratch: &mut DriverScratch,
    ) {
        while pending.front().is_some_and(|ts| ts.at <= machine.now()) {
            waiting.push_back(pending.pop_front().expect("checked front").spec);
        }
        if waiting.is_empty() {
            return;
        }
        machine.idle_vcores_into(&mut scratch.occupied, &mut scratch.idle);
        for i in 0..scratch.idle.len() {
            let Some(spec) = waiting.pop_front() else {
                break;
            };
            let id = machine.spawn(spec, scratch.idle[i]);
            scratch.prev_thread.push(machine.counters(id));
            scratch.prev_finished.push(false);
            scratch.arrived.push(id);
        }
    }

    while machine.now() < deadline {
        admit(machine, &mut pending, &mut waiting, scratch);
        let open_work_left = !pending.is_empty() || !waiting.is_empty();
        if machine.all_done() && !open_work_left {
            break;
        }

        // One scheduling quantum, executed in sub-segments so that a
        // mid-quantum arrival starts running at its arrival instant. With
        // an empty plan this is a single `run_for(step)` — the closed
        // path, byte-identical to the pre-open-system driver.
        let remaining = deadline.saturating_sub(machine.now());
        let step = clamp_quantum(if quantum.as_us() < remaining.as_us() {
            quantum
        } else {
            remaining
        });
        let q_end = machine.now() + step;
        while machine.now() < q_end {
            let seg_end = match pending.front() {
                Some(ts) if ts.at > machine.now() && ts.at < q_end => ts.at,
                _ => q_end,
            };
            machine.run_for(seg_end.saturating_sub(machine.now()));
            if machine.now() < q_end {
                admit(machine, &mut pending, &mut waiting, scratch);
            }
        }
        quanta += 1;

        if machine.all_done() && pending.is_empty() && waiting.is_empty() {
            break;
        }

        // Build the view from counter deltas, reusing the scratch-owned
        // buffers. A thread that arrived inside this quantum is observed
        // over the full quantum length (its rates slightly underestimate
        // its true rates for one quantum).
        let n_threads = machine.num_threads();
        let dt_s = step.as_secs_f64();
        scratch.view.threads.clear();
        scratch.view.departed.clear();
        if faults_active {
            if scratch.last_rates.len() < n_threads {
                scratch.last_rates.resize(n_threads, RateSample::default());
                scratch.rate_seen.resize(n_threads, false);
            }
            // One batched hash pass for the whole quantum's telemetry
            // draws instead of interleaving hash work per thread.
            hasher.fill_telemetry_quantum(
                n_threads,
                quanta - 1,
                &mut scratch.telemetry,
                &mut scratch.noise,
            );
        }
        for i in 0..n_threads {
            let id = ThreadId(i as u32);
            if machine.finish_time(id).is_some() {
                // Still update prev so a thread finishing mid-run does not
                // distort later deltas (it cannot, but keep it coherent).
                scratch.prev_thread[i] = machine.counters(id);
                if !scratch.prev_finished[i] {
                    scratch.prev_finished[i] = true;
                    scratch.view.departed.push(id);
                }
                continue;
            }
            let cur = machine.counters(id);
            let d = cur.delta(&scratch.prev_thread[i]);
            let mut rates = RateSample::from_deltas(
                d.instructions,
                d.llc_misses,
                d.llc_accesses,
                d.cycles,
                dt_s,
            );
            scratch.prev_thread[i] = cur;
            if faults_active {
                let true_rates = rates;
                let mut fault = scratch.telemetry[i];
                if fault == Some(FaultKind::Stale) && !scratch.rate_seen[i] {
                    // A stale sensor with no prior sample has nothing to
                    // replay; replaying `RateSample::default()` would hand
                    // the policy an all-zero thread that looks idle. The
                    // faithful degradation is a missing sample.
                    fault = Some(FaultKind::Dropout);
                }
                if fault == Some(FaultKind::Dropout) {
                    // The sample is simply missing: the scheduler's view
                    // has no entry for this thread this quantum.
                    scratch.last_rates[i] = true_rates;
                    scratch.rate_seen[i] = true;
                    continue;
                }
                match fault {
                    Some(FaultKind::CorruptNan) => {
                        rates.access_rate = f64::NAN;
                        rates.llc_miss_rate = f64::NAN;
                    }
                    Some(FaultKind::CorruptZero) => rates = RateSample::default(),
                    Some(FaultKind::CorruptSaturate) => {
                        rates.access_rate = 1e15;
                        rates.instr_rate = 1e15;
                        rates.miss_ratio = 1.0;
                        rates.llc_miss_rate = 1.0;
                        rates.ipc = 0.0;
                    }
                    Some(FaultKind::Stale) => rates = scratch.last_rates[i],
                    _ => {}
                }
                let nf = scratch.noise[i];
                if nf != 1.0 {
                    rates.access_rate *= nf;
                    rates.instr_rate *= nf;
                }
                scratch.last_rates[i] = true_rates;
                scratch.rate_seen[i] = true;
            }
            scratch.view.threads.push(ThreadObservation {
                id,
                app: machine.app_of(id),
                vcore: machine.vcore_of(id),
                rates,
                cumulative: cur,
                migrated_last_quantum: d.migrations > 0,
                llc_occupancy_mib: machine.llc_occupancy_mib(id),
            });
        }
        for v in 0..n_vcores {
            let vid = VCoreId(v as u32);
            let cur = machine.core_counters(vid);
            let d = cur.delta(&scratch.prev_core[v]);
            scratch.prev_core[v] = cur;
            scratch.view.cores[v].bandwidth = d.accesses / dt_s;
        }

        // Per-core occupancy, from the machine's actual placement — not
        // from the observation list, which telemetry dropout thins out. A
        // thread whose sample went missing is still running on its core
        // and still occupies it. Counting sort over the alive list (which
        // is ascending) keeps occupants in id order per core.
        {
            let occ = &mut scratch.view.occ_offsets;
            occ.clear();
            occ.resize(n_vcores + 1, 0);
            for t in machine.alive_ids() {
                occ[machine.vcore_of(t).index() + 1] += 1;
            }
            for v in 0..n_vcores {
                occ[v + 1] += occ[v];
            }
            let total = occ[n_vcores] as usize;
            scratch.occ_cursor.clear();
            scratch.occ_cursor.extend_from_slice(&occ[..n_vcores]);
            scratch.view.occ_ids.clear();
            scratch.view.occ_ids.resize(total, ThreadId(0));
            for t in machine.alive_ids() {
                let slot = &mut scratch.occ_cursor[machine.vcore_of(t).index()];
                scratch.view.occ_ids[*slot as usize] = t;
                *slot += 1;
            }
        }

        scratch.view.now = machine.now();
        scratch.view.quantum = step;
        scratch.view.quantum_index = quanta - 1;
        scratch.view.partition_epoch = machine.partition_epoch();
        std::mem::swap(&mut scratch.view.arrived, &mut scratch.arrived);
        scratch.arrived.clear();

        observer(&scratch.view);

        scratch.actions.clear();
        scheduler.on_quantum(&scratch.view, &mut scratch.actions);

        // Swap accounting (Table III): a swap is only complete when both
        // members of a policy-requested pair actually changed placement.
        // Each pair opens a pending entry; members credit it as their
        // actuation outcome becomes known (immediately, or when a delayed
        // migration lands quanta later).
        let pair_base = next_pair_token;
        next_pair_token += scratch.actions.num_pairs() as u64;
        for p in 0..scratch.actions.num_pairs() {
            scratch.pending_pairs.push(PendingPair {
                token: pair_base + p as u64,
                hits: 0,
                outstanding: 2,
            });
        }
        if faults_active {
            // Land migrations whose delay has elapsed. `Machine::migrate`
            // is a no-op when the thread has finished or already sits on
            // the target, so a late landing is never double-applied over a
            // placement the policy has since re-established.
            while scratch
                .delayed
                .front()
                .is_some_and(|&(due, ..)| due <= quanta)
            {
                let (_, t, v, token) = scratch.delayed.pop_front().expect("checked front");
                let applied = machine.finish_time(t).is_none() && machine.vcore_of(t) != v;
                machine.migrate(t, v);
                if token == NO_PAIR_TOKEN {
                    unilateral += u64::from(applied);
                } else {
                    credit_pair(&mut scratch.pending_pairs, token, applied);
                }
            }
            for i in 0..scratch.actions.migrations.len() {
                let (t, v) = scratch.actions.migrations[i];
                let tag = scratch.actions.pair_tag(i);
                match hasher.migration_fault(t.0, quanta - 1) {
                    Some(FaultKind::MigrationFail) => {
                        // Silently lost; the pair member's outcome is known.
                        if let Some(g) = tag {
                            credit_pair(&mut scratch.pending_pairs, pair_base + g as u64, false);
                        }
                    }
                    Some(FaultKind::MigrationDelay) => {
                        let token = tag.map_or(NO_PAIR_TOKEN, |g| pair_base + g as u64);
                        scratch.delayed.push_back((
                            quanta + faults.migration_delay_quanta as u64,
                            t,
                            v,
                            token,
                        ));
                    }
                    _ => {
                        let applied = machine.finish_time(t).is_none() && machine.vcore_of(t) != v;
                        machine.migrate(t, v);
                        match tag {
                            Some(g) => credit_pair(
                                &mut scratch.pending_pairs,
                                pair_base + g as u64,
                                applied,
                            ),
                            None => unilateral += u64::from(applied),
                        }
                    }
                }
            }
            if faults.stall_rate > 0.0 {
                for i in 0..machine.num_threads() {
                    let t = ThreadId(i as u32);
                    if machine.is_alive(t) && hasher.stall(t.0, quanta - 1) {
                        machine.stall(t, SimTime::from_us(faults.stall_us));
                    }
                }
            }
        } else {
            for i in 0..scratch.actions.migrations.len() {
                let (t, v) = scratch.actions.migrations[i];
                let applied = machine.finish_time(t).is_none() && machine.vcore_of(t) != v;
                machine.migrate(t, v);
                match scratch.actions.pair_tag(i) {
                    Some(g) => {
                        credit_pair(&mut scratch.pending_pairs, pair_base + g as u64, applied)
                    }
                    None => unilateral += u64::from(applied),
                }
            }
        }
        // LLC partition actuation: land a delay-deferred plan first, then
        // route this quantum's plan (if any) through the same fault
        // channel migrations use (under a sentinel thread id — see
        // `FaultHasher::partition_fault`). The machine applies plans
        // wholesale, so there is at most one in flight; an invalid plan
        // is dropped, mirroring `Machine::migrate`'s silent no-op on a
        // stale target.
        if scratch
            .delayed_partition
            .as_ref()
            .is_some_and(|d| d.0 <= quanta)
        {
            let (_, plan) = scratch.delayed_partition.take().expect("checked above");
            partitions += u64::from(machine.apply_partition(&plan).is_ok());
        }
        if let Some(plan) = scratch.actions.partition.take() {
            let fault = if faults_active {
                hasher.partition_fault(quanta - 1)
            } else {
                None
            };
            match fault {
                Some(FaultKind::MigrationFail) => {} // silently lost
                Some(FaultKind::MigrationDelay) => {
                    // A newer delayed plan supersedes an older one, as a
                    // late `apply_partition` would.
                    scratch.delayed_partition =
                        Some((quanta + faults.migration_delay_quanta as u64, plan));
                }
                _ => partitions += u64::from(machine.apply_partition(&plan).is_ok()),
            }
        }
        // Resolve pairs whose members have all reported (delay-extended
        // pairs stay pending until their last member lands).
        scratch.pending_pairs.retain(|p| {
            if p.outstanding == 0 {
                swaps += u64::from(p.hits == 2);
                false
            } else {
                true
            }
        });
        if let Some(q) = scratch.actions.set_quantum {
            quantum = clamp_quantum(q);
        }
    }

    if let Some(out) = leftovers {
        // Undrained work at the cutoff: queued specs already arrived, so
        // they are due immediately (FIFO order preserved — equal arrival
        // instants keep insertion order through the driver's stable
        // sort); not-yet-due plan entries keep their original instants.
        let now = machine.now();
        out.extend(waiting.drain(..).map(|spec| TimedSpawn { at: now, spec }));
        out.extend(pending.drain(..));
    }

    let migrations = machine.total_migrations() - migrations_before;
    RunResult {
        scheduler: scheduler.name().to_string(),
        wall: machine.now(),
        completed: machine.all_done(),
        threads: (0..machine.num_threads())
            .map(|i| {
                let id = ThreadId(i as u32);
                ThreadResult {
                    id,
                    app: machine.app_of(id).0,
                    app_name: machine.app_name_of(id).to_string(),
                    spawned_at: machine.spawn_time(id),
                    finished_at: machine.finish_time(id),
                    counters: machine.counters(id),
                }
            })
            .collect(),
        quanta,
        migrations,
        swaps,
        unilateral_migrations: unilateral,
        partitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::NullScheduler;
    use crate::view::SystemView;
    use dike_machine::{presets, AppId, Phase, PhaseProgram, ThreadSpec};

    fn spawn_pair(machine: &mut Machine) {
        for (i, vcore) in [(0u32, 0u32), (1, 4)] {
            machine.spawn(
                ThreadSpec {
                    app: AppId(i),
                    app_name: format!("app{i}"),
                    program: PhaseProgram::single(Phase::steady(0.8, 10.0, 2.0, 1e7), 2e9),
                    barrier: None,
                },
                VCoreId(vcore),
            );
        }
    }

    #[test]
    fn null_run_completes_and_reports() {
        let mut m = Machine::new(presets::small_machine(1));
        spawn_pair(&mut m);
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        let r = run(&mut m, &mut s, SimTime::from_secs_f64(60.0));
        assert!(r.completed);
        assert_eq!(r.scheduler, "null");
        assert_eq!(r.threads.len(), 2);
        assert_eq!(r.migrations, 0);
        assert_eq!(r.swaps, 0);
        assert!(r.quanta > 0);
        assert!(r.threads.iter().all(|t| t.finished_at.is_some()));
        let per_app = r.per_app_runtimes();
        assert_eq!(per_app.len(), 2);
        // Thread on the slow core takes longer.
        assert!(r.app_runtimes(1)[0] > r.app_runtimes(0)[0]);
    }

    #[test]
    fn deadline_cuts_run_short() {
        let mut m = Machine::new(presets::small_machine(1));
        spawn_pair(&mut m);
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        let r = run(&mut m, &mut s, SimTime::from_ms(300));
        assert!(!r.completed);
        assert_eq!(r.wall, SimTime::from_ms(300));
        // Unfinished threads are charged the wall time.
        assert_eq!(r.app_runtimes(0), vec![0.3]);
    }

    #[test]
    fn observer_sees_views_with_rates() {
        let mut m = Machine::new(presets::small_machine(1));
        spawn_pair(&mut m);
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        let mut seen = 0;
        let mut last_rate = 0.0;
        run_with(
            &mut m,
            &mut s,
            SimTime::from_ms(500),
            |view: &SystemView| {
                seen += 1;
                assert_eq!(view.threads.len(), 2);
                assert_eq!(view.cores.len(), 8);
                last_rate = view.threads[0].rates.access_rate;
                assert_eq!(view.quantum, SimTime::from_ms(100));
            },
        );
        assert!(seen >= 4, "saw {seen} views");
        assert!(last_rate > 0.0);
    }

    /// A scheduler that swaps the two threads once, then changes quantum.
    struct SwapOnce {
        done: bool,
    }
    impl Scheduler for SwapOnce {
        fn name(&self) -> &str {
            "swap-once"
        }
        fn initial_quantum(&self) -> SimTime {
            SimTime::from_ms(100)
        }
        fn on_quantum(&mut self, view: &SystemView, actions: &mut Actions) {
            if !self.done && view.threads.len() == 2 {
                let a = &view.threads[0];
                let b = &view.threads[1];
                actions.swap((a.id, a.vcore), (b.id, b.vcore));
                actions.set_quantum = Some(SimTime::from_ms(200));
                self.done = true;
            }
        }
    }

    #[test]
    fn migrations_are_applied_and_counted() {
        let mut m = Machine::new(presets::small_machine(1));
        spawn_pair(&mut m);
        let mut s = SwapOnce { done: false };
        let r = run(&mut m, &mut s, SimTime::from_secs_f64(60.0));
        assert_eq!(r.migrations, 2);
        assert_eq!(r.swaps, 1);
        assert_eq!(r.unilateral_migrations, 0);
        assert!(r.completed);
    }

    /// BUG regression: occupancy must come from the machine's placement,
    /// not the observation list. Under full telemetry dropout the view has
    /// no thread observations at all, yet both threads still occupy their
    /// cores and the policy must be able to see that.
    #[test]
    fn dropped_samples_do_not_vacate_occupancy() {
        let mut cfg = presets::small_machine(1);
        cfg.faults = dike_machine::FaultConfig {
            dropout_rate: 1.0,
            seed: 11,
            ..Default::default()
        };
        let mut m = Machine::new(cfg);
        spawn_pair(&mut m);
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        let mut checked = 0;
        run_with(&mut m, &mut s, SimTime::from_ms(500), |view| {
            assert!(view.threads.is_empty(), "every sample must drop");
            if m_alive(view) {
                assert_eq!(view.occupants(VCoreId(0)), &[ThreadId(0)]);
                assert_eq!(view.occupants(VCoreId(4)), &[ThreadId(1)]);
                checked += 1;
            }
        });
        assert!(checked >= 4, "checked {checked} views");

        fn m_alive(view: &SystemView) -> bool {
            // Both threads outlive 500ms; every view sees them placed.
            view.departed.is_empty()
        }
    }

    /// BUG regression: a migration pair losing one member to an actuation
    /// fault is not a completed swap. The old `migrations / 2` accounting
    /// rounded lost and delayed members into phantom swap counts.
    #[test]
    fn lost_pair_member_is_not_counted_as_a_swap() {
        // Fail every migration: the swap is requested but nobody moves.
        let mut cfg = presets::small_machine(1);
        cfg.faults = dike_machine::FaultConfig {
            migration_fail_rate: 1.0,
            seed: 3,
            ..Default::default()
        };
        let mut m = Machine::new(cfg);
        spawn_pair(&mut m);
        let mut s = SwapOnce { done: false };
        let r = run(&mut m, &mut s, SimTime::from_secs_f64(60.0));
        assert_eq!(r.migrations, 0);
        assert_eq!(r.swaps, 0, "a fully lost pair is not a swap");
        assert_eq!(r.unilateral_migrations, 0);

        // Delay every migration: both members land late but they do land,
        // so the pair eventually completes as exactly one swap.
        let mut cfg = presets::small_machine(1);
        cfg.faults = dike_machine::FaultConfig {
            migration_delay_rate: 1.0,
            migration_delay_quanta: 2,
            seed: 3,
            ..Default::default()
        };
        let mut m = Machine::new(cfg);
        spawn_pair(&mut m);
        let mut s = SwapOnce { done: false };
        let r = run(&mut m, &mut s, SimTime::from_secs_f64(60.0));
        assert_eq!(r.migrations, 2);
        assert_eq!(r.swaps, 1, "a delayed pair that fully lands is a swap");
        assert_eq!(r.unilateral_migrations, 0);
    }

    /// A policy that issues one *single* migration (no pair) once.
    struct MoveOnce {
        done: bool,
    }
    impl Scheduler for MoveOnce {
        fn name(&self) -> &str {
            "move-once"
        }
        fn initial_quantum(&self) -> SimTime {
            SimTime::from_ms(100)
        }
        fn on_quantum(&mut self, view: &SystemView, actions: &mut Actions) {
            if !self.done && !view.threads.is_empty() {
                let t = &view.threads[0];
                actions.migrate(t.id, VCoreId(t.vcore.0 + 1));
                self.done = true;
            }
        }
    }

    #[test]
    fn single_migrations_count_as_unilateral_not_half_swaps() {
        let mut m = Machine::new(presets::small_machine(1));
        spawn_pair(&mut m);
        let mut s = MoveOnce { done: false };
        let r = run(&mut m, &mut s, SimTime::from_secs_f64(60.0));
        assert_eq!(r.migrations, 1);
        // The old accounting reported `1 / 2 == 0` swaps by luck here, but
        // a second unilateral move anywhere would have minted a phantom
        // swap; they are now reported in their own channel.
        assert_eq!(r.swaps, 0);
        assert_eq!(r.unilateral_migrations, 1);
        assert_eq!(r.migrations, 2 * r.swaps + r.unilateral_migrations);
    }

    /// BUG regression: a stale-sample fault in a thread's *first* observed
    /// quantum used to replay `RateSample::default()` — an all-zero
    /// fabricated reading the machine never produced. It must degrade to
    /// a dropout (no sample) instead.
    #[test]
    fn first_quantum_stale_degrades_to_dropout() {
        let mut cfg = presets::small_machine(1);
        cfg.faults = dike_machine::FaultConfig {
            stale_rate: 1.0,
            seed: 9,
            ..Default::default()
        };
        let mut m = Machine::new(cfg);
        spawn_pair(&mut m);
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        let mut first = true;
        let mut later_rates = Vec::new();
        run_with(&mut m, &mut s, SimTime::from_ms(500), |view| {
            if first {
                // No fabricated all-zero observations in the first view.
                assert!(
                    view.threads.is_empty(),
                    "first-quantum stale must present as dropout, got {:?}",
                    view.threads
                );
                first = false;
            } else {
                // Later quanta replay the previous *true* sample.
                for t in &view.threads {
                    later_rates.push(t.rates.access_rate);
                }
            }
        });
        assert!(!later_rates.is_empty());
        assert!(
            later_rates.iter().all(|&r| r > 0.0),
            "stale replays must be real past samples, got {later_rates:?}"
        );
    }

    /// Back-to-back runs through one scratch give identical results to
    /// fresh-scratch runs (reset correctness).
    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_scratch() {
        let fresh = {
            let mut m = Machine::new(presets::small_machine(1));
            spawn_pair(&mut m);
            let mut s = SwapOnce { done: false };
            run(&mut m, &mut s, SimTime::from_secs_f64(60.0))
        };
        let mut scratch = DriverScratch::new();
        for _ in 0..2 {
            let mut m = Machine::new(presets::small_machine(1));
            spawn_pair(&mut m);
            let mut s = SwapOnce { done: false };
            let r = run_with_scratch(
                &mut m,
                &mut s,
                SimTime::from_secs_f64(60.0),
                |_| {},
                &mut scratch,
            );
            assert_eq!(r, fresh);
        }
    }

    /// The pooled entry point reuses one scratch per OS thread; results
    /// must still match fresh-scratch runs exactly, run after run.
    #[test]
    fn pooled_runs_match_fresh_scratch_runs() {
        let arrivals = || {
            vec![TimedSpawn {
                at: SimTime::from_ms(150),
                spec: spec_for(2, 5e7),
            }]
        };
        let fresh = {
            let mut m = Machine::new(presets::small_machine(1));
            spawn_pair(&mut m);
            let mut s = SwapOnce { done: false };
            run_open(&mut m, &mut s, SimTime::from_secs_f64(60.0), arrivals())
        };
        for _ in 0..2 {
            let mut m = Machine::new(presets::small_machine(1));
            spawn_pair(&mut m);
            let mut s = SwapOnce { done: false };
            let r = run_open_pooled(&mut m, &mut s, SimTime::from_secs_f64(60.0), arrivals());
            assert_eq!(r, fresh);
        }
    }

    #[test]
    fn quantum_is_clamped_to_ticks() {
        struct Odd;
        impl Scheduler for Odd {
            fn name(&self) -> &str {
                "odd"
            }
            fn initial_quantum(&self) -> SimTime {
                SimTime::from_us(1_500) // not a tick multiple
            }
            fn on_quantum(&mut self, _: &SystemView, _: &mut Actions) {}
        }
        let mut m = Machine::new(presets::small_machine(1));
        spawn_pair(&mut m);
        // Must not panic (run_for requires tick multiples).
        let r = run(&mut m, &mut Odd, SimTime::from_ms(10));
        assert!(r.quanta > 0);
    }

    fn spec_for(app: u32, instructions: f64) -> ThreadSpec {
        ThreadSpec {
            app: AppId(app),
            app_name: format!("app{app}"),
            program: PhaseProgram::single(Phase::steady(0.8, 10.0, 2.0, 1e7), instructions),
            barrier: None,
        }
    }

    #[test]
    fn arrival_with_all_vcores_busy_queues_until_a_slot_frees() {
        let mut m = Machine::new(presets::small_machine(1));
        // Fill all 8 vcores: one short thread on vcore 0, seven long ones.
        // The short thread outlives the arrival instant, so the arrival
        // finds no idle vcore and must queue.
        m.spawn(spec_for(0, 2e8), VCoreId(0));
        for v in 1..8u32 {
            m.spawn(spec_for(v, 2e9), VCoreId(v));
        }
        let arrivals = vec![TimedSpawn {
            at: SimTime::from_ms(100),
            spec: spec_for(8, 2e7),
        }];
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        let r = run_open(&mut m, &mut s, SimTime::from_secs_f64(120.0), arrivals);
        assert!(r.completed);
        assert_eq!(r.threads.len(), 9);
        let freed = r.threads[0].finished_at.expect("short thread finishes");
        let queued = &r.threads[8];
        // The arrival was due at 100ms but no vcore was idle; it must wait
        // in the FIFO queue until the short thread departs.
        assert!(
            queued.spawned_at >= freed && queued.spawned_at > SimTime::from_ms(100),
            "spawned_at {:?} vs freed {:?}",
            queued.spawned_at,
            freed
        );
        // It takes the freed slot (the only idle vcore at admit time).
        assert_eq!(m.vcore_of(ThreadId(8)), VCoreId(0));
        // Sojourn time is measured from the actual spawn, not from zero.
        let sojourn = queued.sojourn_secs(r.wall);
        let total = queued.finished_at.unwrap().as_secs_f64();
        assert!(sojourn < total);
    }

    #[test]
    fn departure_mid_quantum_is_reported_once_in_departed() {
        let mut m = Machine::new(presets::small_machine(1));
        m.spawn(spec_for(0, 3e7), VCoreId(0)); // finishes mid-run
        m.spawn(spec_for(1, 2e9), VCoreId(1));
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        let mut departures: Vec<(u64, Vec<ThreadId>)> = Vec::new();
        let mut seen_alive_after_departure = false;
        run_open_with(
            &mut m,
            &mut s,
            SimTime::from_secs_f64(60.0),
            Vec::new(),
            |view| {
                if !view.departed.is_empty() {
                    departures.push((view.quantum_index, view.departed.clone()));
                }
                if departures.len() == 1 && view.thread(ThreadId(0)).is_some() {
                    seen_alive_after_departure = true;
                }
            },
        );
        // Thread 0 departs exactly once and is gone from `threads` in the
        // same view and every later one.
        assert_eq!(departures.len(), 1, "departures: {departures:?}");
        assert_eq!(departures[0].1, vec![ThreadId(0)]);
        assert!(!seen_alive_after_departure);
        // The departure happened strictly inside a quantum, not at a
        // boundary the driver would have stopped at anyway.
        let fin = m.finish_time(ThreadId(0)).unwrap();
        assert_ne!(fin.as_us() % 100_000, 0, "finish at {fin:?}");
    }

    #[test]
    fn empty_machine_idles_until_first_arrival() {
        let mut m = Machine::new(presets::small_machine(1));
        // Arrival mid-quantum (550ms with a 100ms quantum) exercises the
        // sub-segment split: the thread starts at its arrival instant.
        // Long enough to outlive its arrival quantum, so the quantum's
        // view (with the `arrived` entry) is actually built.
        let arrivals = vec![TimedSpawn {
            at: SimTime::from_ms(550),
            spec: spec_for(0, 2e8),
        }];
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        let mut first_arrival_view: Option<(SimTime, Vec<ThreadId>)> = None;
        let r = run_open_with(
            &mut m,
            &mut s,
            SimTime::from_secs_f64(60.0),
            arrivals,
            |view| {
                if !view.arrived.is_empty() && first_arrival_view.is_none() {
                    first_arrival_view = Some((view.now, view.arrived.clone()));
                }
            },
        );
        assert!(r.completed);
        assert_eq!(r.threads.len(), 1);
        assert_eq!(r.threads[0].spawned_at, SimTime::from_ms(550));
        assert!(r.threads[0].finished_at.unwrap() > SimTime::from_ms(550));
        // The machine idled forward through the empty quanta instead of
        // exiting: wall time covers the pre-arrival gap too.
        assert!(r.wall > SimTime::from_ms(550));
        // The arrival is reported in the view of the quantum it landed in.
        let (at, ids) = first_arrival_view.expect("arrival observed");
        assert_eq!(ids, vec![ThreadId(0)]);
        assert_eq!(at, SimTime::from_ms(600));
    }

    /// A policy that requests one LLC partition plan once.
    struct PartitionOnce {
        done: bool,
    }
    impl Scheduler for PartitionOnce {
        fn name(&self) -> &str {
            "partition-once"
        }
        fn initial_quantum(&self) -> SimTime {
            SimTime::from_ms(100)
        }
        fn on_quantum(&mut self, view: &SystemView, actions: &mut Actions) {
            if !self.done && view.threads.len() == 2 {
                let mut plan = PartitionPlan::new();
                plan.cluster_ways.push(4);
                plan.assignments.push((view.threads[0].id, 0));
                actions.partition = Some(plan);
                self.done = true;
            }
        }
    }

    #[test]
    fn partition_plans_are_applied_and_counted() {
        let mut m = Machine::new(presets::small_machine(1));
        spawn_pair(&mut m);
        let mut s = PartitionOnce { done: false };
        let mut max_epoch = 0;
        let r = run_with(&mut m, &mut s, SimTime::from_secs_f64(60.0), |view| {
            max_epoch = max_epoch.max(view.partition_epoch);
        });
        assert!(r.completed);
        assert_eq!(r.partitions, 1);
        assert_eq!(r.migrations, 0);
        assert!(m.partition_active());
        assert_eq!(m.partition_epoch(), 1);
        // The view reported the advanced epoch back to the policy.
        assert_eq!(max_epoch, 1);
    }

    #[test]
    fn partition_faults_fail_and_delay_like_migrations() {
        // Fail every actuation: the plan is silently lost.
        let mut cfg = presets::small_machine(1);
        cfg.faults = dike_machine::FaultConfig {
            migration_fail_rate: 1.0,
            seed: 3,
            ..Default::default()
        };
        let mut m = Machine::new(cfg);
        spawn_pair(&mut m);
        let mut s = PartitionOnce { done: false };
        let r = run(&mut m, &mut s, SimTime::from_secs_f64(60.0));
        assert_eq!(r.partitions, 0);
        assert!(!m.partition_active());
        assert_eq!(m.partition_epoch(), 0);

        // Delay every actuation: the plan lands quanta later, once.
        let mut cfg = presets::small_machine(1);
        cfg.faults = dike_machine::FaultConfig {
            migration_delay_rate: 1.0,
            migration_delay_quanta: 2,
            seed: 3,
            ..Default::default()
        };
        let mut m = Machine::new(cfg);
        spawn_pair(&mut m);
        let mut s = PartitionOnce { done: false };
        let r = run(&mut m, &mut s, SimTime::from_secs_f64(60.0));
        assert_eq!(r.partitions, 1);
        assert!(m.partition_active());
        assert_eq!(m.partition_epoch(), 1);
    }

    #[test]
    fn views_report_llc_occupancy() {
        let mut m = Machine::new(presets::small_machine(1));
        spawn_pair(&mut m);
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        let mut seen = 0;
        run_with(&mut m, &mut s, SimTime::from_ms(500), |view| {
            for t in &view.threads {
                // spawn_pair threads have a 2 MiB working set, well under
                // the unpartitioned 5 MiB LLC: occupancy is the full set.
                assert_eq!(t.llc_occupancy_mib, 2.0);
                seen += 1;
            }
        });
        assert!(seen >= 8, "saw {seen} occupancy samples");
    }

    #[test]
    fn arrivals_round_up_to_tick_grid_and_keep_plan_order() {
        let mut m = Machine::new(presets::small_machine(1));
        let arrivals = vec![
            TimedSpawn {
                at: SimTime::from_us(1_499), // rounds up to 2ms
                spec: spec_for(0, 2e7),
            },
            TimedSpawn {
                at: SimTime::from_us(2_000), // same tick, later in plan
                spec: spec_for(1, 2e7),
            },
        ];
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        let r = run_open(&mut m, &mut s, SimTime::from_secs_f64(60.0), arrivals);
        assert!(r.completed);
        assert_eq!(r.threads[0].spawned_at, SimTime::from_ms(2));
        assert_eq!(r.threads[1].spawned_at, SimTime::from_ms(2));
        // Stable sort: plan order decides ids for equal-time arrivals.
        assert_eq!(r.threads[0].app, 0);
        assert_eq!(r.threads[1].app, 1);
    }
}
