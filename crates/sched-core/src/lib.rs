//! # dike-sched-core — the scheduler framework
//!
//! The paper observes that contention-aware schedulers share one structure:
//! "a performance monitor records thread progress … a predictor estimates
//! performance degradation … a decider chooses a thread-to-core mapping …
//! enforced by a scheduler". This crate is that shared skeleton:
//!
//! * [`SystemView`] / [`Actions`] — the observation/actuation contract
//!   (counter rates in, migrations + quantum changes out);
//! * [`Scheduler`] — the policy trait implemented by Dike, DIO and the
//!   baselines;
//! * [`run`] / [`run_with`] — the quantum driver connecting a policy to a
//!   [`dike_machine::Machine`], the simulated analogue of a userspace
//!   scheduling daemon on a perf-counter timer;
//! * [`run_open`] / [`run_open_with`] — the same driver fed a
//!   [`TimedSpawn`] plan, for open systems where threads arrive and
//!   depart mid-run.

//! * [`SwapPlanner`] / [`PartitionPlanner`] — actuation verification:
//!   confirm that requested swaps and LLC partition plans actually
//!   landed, retry with backoff, fall back to substrate behaviour when
//!   the budget is exhausted.

pub mod actuation;
pub mod driver;
pub mod scheduler;
pub mod view;

pub use actuation::{ActuationReport, PartitionPlanner, SwapPlanner};
pub use driver::{
    run, run_open, run_open_epoch_pooled, run_open_pooled, run_open_with, run_open_with_scratch,
    run_with, run_with_scratch, DriverScratch, RunResult, ThreadResult, TimedSpawn,
};
pub use scheduler::{NullScheduler, Scheduler};
pub use view::{Actions, CoreObservation, SystemView, ThreadObservation};
