//! Swap actuation verification: confirm, retry with backoff, fall back.
//!
//! A policy that calls `sched_setaffinity` has no guarantee the move
//! happens — the syscall can race with the balancer, the runqueue hop can
//! be deferred, or (in this simulator's fault model) the migration is
//! silently dropped or lands quanta late. [`SwapPlanner`] closes that
//! loop: every requested swap is tracked, the next quantum's view is
//! checked against the intended placement, and an unconfirmed swap is
//! re-issued with exponential backoff up to a retry budget. A swap that
//! exhausts its budget is abandoned and both members enter a *fallback*
//! window during which the policy should leave them to the substrate's
//! CFS-like placement instead of issuing further pair swaps.
//!
//! [`SwapPlanner::verify`] returns an [`ActuationReport`] marked
//! `#[must_use]`: a scheduler that requests swaps but ignores whether they
//! landed is exactly the failure mode this module exists to prevent, so
//! dropping the report on the floor fails `cargo clippy -D warnings`.
//!
//! [`PartitionPlanner`] is the same closed loop for the second actuator:
//! an LLC way-partitioning request (`resctrl` writes fail and race too)
//! is verified against [`SystemView::partition_epoch`], re-issued with
//! the same exponential backoff, and after the budget is exhausted the
//! policy holds off partitioning for a fallback window.

use crate::view::{Actions, SystemView};
use dike_machine::{PartitionPlan, ThreadId, VCoreId};

/// A swap whose landing has not been confirmed yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingSwap {
    /// First member: (thread, core it must end up on).
    a: (ThreadId, VCoreId),
    /// Second member.
    b: (ThreadId, VCoreId),
    /// Re-issues so far (0 = the original request).
    attempts: u32,
    /// Quantum counter at which the next verification acts; between
    /// checks the swap is left alone to let a late landing arrive.
    next_check: u64,
}

/// What [`SwapPlanner::verify`] did this quantum.
///
/// Ignoring this report means ignoring actuation failures — the swap the
/// policy reasoned about may never have happened — hence `#[must_use]`.
#[must_use = "ignoring the report means ignoring failed swap actuations; check or fold it into policy stats"]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActuationReport {
    /// Swaps confirmed landed since the last call.
    pub confirmed: u32,
    /// Swaps re-issued (a retry consumes one attempt and re-requests only
    /// the members not yet in place).
    pub retried: u32,
    /// Swaps that exhausted the retry budget; their members are now in
    /// the fallback window.
    pub abandoned: u32,
}

impl ActuationReport {
    /// True when nothing needed attention.
    pub fn is_clean(&self) -> bool {
        self.retried == 0 && self.abandoned == 0
    }
}

/// Tracks requested swaps until they are confirmed, retried out, or
/// abandoned. All bookkeeping is in quantum-counter units, so the planner
/// is agnostic to quantum-length changes mid-run.
#[derive(Debug, Clone)]
pub struct SwapPlanner {
    /// Re-issues allowed per swap before abandoning it.
    retry_budget: u32,
    /// Quanta a member of an abandoned swap stays in fallback.
    fallback_quanta: u64,
    pending: Vec<PendingSwap>,
    /// Threads under fallback: (thread, quantum counter the window ends).
    fallback: Vec<(ThreadId, u64)>,
}

impl SwapPlanner {
    /// A planner with the given retry budget and fallback window.
    pub fn new(retry_budget: u32, fallback_quanta: u64) -> Self {
        SwapPlanner {
            retry_budget,
            fallback_quanta,
            pending: Vec::new(),
            fallback: Vec::new(),
        }
    }

    /// Record a swap requested at quantum `now_q`: `a.0` must land on
    /// `b.1` and `b.0` on `a.1` (mirroring [`Actions::swap`]). Verified
    /// from the next quantum on.
    pub fn track(&mut self, a: (ThreadId, VCoreId), b: (ThreadId, VCoreId), now_q: u64) {
        self.pending.push(PendingSwap {
            a: (a.0, b.1),
            b: (b.0, a.1),
            attempts: 0,
            next_check: now_q + 1,
        });
    }

    /// True while `thread` is inside a fallback window: the policy should
    /// not propose new swaps involving it and leave placement to the
    /// substrate.
    pub fn in_fallback(&self, thread: ThreadId, now_q: u64) -> bool {
        self.fallback
            .iter()
            .any(|&(t, until)| t == thread && now_q < until)
    }

    /// Unconfirmed swaps currently tracked.
    pub fn pending_swaps(&self) -> usize {
        self.pending.len()
    }

    /// Check every tracked swap against the current view, re-issuing
    /// unconfirmed ones (into `actions`) with exponential backoff and
    /// abandoning those past the retry budget. Call once per quantum,
    /// before deciding new swaps.
    pub fn verify(
        &mut self,
        view: &SystemView,
        actions: &mut Actions,
        now_q: u64,
    ) -> ActuationReport {
        self.fallback.retain(|&(_, until)| now_q < until);
        let mut report = ActuationReport::default();
        let retry_budget = self.retry_budget;
        let fallback_quanta = self.fallback_quanta;
        let fallback = &mut self.fallback;
        self.pending.retain_mut(|p| {
            // A departed member makes the swap moot; drop it silently
            // (finishing is success, not an actuation failure).
            if view.departed.contains(&p.a.0) || view.departed.contains(&p.b.0) {
                return false;
            }
            let placed =
                |(t, target): (ThreadId, VCoreId)| view.thread(t).map(|o| o.vcore == target);
            match (placed(p.a), placed(p.b)) {
                (Some(true), Some(true)) => {
                    report.confirmed += 1;
                    false
                }
                // A member absent from the view without having departed is
                // a telemetry dropout: its placement is unobservable this
                // quantum, so hold the swap without consuming an attempt.
                (None, _) | (_, None) => true,
                _ => {
                    if now_q < p.next_check {
                        return true;
                    }
                    if p.attempts >= retry_budget {
                        report.abandoned += 1;
                        let until = now_q + fallback_quanta;
                        fallback.push((p.a.0, until));
                        fallback.push((p.b.0, until));
                        return false;
                    }
                    p.attempts += 1;
                    // Exponential backoff: re-check 2^attempts quanta out,
                    // leaving room for a delayed landing to arrive.
                    p.next_check = now_q + (1u64 << p.attempts.min(16));
                    for m in [p.a, p.b] {
                        if placed(m) == Some(false) {
                            actions.migrate(m.0, m.1);
                        }
                    }
                    report.retried += 1;
                    true
                }
            }
        });
        report
    }
}

/// A partition request whose application has not been confirmed yet.
#[derive(Debug, Clone, PartialEq)]
struct PendingPartition {
    plan: PartitionPlan,
    /// The machine's partition epoch when the request was issued; the
    /// request is confirmed once a view reports a later epoch.
    epoch_at_issue: u64,
    attempts: u32,
    next_check: u64,
}

/// Tracks the outstanding LLC way-partitioning request until it is
/// confirmed, retried out, or abandoned — [`SwapPlanner`]'s counterpart
/// for the second actuator. The machine holds exactly one plan at a time
/// (a new application replaces the old wholesale), so the planner tracks
/// at most one request: tracking a new plan supersedes the old pending
/// one. Verification is epoch-based — a request is confirmed when
/// [`SystemView::partition_epoch`] advances past the value observed at
/// issue time — because a plan's *effect* (per-cluster contention) is not
/// directly observable the way a migration's placement is.
#[derive(Debug, Clone)]
pub struct PartitionPlanner {
    /// Re-issues allowed before abandoning a request.
    retry_budget: u32,
    /// Quanta the policy should refrain from partitioning after an
    /// abandoned request.
    fallback_quanta: u64,
    pending: Option<PendingPartition>,
    /// Quantum counter at which the current fallback window ends.
    fallback_until: u64,
}

impl PartitionPlanner {
    /// A planner with the given retry budget and fallback window.
    pub fn new(retry_budget: u32, fallback_quanta: u64) -> Self {
        PartitionPlanner {
            retry_budget,
            fallback_quanta,
            pending: None,
            fallback_until: 0,
        }
    }

    /// Record a plan requested at quantum `now_q`, with the partition
    /// epoch the issuing view reported. Supersedes any pending request
    /// (the machine would apply only the newest plan anyway). Verified
    /// from the next quantum on.
    pub fn track(&mut self, plan: PartitionPlan, epoch_at_issue: u64, now_q: u64) {
        self.pending = Some(PendingPartition {
            plan,
            epoch_at_issue,
            attempts: 0,
            next_check: now_q + 1,
        });
    }

    /// True while the policy should not issue new partition plans and
    /// leave the cache to its current (possibly substrate) configuration.
    pub fn in_fallback(&self, now_q: u64) -> bool {
        now_q < self.fallback_until
    }

    /// True while a request awaits confirmation.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Check the outstanding request against the current view's partition
    /// epoch, re-issuing an unconfirmed one (into `actions`) with
    /// exponential backoff and abandoning it past the retry budget. Call
    /// once per quantum, before deciding a new plan.
    pub fn verify(
        &mut self,
        view: &SystemView,
        actions: &mut Actions,
        now_q: u64,
    ) -> ActuationReport {
        let mut report = ActuationReport::default();
        let Some(p) = &mut self.pending else {
            return report;
        };
        if view.partition_epoch > p.epoch_at_issue {
            report.confirmed += 1;
            self.pending = None;
        } else if now_q >= p.next_check {
            if p.attempts >= self.retry_budget {
                report.abandoned += 1;
                self.fallback_until = now_q + self.fallback_quanta;
                self.pending = None;
            } else {
                p.attempts += 1;
                // Exponential backoff, like swap retries: leave room for a
                // delayed application to land before re-issuing again.
                p.next_check = now_q + (1u64 << p.attempts.min(16));
                p.epoch_at_issue = view.partition_epoch;
                actions.partition = Some(p.plan.clone());
                report.retried += 1;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ThreadObservation;
    use dike_counters::RateSample;
    use dike_machine::{AppId, SimTime, ThreadCounters};

    /// A view with the given (thread, vcore) placements and departures.
    fn view(placements: &[(u32, u32)], departed: &[u32], q: u64) -> SystemView {
        SystemView {
            now: SimTime::from_ms(q * 100),
            quantum: SimTime::from_ms(100),
            quantum_index: q,
            threads: placements
                .iter()
                .map(|&(t, v)| ThreadObservation {
                    id: ThreadId(t),
                    app: AppId(0),
                    vcore: VCoreId(v),
                    rates: RateSample::default(),
                    cumulative: ThreadCounters::default(),
                    migrated_last_quantum: false,
                    llc_occupancy_mib: 0.0,
                })
                .collect(),
            departed: departed.iter().map(|&t| ThreadId(t)).collect(),
            ..SystemView::default()
        }
    }

    fn track_swap(p: &mut SwapPlanner, q: u64) {
        // Thread 0 on core 0 and thread 1 on core 4 swap places.
        p.track((ThreadId(0), VCoreId(0)), (ThreadId(1), VCoreId(4)), q);
    }

    #[test]
    fn landed_swap_is_confirmed_and_dropped() {
        let mut p = SwapPlanner::new(3, 8);
        track_swap(&mut p, 0);
        assert_eq!(p.pending_swaps(), 1);
        let mut a = Actions::default();
        let r = p.verify(&view(&[(0, 4), (1, 0)], &[], 1), &mut a, 1);
        assert_eq!(r.confirmed, 1);
        assert!(r.is_clean());
        assert!(a.is_empty());
        assert_eq!(p.pending_swaps(), 0);
    }

    #[test]
    fn unconfirmed_swap_retries_with_exponential_backoff() {
        let mut p = SwapPlanner::new(3, 8);
        track_swap(&mut p, 0);
        // Neither member moved: retry #1 re-issues both migrations.
        let mut a = Actions::default();
        let r = p.verify(&view(&[(0, 0), (1, 4)], &[], 1), &mut a, 1);
        assert_eq!((r.confirmed, r.retried, r.abandoned), (0, 1, 0));
        assert_eq!(
            a.migrations,
            vec![(ThreadId(0), VCoreId(4)), (ThreadId(1), VCoreId(0))]
        );
        // Backoff: quanta 2 (= 1 + 2^1 - 1) is inside the wait window, so
        // nothing is re-issued even though the swap is still not placed.
        let mut a = Actions::default();
        let r = p.verify(&view(&[(0, 0), (1, 4)], &[], 2), &mut a, 2);
        assert!(r.is_clean());
        assert!(a.is_empty());
        // At quanta 3 the window has elapsed: retry #2 fires, and only the
        // member still out of place is re-issued.
        let mut a = Actions::default();
        let r = p.verify(&view(&[(0, 4), (1, 4)], &[], 3), &mut a, 3);
        assert_eq!(r.retried, 1);
        assert_eq!(a.migrations, vec![(ThreadId(1), VCoreId(0))]);
    }

    #[test]
    fn exhausted_budget_abandons_and_enters_fallback() {
        let mut p = SwapPlanner::new(1, 8);
        track_swap(&mut p, 0);
        let stuck = |q| view(&[(0, 0), (1, 4)], &[], q);
        let mut a = Actions::default();
        let r = p.verify(&stuck(1), &mut a, 1);
        assert_eq!(r.retried, 1);
        // Next acting check is at 1 + 2^1 = 3; budget (1) is now spent.
        let mut a = Actions::default();
        let r = p.verify(&stuck(3), &mut a, 3);
        assert_eq!((r.retried, r.abandoned), (0, 1));
        assert!(a.is_empty(), "an abandoned swap must not re-issue");
        assert_eq!(p.pending_swaps(), 0);
        // Both members are in fallback for `fallback_quanta` quanta.
        assert!(p.in_fallback(ThreadId(0), 3));
        assert!(p.in_fallback(ThreadId(1), 10));
        assert!(!p.in_fallback(ThreadId(1), 11));
        assert!(!p.in_fallback(ThreadId(2), 3));
        // The window expires on the next verify past its end.
        let mut a = Actions::default();
        let _ = p.verify(&stuck(12), &mut a, 12);
        assert!(!p.in_fallback(ThreadId(0), 12));
    }

    #[test]
    fn departed_member_drops_the_swap_without_fallback() {
        let mut p = SwapPlanner::new(3, 8);
        track_swap(&mut p, 0);
        let mut a = Actions::default();
        let r = p.verify(&view(&[(1, 4)], &[0], 1), &mut a, 1);
        assert!(r.is_clean());
        assert_eq!(r.confirmed, 0);
        assert_eq!(p.pending_swaps(), 0);
        assert!(!p.in_fallback(ThreadId(1), 1));
    }

    #[test]
    fn dropout_member_holds_the_swap_without_consuming_attempts() {
        let mut p = SwapPlanner::new(3, 8);
        track_swap(&mut p, 0);
        // Thread 0 is absent from the view but not departed (telemetry
        // dropout): the swap is held, no retry is issued.
        let mut a = Actions::default();
        let r = p.verify(&view(&[(1, 4)], &[], 1), &mut a, 1);
        assert!(r.is_clean());
        assert!(a.is_empty());
        assert_eq!(p.pending_swaps(), 1);
        // Once observable and landed, it confirms normally.
        let mut a = Actions::default();
        let r = p.verify(&view(&[(0, 4), (1, 0)], &[], 2), &mut a, 2);
        assert_eq!(r.confirmed, 1);
    }

    /// A view that only carries a partition epoch (all the partition
    /// planner reads).
    fn epoch_view(epoch: u64, q: u64) -> SystemView {
        SystemView {
            quantum_index: q,
            partition_epoch: epoch,
            ..SystemView::default()
        }
    }

    fn small_plan() -> PartitionPlan {
        PartitionPlan {
            cluster_ways: vec![2],
            assignments: vec![(ThreadId(0), 0)],
        }
    }

    #[test]
    fn partition_confirmed_on_epoch_advance() {
        let mut p = PartitionPlanner::new(3, 8);
        p.track(small_plan(), 0, 0);
        assert!(p.has_pending());
        let mut a = Actions::default();
        let r = p.verify(&epoch_view(1, 1), &mut a, 1);
        assert_eq!(r.confirmed, 1);
        assert!(r.is_clean());
        assert!(a.is_empty());
        assert!(!p.has_pending());
    }

    #[test]
    fn stuck_partition_retries_with_backoff_then_abandons() {
        let mut p = PartitionPlanner::new(1, 8);
        p.track(small_plan(), 0, 0);
        // Epoch never advances: retry #1 re-issues the plan.
        let mut a = Actions::default();
        let r = p.verify(&epoch_view(0, 1), &mut a, 1);
        assert_eq!((r.confirmed, r.retried, r.abandoned), (0, 1, 0));
        assert_eq!(a.partition.as_ref(), Some(&small_plan()));
        // Inside the backoff window nothing happens.
        let mut a = Actions::default();
        let r = p.verify(&epoch_view(0, 2), &mut a, 2);
        assert!(r.is_clean());
        assert!(a.is_empty());
        // Past the window with the budget spent: abandoned + fallback.
        let mut a = Actions::default();
        let r = p.verify(&epoch_view(0, 3), &mut a, 3);
        assert_eq!((r.retried, r.abandoned), (0, 1));
        assert!(a.is_empty(), "an abandoned request must not re-issue");
        assert!(!p.has_pending());
        assert!(p.in_fallback(3));
        assert!(p.in_fallback(10));
        assert!(!p.in_fallback(11));
    }

    #[test]
    fn late_partition_application_confirms_instead_of_reissuing() {
        let mut p = PartitionPlanner::new(3, 8);
        p.track(small_plan(), 4, 0);
        let mut a = Actions::default();
        let r = p.verify(&epoch_view(4, 1), &mut a, 1);
        assert_eq!(r.retried, 1);
        // The delayed application lands during the backoff window.
        let mut a = Actions::default();
        let r = p.verify(&epoch_view(5, 2), &mut a, 2);
        assert_eq!(r.confirmed, 1);
        assert!(a.is_empty());
    }

    #[test]
    fn newer_plan_supersedes_pending_request() {
        let mut p = PartitionPlanner::new(3, 8);
        p.track(small_plan(), 0, 0);
        let newer = PartitionPlan {
            cluster_ways: vec![8],
            assignments: vec![],
        };
        p.track(newer.clone(), 0, 1);
        let mut a = Actions::default();
        let r = p.verify(&epoch_view(0, 2), &mut a, 2);
        assert_eq!(r.retried, 1);
        assert_eq!(a.partition.as_ref(), Some(&newer));
    }

    #[test]
    fn late_landing_is_confirmed_not_reissued() {
        // A delayed migration lands during the backoff window; the next
        // verify confirms instead of re-issuing — the no-double-apply
        // property at the planner level.
        let mut p = SwapPlanner::new(3, 8);
        track_swap(&mut p, 0);
        let mut a = Actions::default();
        let r = p.verify(&view(&[(0, 0), (1, 4)], &[], 1), &mut a, 1);
        assert_eq!(r.retried, 1);
        // The swap lands late, inside the backoff window.
        let mut a = Actions::default();
        let r = p.verify(&view(&[(0, 4), (1, 0)], &[], 2), &mut a, 2);
        assert_eq!(r.confirmed, 1);
        assert!(a.is_empty());
        assert_eq!(p.pending_swaps(), 0);
    }
}
