//! What a scheduler is allowed to observe each quantum.
//!
//! A real contention-aware scheduler sees per-thread performance counters
//! and the core topology — nothing else. [`SystemView`] packages exactly
//! that: per-thread rates over the last quantum (from counter deltas) and
//! per-core observed bandwidth. Ground-truth simulator state (phase
//! programs, intrinsic miss ratios) is deliberately absent.

use dike_counters::RateSample;
use dike_machine::topology::CoreKind;
use dike_machine::{AppId, DomainId, PartitionPlan, SimTime, ThreadCounters, ThreadId, VCoreId};

/// Per-thread observation for the last quantum.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadObservation {
    /// Thread id.
    pub id: ThreadId,
    /// Owning application.
    pub app: AppId,
    /// Core the thread is currently pinned to.
    pub vcore: VCoreId,
    /// Rates over the last quantum.
    pub rates: RateSample,
    /// Cumulative counters since spawn.
    pub cumulative: ThreadCounters,
    /// True if this thread migrated during the last quantum (the paper's
    /// Decider skips threads swapped in the previous quantum).
    pub migrated_last_quantum: bool,
    /// Estimated LLC occupancy in MiB — the Intel CMT analogue a
    /// cache-partitioning policy samples to build miss curves. Subject to
    /// the same telemetry faults as the counter rates.
    pub llc_occupancy_mib: f64,
}

/// Per-core observation for the last quantum.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreObservation {
    /// Core id.
    pub id: VCoreId,
    /// Core kind (class + frequency) — public hardware knowledge.
    pub kind: CoreKind,
    /// NUMA domain of the core — public hardware knowledge, like the kind.
    /// Always `DomainId(0)` on single-controller machines.
    pub domain: DomainId,
    /// Memory accesses served per second on this core over the last
    /// quantum — the raw input to the paper's `CoreBW` moving mean.
    pub bandwidth: f64,
}

/// A scheduler's complete view of the system at a quantum boundary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SystemView {
    /// Current simulated time.
    pub now: SimTime,
    /// Length of the quantum that just elapsed.
    pub quantum: SimTime,
    /// Index of this quantum (0 = after the first quantum).
    pub quantum_index: u64,
    /// Alive threads, in thread-id order.
    pub threads: Vec<ThreadObservation>,
    /// All cores, in core-id order.
    pub cores: Vec<CoreObservation>,
    /// Number of NUMA domains on the machine — public hardware knowledge
    /// from the topology, so policies never have to re-derive it by
    /// scanning per-core domain tags. `0` (the default) means "unstated";
    /// consumers treat it as a single domain.
    pub num_domains: usize,
    /// Threads that arrived (were spawned) during the quantum that just
    /// elapsed, in spawn order. Always empty for a closed workload, where
    /// every thread exists before the driver starts.
    pub arrived: Vec<ThreadId>,
    /// Threads that departed (finished) during the quantum that just
    /// elapsed, in thread-id order. Departed threads are absent from
    /// `threads`; policies must evict any per-thread state they keep.
    pub departed: Vec<ThreadId>,
    /// Per-core occupancy in CSR form: core `v` hosts
    /// `occ_ids[occ_offsets[v] .. occ_offsets[v+1]]` (thread-id order).
    /// Derived from the machine's actual placement, so a thread whose
    /// telemetry sample was dropped this quantum still appears on its
    /// core; read through [`SystemView::occupants`]. Empty (all cores
    /// unoccupied) when a hand-built view never called
    /// [`SystemView::assign_occupants`].
    pub occ_offsets: Vec<u32>,
    /// CSR payload for [`SystemView::occupants`]: thread ids grouped by
    /// core, cores in id order, ids ascending within a core.
    pub occ_ids: Vec<ThreadId>,
    /// Number of successful partition applications on the machine so far
    /// (see [`dike_machine::Machine::partition_epoch`]). A policy that
    /// requested a [`PartitionPlan`] checks this advanced to verify the
    /// request actually landed.
    pub partition_epoch: u64,
}

impl SystemView {
    /// Observation for a specific thread, if alive.
    pub fn thread(&self, id: ThreadId) -> Option<&ThreadObservation> {
        self.threads.iter().find(|t| t.id == id)
    }

    /// Threads currently pinned to core `v` (alive only, ascending id).
    /// Returns an empty slice when occupancy was never assigned (a
    /// hand-built view) or the core id is out of range.
    pub fn occupants(&self, v: VCoreId) -> &[ThreadId] {
        let i = v.index();
        if i + 1 >= self.occ_offsets.len() {
            return &[];
        }
        &self.occ_ids[self.occ_offsets[i] as usize..self.occ_offsets[i + 1] as usize]
    }

    /// Populate the occupancy CSR from the observation list (each thread
    /// on its `vcore`). Fixture helper for hand-built views; the driver
    /// instead derives occupancy from the machine's placement so telemetry
    /// dropout cannot hide a live thread from its core.
    pub fn assign_occupants(&mut self) {
        let n = self.cores.len();
        self.occ_offsets.clear();
        self.occ_offsets.resize(n + 1, 0);
        for t in &self.threads {
            self.occ_offsets[t.vcore.index() + 1] += 1;
        }
        for v in 0..n {
            self.occ_offsets[v + 1] += self.occ_offsets[v];
        }
        self.occ_ids.clear();
        self.occ_ids.resize(self.threads.len(), ThreadId(0));
        let mut cursor: Vec<u32> = self.occ_offsets[..n].to_vec();
        for t in &self.threads {
            let c = &mut cursor[t.vcore.index()];
            self.occ_ids[*c as usize] = t.id;
            *c += 1;
        }
    }

    /// Observation for a core.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn core(&self, id: VCoreId) -> &CoreObservation {
        &self.cores[id.index()]
    }

    /// Memory access rates of all alive threads (the Selector's input).
    pub fn access_rates(&self) -> Vec<f64> {
        self.threads.iter().map(|t| t.rates.access_rate).collect()
    }
}

/// Actions a scheduler may request at a quantum boundary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Actions {
    /// Affinity changes to apply, in order.
    pub migrations: Vec<(ThreadId, VCoreId)>,
    /// Pair tag per migration, parallel to `migrations`: entries sharing a
    /// tag were requested together by [`Actions::swap`];
    /// [`Actions::NO_PAIR`] marks a unilateral [`Actions::migrate`]. The
    /// driver counts a swap as completed only when both members of a tag
    /// actually landed, so lost or delayed migrations can no longer be
    /// mistaken for half a swap.
    pair_of: Vec<u32>,
    /// Number of swap pairs requested (tags are `0..num_pairs`).
    num_pairs: u32,
    /// Change the scheduling quantum from the next quantum on (the
    /// Optimizer's `quantaLength` actuation).
    pub set_quantum: Option<SimTime>,
    /// LLC way-partitioning request — the second actuator channel. At most
    /// one plan per quantum; a later request in the same quantum replaces
    /// an earlier one (the machine applies plans wholesale). Subject to
    /// the same actuation faults as migrations: the driver may drop or
    /// delay it, so policies verify via [`SystemView::partition_epoch`]
    /// (or a [`crate::PartitionPlanner`]).
    pub partition: Option<PartitionPlan>,
}

impl Actions {
    /// Pair tag of a migration requested outside any swap.
    pub const NO_PAIR: u32 = u32::MAX;

    /// Request a migration.
    pub fn migrate(&mut self, thread: ThreadId, to: VCoreId) {
        self.migrations.push((thread, to));
        self.pair_of.push(Self::NO_PAIR);
    }

    /// Request a pairwise swap: each thread moves to the other's core.
    pub fn swap(&mut self, a: (ThreadId, VCoreId), b: (ThreadId, VCoreId)) {
        let tag = self.num_pairs;
        self.num_pairs += 1;
        self.migrations.push((a.0, b.1));
        self.migrations.push((b.0, a.1));
        self.pair_of.push(tag);
        self.pair_of.push(tag);
    }

    /// Pair tag of migration `i`: `Some(tag)` when it is one member of a
    /// requested swap, `None` for a unilateral migration (including
    /// entries pushed directly onto `migrations` without going through
    /// [`Actions::migrate`]).
    pub fn pair_tag(&self, i: usize) -> Option<u32> {
        match self.pair_of.get(i) {
            Some(&t) if t != Self::NO_PAIR => Some(t),
            _ => None,
        }
    }

    /// Number of swap pairs requested via [`Actions::swap`].
    pub fn num_pairs(&self) -> u32 {
        self.num_pairs
    }

    /// Reset to the empty state, retaining buffer capacity (the driver
    /// reuses one `Actions` across every quantum of a run).
    pub fn clear(&mut self) {
        self.migrations.clear();
        self.pair_of.clear();
        self.num_pairs = 0;
        self.set_quantum = None;
        self.partition = None;
    }

    /// True when no actions were requested.
    pub fn is_empty(&self) -> bool {
        self.migrations.is_empty() && self.set_quantum.is_none() && self.partition.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(id: u32, rate: f64) -> ThreadObservation {
        ThreadObservation {
            id: ThreadId(id),
            app: AppId(0),
            vcore: VCoreId(id),
            rates: RateSample {
                access_rate: rate,
                ..RateSample::default()
            },
            cumulative: ThreadCounters::default(),
            migrated_last_quantum: false,
            llc_occupancy_mib: 0.0,
        }
    }

    #[test]
    fn view_lookup_helpers() {
        let mut view = SystemView {
            now: SimTime::from_ms(500),
            quantum: SimTime::from_ms(500),
            quantum_index: 0,
            threads: vec![obs(0, 10.0), obs(1, 20.0)],
            arrived: vec![ThreadId(0)],
            departed: vec![ThreadId(9)],
            cores: vec![
                CoreObservation {
                    id: VCoreId(0),
                    kind: CoreKind::FAST,
                    domain: DomainId(0),
                    bandwidth: 5.0,
                },
                CoreObservation {
                    id: VCoreId(1),
                    kind: CoreKind::SLOW,
                    domain: DomainId(0),
                    bandwidth: 7.0,
                },
            ],
            ..SystemView::default()
        };
        assert_eq!(view.thread(ThreadId(1)).unwrap().rates.access_rate, 20.0);
        assert!(view.thread(ThreadId(9)).is_none());
        assert_eq!(view.core(VCoreId(1)).bandwidth, 7.0);
        assert_eq!(view.access_rates(), vec![10.0, 20.0]);
        // Occupancy is empty until assigned, then reflects the threads.
        assert!(view.occupants(VCoreId(0)).is_empty());
        view.assign_occupants();
        assert_eq!(view.occupants(VCoreId(0)), &[ThreadId(0)]);
        assert_eq!(view.occupants(VCoreId(1)), &[ThreadId(1)]);
        assert!(view.occupants(VCoreId(7)).is_empty());
    }

    #[test]
    fn assign_occupants_groups_by_core_in_id_order() {
        let mut t0 = obs(0, 1.0);
        let mut t1 = obs(1, 1.0);
        let mut t2 = obs(2, 1.0);
        t0.vcore = VCoreId(1);
        t1.vcore = VCoreId(0);
        t2.vcore = VCoreId(1);
        let mk_core = |id: u32| CoreObservation {
            id: VCoreId(id),
            kind: CoreKind::FAST,
            domain: DomainId(0),
            bandwidth: 0.0,
        };
        let mut view = SystemView {
            threads: vec![t0, t1, t2],
            cores: vec![mk_core(0), mk_core(1), mk_core(2)],
            ..SystemView::default()
        };
        view.assign_occupants();
        assert_eq!(view.occupants(VCoreId(0)), &[ThreadId(1)]);
        assert_eq!(view.occupants(VCoreId(1)), &[ThreadId(0), ThreadId(2)]);
        assert!(view.occupants(VCoreId(2)).is_empty());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn actions_swap_crosses_cores() {
        let mut a = Actions::default();
        assert!(a.is_empty());
        a.swap((ThreadId(0), VCoreId(3)), (ThreadId(1), VCoreId(7)));
        assert_eq!(
            a.migrations,
            vec![(ThreadId(0), VCoreId(7)), (ThreadId(1), VCoreId(3))]
        );
        assert!(!a.is_empty());
        let mut b = Actions::default();
        b.set_quantum = Some(SimTime::from_ms(100));
        assert!(!b.is_empty());
        // A partition request alone also makes the actions non-empty, and
        // clear() resets it with everything else.
        let mut c = Actions::default();
        c.partition = Some(PartitionPlan {
            cluster_ways: vec![4],
            assignments: vec![(ThreadId(0), 0)],
        });
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
        assert!(c.partition.is_none());
    }

    #[test]
    fn pair_tags_distinguish_swaps_from_unilateral_migrations() {
        let mut a = Actions::default();
        a.swap((ThreadId(0), VCoreId(0)), (ThreadId(1), VCoreId(1)));
        a.migrate(ThreadId(2), VCoreId(5));
        a.swap((ThreadId(3), VCoreId(2)), (ThreadId(4), VCoreId(3)));
        assert_eq!(a.num_pairs(), 2);
        assert_eq!(a.pair_tag(0), Some(0));
        assert_eq!(a.pair_tag(1), Some(0));
        assert_eq!(a.pair_tag(2), None);
        assert_eq!(a.pair_tag(3), Some(1));
        assert_eq!(a.pair_tag(4), Some(1));
        assert_eq!(a.pair_tag(99), None);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.num_pairs(), 0);
        // A raw push without the helper is treated as unilateral.
        a.migrations.push((ThreadId(9), VCoreId(0)));
        assert_eq!(a.pair_tag(0), None);
    }
}
