//! What a scheduler is allowed to observe each quantum.
//!
//! A real contention-aware scheduler sees per-thread performance counters
//! and the core topology — nothing else. [`SystemView`] packages exactly
//! that: per-thread rates over the last quantum (from counter deltas) and
//! per-core observed bandwidth. Ground-truth simulator state (phase
//! programs, intrinsic miss ratios) is deliberately absent.

use dike_counters::RateSample;
use dike_machine::topology::CoreKind;
use dike_machine::{AppId, DomainId, SimTime, ThreadCounters, ThreadId, VCoreId};

/// Per-thread observation for the last quantum.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadObservation {
    /// Thread id.
    pub id: ThreadId,
    /// Owning application.
    pub app: AppId,
    /// Core the thread is currently pinned to.
    pub vcore: VCoreId,
    /// Rates over the last quantum.
    pub rates: RateSample,
    /// Cumulative counters since spawn.
    pub cumulative: ThreadCounters,
    /// True if this thread migrated during the last quantum (the paper's
    /// Decider skips threads swapped in the previous quantum).
    pub migrated_last_quantum: bool,
}

/// Per-core observation for the last quantum.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreObservation {
    /// Core id.
    pub id: VCoreId,
    /// Core kind (class + frequency) — public hardware knowledge.
    pub kind: CoreKind,
    /// NUMA domain of the core — public hardware knowledge, like the kind.
    /// Always `DomainId(0)` on single-controller machines.
    pub domain: DomainId,
    /// Memory accesses served per second on this core over the last
    /// quantum — the raw input to the paper's `CoreBW` moving mean.
    pub bandwidth: f64,
    /// Threads currently pinned to this core (alive only).
    pub occupants: Vec<ThreadId>,
}

/// A scheduler's complete view of the system at a quantum boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemView {
    /// Current simulated time.
    pub now: SimTime,
    /// Length of the quantum that just elapsed.
    pub quantum: SimTime,
    /// Index of this quantum (0 = after the first quantum).
    pub quantum_index: u64,
    /// Alive threads, in thread-id order.
    pub threads: Vec<ThreadObservation>,
    /// All cores, in core-id order.
    pub cores: Vec<CoreObservation>,
    /// Threads that arrived (were spawned) during the quantum that just
    /// elapsed, in spawn order. Always empty for a closed workload, where
    /// every thread exists before the driver starts.
    pub arrived: Vec<ThreadId>,
    /// Threads that departed (finished) during the quantum that just
    /// elapsed, in thread-id order. Departed threads are absent from
    /// `threads`; policies must evict any per-thread state they keep.
    pub departed: Vec<ThreadId>,
}

impl SystemView {
    /// Observation for a specific thread, if alive.
    pub fn thread(&self, id: ThreadId) -> Option<&ThreadObservation> {
        self.threads.iter().find(|t| t.id == id)
    }

    /// Observation for a core.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn core(&self, id: VCoreId) -> &CoreObservation {
        &self.cores[id.index()]
    }

    /// Memory access rates of all alive threads (the Selector's input).
    pub fn access_rates(&self) -> Vec<f64> {
        self.threads.iter().map(|t| t.rates.access_rate).collect()
    }
}

/// Actions a scheduler may request at a quantum boundary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Actions {
    /// Affinity changes to apply, in order.
    pub migrations: Vec<(ThreadId, VCoreId)>,
    /// Change the scheduling quantum from the next quantum on (the
    /// Optimizer's `quantaLength` actuation).
    pub set_quantum: Option<SimTime>,
}

impl Actions {
    /// Request a migration.
    pub fn migrate(&mut self, thread: ThreadId, to: VCoreId) {
        self.migrations.push((thread, to));
    }

    /// Request a pairwise swap: each thread moves to the other's core.
    pub fn swap(&mut self, a: (ThreadId, VCoreId), b: (ThreadId, VCoreId)) {
        self.migrations.push((a.0, b.1));
        self.migrations.push((b.0, a.1));
    }

    /// True when no actions were requested.
    pub fn is_empty(&self) -> bool {
        self.migrations.is_empty() && self.set_quantum.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(id: u32, rate: f64) -> ThreadObservation {
        ThreadObservation {
            id: ThreadId(id),
            app: AppId(0),
            vcore: VCoreId(id),
            rates: RateSample {
                access_rate: rate,
                ..RateSample::default()
            },
            cumulative: ThreadCounters::default(),
            migrated_last_quantum: false,
        }
    }

    #[test]
    fn view_lookup_helpers() {
        let view = SystemView {
            now: SimTime::from_ms(500),
            quantum: SimTime::from_ms(500),
            quantum_index: 0,
            threads: vec![obs(0, 10.0), obs(1, 20.0)],
            arrived: vec![ThreadId(0)],
            departed: vec![ThreadId(9)],
            cores: vec![
                CoreObservation {
                    id: VCoreId(0),
                    kind: CoreKind::FAST,
                    domain: DomainId(0),
                    bandwidth: 5.0,
                    occupants: vec![ThreadId(0)],
                },
                CoreObservation {
                    id: VCoreId(1),
                    kind: CoreKind::SLOW,
                    domain: DomainId(0),
                    bandwidth: 7.0,
                    occupants: vec![ThreadId(1)],
                },
            ],
        };
        assert_eq!(view.thread(ThreadId(1)).unwrap().rates.access_rate, 20.0);
        assert!(view.thread(ThreadId(9)).is_none());
        assert_eq!(view.core(VCoreId(1)).bandwidth, 7.0);
        assert_eq!(view.access_rates(), vec![10.0, 20.0]);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn actions_swap_crosses_cores() {
        let mut a = Actions::default();
        assert!(a.is_empty());
        a.swap((ThreadId(0), VCoreId(3)), (ThreadId(1), VCoreId(7)));
        assert_eq!(
            a.migrations,
            vec![(ThreadId(0), VCoreId(7)), (ThreadId(1), VCoreId(3))]
        );
        assert!(!a.is_empty());
        let mut b = Actions::default();
        b.set_quantum = Some(SimTime::from_ms(100));
        assert!(!b.is_empty());
    }
}
