//! The `Scheduler` trait all policies implement.

use crate::view::{Actions, SystemView};
use dike_machine::SimTime;

/// A quantum-driven thread scheduler.
///
/// The driver calls [`Scheduler::on_quantum`] at every quantum boundary with
/// the last quantum's observations; the scheduler responds with migrations
/// and (optionally) a new quantum length. Policies must not assume any
/// a-priori knowledge of the workload — everything they know must come from
/// the views.
pub trait Scheduler {
    /// Policy name for reports (e.g. `"DIO"`, `"Dike-AF"`).
    fn name(&self) -> &str;

    /// The quantum length the driver should start with.
    fn initial_quantum(&self) -> SimTime;

    /// Called at each quantum boundary. Populate `actions` with migrations
    /// and/or a quantum change.
    fn on_quantum(&mut self, view: &SystemView, actions: &mut Actions);
}

/// A scheduler that never acts — the no-op floor every policy must beat.
#[derive(Debug, Clone, Default)]
pub struct NullScheduler {
    quantum: SimTime,
}

impl NullScheduler {
    /// A null scheduler with the given (irrelevant, but required) quantum.
    pub fn new(quantum: SimTime) -> Self {
        NullScheduler { quantum }
    }
}

impl Scheduler for NullScheduler {
    fn name(&self) -> &str {
        "null"
    }

    fn initial_quantum(&self) -> SimTime {
        if self.quantum == SimTime::ZERO {
            SimTime::from_ms(500)
        } else {
            self.quantum
        }
    }

    fn on_quantum(&mut self, _view: &SystemView, _actions: &mut Actions) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_scheduler_does_nothing() {
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        assert_eq!(s.name(), "null");
        assert_eq!(s.initial_quantum(), SimTime::from_ms(100));
        let view = SystemView {
            quantum: SimTime::from_ms(100),
            ..SystemView::default()
        };
        let mut actions = Actions::default();
        s.on_quantum(&view, &mut actions);
        assert!(actions.is_empty());
        assert_eq!(
            NullScheduler::default().initial_quantum(),
            SimTime::from_ms(500)
        );
    }
}
