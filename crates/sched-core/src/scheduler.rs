//! The `Scheduler` trait all policies implement.

use crate::view::{Actions, SystemView};
use dike_machine::SimTime;

/// A quantum-driven thread scheduler.
///
/// The driver calls [`Scheduler::on_quantum`] at every quantum boundary with
/// the last quantum's observations; the scheduler responds with migrations
/// and (optionally) a new quantum length. Policies must not assume any
/// a-priori knowledge of the workload — everything they know must come from
/// the views.
pub trait Scheduler {
    /// Policy name for reports (e.g. `"DIO"`, `"Dike-AF"`).
    fn name(&self) -> &str;

    /// The quantum length the driver should start with. This is a real
    /// actuation, not metadata: the driver times its observe→decide→act
    /// loop on it from the first quantum, in closed runs and open
    /// (event-driven) runs alike — threads that arrive or depart between
    /// boundaries are surfaced in the *next* view's `arrived`/`departed`
    /// lists, never mid-quantum. A policy can change the cadence later via
    /// [`Actions::set_quantum`].
    fn initial_quantum(&self) -> SimTime;

    /// Called at each quantum boundary. Populate `actions` with any
    /// combination of the actuator channels: migrations/swaps, an LLC
    /// way-partitioning plan ([`Actions::partition`]), and/or a quantum
    /// change.
    fn on_quantum(&mut self, view: &SystemView, actions: &mut Actions);
}

/// A scheduler that never acts — the no-op floor every policy must beat.
/// Threads stay wherever the substrate (spawn placement plus the
/// CFS-like idle balancer) puts them; in open runs, arrivals and
/// departures are still driven normally — the policy just never reacts
/// to them.
#[derive(Debug, Clone, Default)]
pub struct NullScheduler {
    quantum: SimTime,
}

impl NullScheduler {
    /// A null scheduler observing at the given cadence. The quantum still
    /// matters even for a policy that never acts: it sets how often the
    /// driver samples counters and processes arrivals in open runs.
    pub fn new(quantum: SimTime) -> Self {
        NullScheduler { quantum }
    }
}

impl Scheduler for NullScheduler {
    fn name(&self) -> &str {
        "null"
    }

    fn initial_quantum(&self) -> SimTime {
        if self.quantum == SimTime::ZERO {
            SimTime::from_ms(500)
        } else {
            self.quantum
        }
    }

    fn on_quantum(&mut self, _view: &SystemView, _actions: &mut Actions) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_scheduler_does_nothing() {
        let mut s = NullScheduler::new(SimTime::from_ms(100));
        assert_eq!(s.name(), "null");
        assert_eq!(s.initial_quantum(), SimTime::from_ms(100));
        let view = SystemView {
            quantum: SimTime::from_ms(100),
            ..SystemView::default()
        };
        let mut actions = Actions::default();
        s.on_quantum(&view, &mut actions);
        assert!(actions.is_empty());
        assert_eq!(
            NullScheduler::default().initial_quantum(),
            SimTime::from_ms(500)
        );
    }
}
