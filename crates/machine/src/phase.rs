//! Execution phases: the workload-facing description of *how* a thread
//! computes.
//!
//! A thread's behaviour is a [`PhaseProgram`]: a sequence of [`Phase`]s, each
//! describing a region of the computation by its micro-architectural
//! signature — cycles per instruction assuming a private cache, last-level
//! cache misses per kilo-instruction, and working-set size. The simulated
//! machine turns these into achieved instruction rates under contention; the
//! scheduler only ever sees the resulting performance-counter time series,
//! exactly as on real hardware.

use dike_util::{json_enum, json_struct};

/// One execution phase of a thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Cycles per instruction with no LLC misses (pipeline-limited CPI).
    /// Sub-1.0 values model superscalar issue.
    pub cpi_exec: f64,
    /// LLC misses per 1000 instructions when the thread has the cache to
    /// itself. This is the thread's intrinsic memory intensity.
    pub mpki: f64,
    /// LLC *accesses* per 1000 instructions (loads/stores reaching the
    /// shared cache). `mpki / apki` is the thread's LLC miss rate — the
    /// quantity the paper's 10 % classification boundary refers to.
    pub apki: f64,
    /// Working-set size in MiB, used by the shared-cache pressure model.
    pub working_set_mib: f64,
    /// Number of instructions in this phase.
    pub instructions: f64,
    /// Relative amplitude of deterministic per-tick fluctuation of `mpki`
    /// (0.0 = perfectly steady; compute-intensive Rodinia apps are bursty).
    pub burstiness: f64,
}

impl Phase {
    /// A steady phase with no fluctuation and a default LLC access
    /// intensity of 300 accesses per kilo-instruction.
    pub fn steady(cpi_exec: f64, mpki: f64, working_set_mib: f64, instructions: f64) -> Self {
        Phase {
            cpi_exec,
            mpki,
            apki: 300.0,
            working_set_mib,
            instructions,
            burstiness: 0.0,
        }
    }

    /// Builder: set the LLC access intensity (accesses per kilo-instruction).
    ///
    /// # Panics
    /// Panics if `apki < mpki` (a miss is an access).
    pub fn with_apki(mut self, apki: f64) -> Self {
        assert!(apki >= self.mpki, "apki {} < mpki {}", apki, self.mpki);
        self.apki = apki;
        self
    }

    /// Builder: set the burstiness amplitude.
    pub fn with_burstiness(mut self, burstiness: f64) -> Self {
        self.burstiness = burstiness;
        self
    }

    /// Intrinsic LLC miss *rate* (misses per access), the classification
    /// quantity of the paper's Observer.
    #[inline]
    pub fn llc_miss_rate(&self) -> f64 {
        if self.apki > 0.0 {
            self.mpki / self.apki
        } else {
            0.0
        }
    }

    /// Intrinsic miss *ratio* (misses per instruction).
    #[inline]
    pub fn miss_ratio(&self) -> f64 {
        self.mpki / 1000.0
    }

    /// Validate physical plausibility; returns a description of the first
    /// violation if any.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.cpi_exec > 0.0) {
            return Err(format!("cpi_exec must be > 0, got {}", self.cpi_exec));
        }
        if !(self.mpki >= 0.0) {
            return Err(format!("mpki must be >= 0, got {}", self.mpki));
        }
        if self.mpki > 1000.0 {
            return Err(format!("mpki cannot exceed 1000, got {}", self.mpki));
        }
        if self.apki < self.mpki {
            return Err(format!(
                "apki ({}) must be >= mpki ({}): a miss is an access",
                self.apki, self.mpki
            ));
        }
        if !(self.working_set_mib >= 0.0) {
            return Err(format!(
                "working_set_mib must be >= 0, got {}",
                self.working_set_mib
            ));
        }
        if !(self.instructions > 0.0) {
            return Err(format!(
                "instructions must be > 0, got {}",
                self.instructions
            ));
        }
        if !(0.0..=1.0).contains(&self.burstiness) {
            return Err(format!(
                "burstiness must be in [0,1], got {}",
                self.burstiness
            ));
        }
        Ok(())
    }
}

/// How a program behaves once the listed phases are exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseRepeat {
    /// The thread finishes after the last phase.
    Once,
    /// Phases after index `from` repeat cyclically until the thread's total
    /// instruction budget is spent (models iterative kernels: a startup
    /// phase followed by a steady loop).
    LoopFrom(usize),
}

/// A complete phase program for one thread.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProgram {
    /// The phases, executed in order.
    pub phases: Vec<Phase>,
    /// Looping behaviour.
    pub repeat: PhaseRepeat,
    /// Total instructions the thread retires before completing. For
    /// [`PhaseRepeat::Once`] programs this may be at most the sum of phase
    /// lengths (the program is truncated at the budget); for looping
    /// programs it determines how many loop iterations run.
    pub total_instructions: f64,
}

json_struct!(Phase {
    cpi_exec,
    mpki,
    apki,
    working_set_mib,
    instructions,
    burstiness,
});
json_enum!(PhaseRepeat { Once } { LoopFrom(usize) });
json_struct!(PhaseProgram {
    phases,
    repeat,
    total_instructions,
});

impl PhaseProgram {
    /// A single steady phase of `total_instructions`.
    pub fn single(phase: Phase, total_instructions: f64) -> Self {
        PhaseProgram {
            phases: vec![phase],
            repeat: PhaseRepeat::LoopFrom(0),
            total_instructions,
        }
    }

    /// Validate the program.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("phase program must have at least one phase".into());
        }
        for (i, p) in self.phases.iter().enumerate() {
            p.validate().map_err(|e| format!("phase {i}: {e}"))?;
        }
        if let PhaseRepeat::LoopFrom(from) = self.repeat {
            if from >= self.phases.len() {
                return Err(format!(
                    "loop start {} out of range ({} phases)",
                    from,
                    self.phases.len()
                ));
            }
        }
        if !(self.total_instructions > 0.0) {
            return Err(format!(
                "total_instructions must be > 0, got {}",
                self.total_instructions
            ));
        }
        Ok(())
    }

    /// The phase active after `retired` instructions have been executed.
    ///
    /// Returns `None` once the program is complete (all instructions retired,
    /// or a `Once` program ran out of phases).
    pub fn phase_at(&self, retired: f64) -> Option<&Phase> {
        if retired >= self.total_instructions {
            return None;
        }
        let mut pos = retired;
        for p in &self.phases {
            if pos < p.instructions {
                return Some(p);
            }
            pos -= p.instructions;
        }
        match self.repeat {
            PhaseRepeat::Once => None,
            PhaseRepeat::LoopFrom(from) => {
                let loop_len: f64 = self.phases[from..].iter().map(|p| p.instructions).sum();
                if loop_len <= 0.0 {
                    return None;
                }
                let mut pos = pos % loop_len;
                for p in &self.phases[from..] {
                    if pos < p.instructions {
                        return Some(p);
                    }
                    pos -= p.instructions;
                }
                // Floating point edge: land exactly on the loop boundary.
                self.phases.get(from)
            }
        }
    }

    /// Instructions remaining until either the program completes or the
    /// current phase ends, whichever is sooner. Used by the engine to detect
    /// phase boundaries inside a tick.
    pub fn instructions_to_boundary(&self, retired: f64) -> f64 {
        let to_completion = (self.total_instructions - retired).max(0.0);
        let mut pos = retired;
        for p in &self.phases {
            if pos < p.instructions {
                return (p.instructions - pos).min(to_completion);
            }
            pos -= p.instructions;
        }
        match self.repeat {
            PhaseRepeat::Once => 0.0,
            PhaseRepeat::LoopFrom(from) => {
                let loop_len: f64 = self.phases[from..].iter().map(|p| p.instructions).sum();
                if loop_len <= 0.0 {
                    return 0.0;
                }
                let mut pos = pos % loop_len;
                for p in &self.phases[from..] {
                    if pos < p.instructions {
                        return (p.instructions - pos).min(to_completion);
                    }
                    pos -= p.instructions;
                }
                to_completion
            }
        }
    }

    /// The active phase together with the distance to the next boundary:
    /// exactly `(phase_at(retired), instructions_to_boundary(retired))`,
    /// computed in a single walk. The engine calls this once per runnable
    /// thread per tick and reuses the result everywhere the tick used to
    /// repeat the walk; both components reproduce the two separate lookups
    /// bit-for-bit (same walk, same floating-point expressions).
    pub fn phase_and_boundary(&self, retired: f64) -> Option<(Phase, f64)> {
        if retired >= self.total_instructions {
            return None;
        }
        let to_completion = (self.total_instructions - retired).max(0.0);
        let mut pos = retired;
        for p in &self.phases {
            if pos < p.instructions {
                return Some((*p, (p.instructions - pos).min(to_completion)));
            }
            pos -= p.instructions;
        }
        match self.repeat {
            PhaseRepeat::Once => None,
            PhaseRepeat::LoopFrom(from) => {
                let loop_len: f64 = self.phases[from..].iter().map(|p| p.instructions).sum();
                if loop_len <= 0.0 {
                    return None;
                }
                let mut pos = pos % loop_len;
                for p in &self.phases[from..] {
                    if pos < p.instructions {
                        return Some((*p, (p.instructions - pos).min(to_completion)));
                    }
                    pos -= p.instructions;
                }
                // Floating point edge: land exactly on the loop boundary.
                self.phases.get(from).map(|p| (*p, to_completion))
            }
        }
    }

    /// Mean intrinsic miss ratio weighted by phase length over one pass of
    /// the program (startup phases plus one loop iteration). A coarse
    /// summary used by workload classification in tests and docs — the
    /// scheduler itself never sees it.
    pub fn mean_miss_ratio(&self) -> f64 {
        let total: f64 = self.phases.iter().map(|p| p.instructions).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.phases
            .iter()
            .map(|p| p.miss_ratio() * p.instructions)
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase_program() -> PhaseProgram {
        PhaseProgram {
            phases: vec![
                Phase::steady(1.0, 30.0, 16.0, 1000.0), // memory-bound startup
                Phase::steady(0.5, 2.0, 1.0, 500.0),    // compute loop body
            ],
            repeat: PhaseRepeat::LoopFrom(1),
            total_instructions: 3000.0,
        }
    }

    #[test]
    fn phase_at_walks_through_phases() {
        let p = two_phase_program();
        assert_eq!(p.phase_at(0.0).unwrap().mpki, 30.0);
        assert_eq!(p.phase_at(999.0).unwrap().mpki, 30.0);
        assert_eq!(p.phase_at(1000.0).unwrap().mpki, 2.0);
        // Loop: after phase 2 ends at 1500, loops back to phase index 1.
        assert_eq!(p.phase_at(1501.0).unwrap().mpki, 2.0);
        assert_eq!(p.phase_at(2999.0).unwrap().mpki, 2.0);
        assert!(p.phase_at(3000.0).is_none());
        assert!(p.phase_at(5000.0).is_none());
    }

    #[test]
    fn once_program_ends_with_phases() {
        let p = PhaseProgram {
            phases: vec![Phase::steady(1.0, 10.0, 4.0, 100.0)],
            repeat: PhaseRepeat::Once,
            total_instructions: 100.0,
        };
        assert!(p.phase_at(50.0).is_some());
        assert!(p.phase_at(100.0).is_none());
    }

    #[test]
    fn boundary_distances() {
        let p = two_phase_program();
        assert_eq!(p.instructions_to_boundary(0.0), 1000.0);
        assert_eq!(p.instructions_to_boundary(400.0), 600.0);
        assert_eq!(p.instructions_to_boundary(1000.0), 500.0);
        // Near completion the boundary is the completion point.
        assert_eq!(p.instructions_to_boundary(2900.0), 100.0);
        assert_eq!(p.instructions_to_boundary(3000.0), 0.0);
    }

    #[test]
    fn combined_lookup_matches_separate_walks_exactly() {
        // phase_and_boundary must reproduce (phase_at, instructions_to_
        // boundary) bit-for-bit — including awkward fractional positions and
        // the loop-boundary floating-point edge.
        let programs = [
            two_phase_program(),
            PhaseProgram {
                phases: vec![Phase::steady(1.0, 10.0, 4.0, 100.0)],
                repeat: PhaseRepeat::Once,
                total_instructions: 100.0,
            },
            PhaseProgram::single(Phase::steady(0.8, 5.0, 2.0, 333.3), 1e4),
        ];
        for p in &programs {
            let mut retired = 0.0;
            while retired < p.total_instructions + 10.0 {
                let combined = p.phase_and_boundary(retired);
                let separate = p
                    .phase_at(retired)
                    .map(|ph| (*ph, p.instructions_to_boundary(retired)));
                assert_eq!(combined, separate, "retired={retired}");
                retired += 61.7;
            }
        }
    }

    #[test]
    fn mean_miss_ratio_weights_by_length() {
        let p = two_phase_program();
        let expect = (0.030 * 1000.0 + 0.002 * 500.0) / 1500.0;
        assert!((p.mean_miss_ratio() - expect).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_phases() {
        let mut p = two_phase_program();
        assert!(p.validate().is_ok());
        p.phases[0].cpi_exec = 0.0;
        assert!(p.validate().unwrap_err().contains("cpi_exec"));
        let mut p = two_phase_program();
        p.phases[1].mpki = 2000.0;
        assert!(p.validate().unwrap_err().contains("mpki"));
        let mut p = two_phase_program();
        p.repeat = PhaseRepeat::LoopFrom(5);
        assert!(p.validate().unwrap_err().contains("loop start"));
        let mut p = two_phase_program();
        p.total_instructions = 0.0;
        assert!(p.validate().is_err());
        let mut p = two_phase_program();
        p.phases[0].burstiness = 1.5;
        assert!(p.validate().unwrap_err().contains("burstiness"));
        p.phases.clear();
        assert!(p.validate().is_err());
    }

    #[test]
    fn llc_miss_rate_and_apki_builder() {
        let p = Phase::steady(1.0, 30.0, 8.0, 1e6).with_apki(250.0);
        assert!((p.llc_miss_rate() - 0.12).abs() < 1e-12);
        assert!(p.validate().is_ok());
        let b = Phase::steady(0.6, 2.0, 1.0, 1e6).with_burstiness(0.3);
        assert_eq!(b.burstiness, 0.3);
        let mut bad = Phase::steady(1.0, 30.0, 8.0, 1e6);
        bad.apki = 10.0;
        assert!(bad.validate().unwrap_err().contains("apki"));
    }

    #[test]
    #[should_panic(expected = "apki")]
    fn with_apki_rejects_less_than_mpki() {
        let _ = Phase::steady(1.0, 30.0, 8.0, 1e6).with_apki(5.0);
    }

    #[test]
    fn single_program_loops_one_phase() {
        let p = PhaseProgram::single(Phase::steady(0.8, 5.0, 2.0, 100.0), 1e6);
        assert!(p.validate().is_ok());
        assert_eq!(p.phase_at(999_000.0).unwrap().mpki, 5.0);
        assert!(p.phase_at(1e6).is_none());
    }
}
