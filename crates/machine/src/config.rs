//! Machine configuration: every knob of the simulated hardware in one place.

use crate::faults::FaultConfig;
use crate::topology::Topology;
use dike_util::json_struct;

/// Parameters of the memory system. Every NUMA domain in the topology gets
/// its own controller with these parameters; the paper's testbed is the
/// single-controller (one-domain) case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Peak sustainable *per-controller* throughput in LLC-miss transfers
    /// per second. With 64-byte lines, 400e6 accesses/s ≈ 24 GiB/s. Total
    /// machine bandwidth scales with the number of domains.
    pub bandwidth_accesses_per_sec: f64,
    /// Uncontended effective memory access latency in seconds. This is the
    /// *effective* per-miss stall after memory-level parallelism, not the
    /// raw DRAM latency.
    pub base_latency_s: f64,
    /// Gain of the queueing-delay inflation: effective latency is
    /// `base * (1 + gain * rho / (1 - rho))` with utilisation `rho` capped
    /// at [`Self::max_utilisation`].
    pub queue_gain: f64,
    /// Cap on utilisation used inside the latency formula, keeping the
    /// model finite when demand exceeds bandwidth.
    pub max_utilisation: f64,
    /// Ratio of a core's *measured* bandwidth (uncore counters, which see
    /// hardware-prefetcher traffic) to its occupants' demand-miss traffic.
    /// Only affects the per-core bandwidth counters schedulers read — the
    /// paper's `CoreBW` — not the contention physics. Real uncore counts
    /// run 10–50 % above demand misses on prefetch-friendly streams.
    pub prefetch_factor: f64,
    /// Latency multiplier for a miss serviced by a *remote* controller: a
    /// thread running outside its home domain pays this factor on every
    /// per-miss stall (interconnect hop both ways). 1.5 is a typical local
    /// vs. remote DRAM ratio on two-hop x86 servers. Irrelevant on
    /// single-domain machines, where every access is local.
    pub remote_latency_factor: f64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            bandwidth_accesses_per_sec: 400e6,
            base_latency_s: 20e-9,
            queue_gain: 0.9,
            max_utilisation: 0.75,
            prefetch_factor: 1.1,
            remote_latency_factor: 1.5,
        }
    }
}

/// Parameters of the shared last-level cache pressure model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcConfig {
    /// Shared LLC capacity in MiB (25 MiB on the paper's Xeon E5).
    pub capacity_mib: f64,
    /// How strongly over-subscription inflates miss ratios: with total
    /// running working set `W`, each thread's miss ratio is multiplied by
    /// `1 + sensitivity * max(0, W/capacity - 1)`, capped by
    /// [`Self::max_inflation`].
    pub sensitivity: f64,
    /// Upper bound on the miss-ratio inflation factor.
    pub max_inflation: f64,
    /// Number of equal-capacity ways the cache divides into for
    /// way-partitioning (Intel CAT-style). 16 matches a 25 MiB Xeon E5
    /// LLC's 20-way associativity order of magnitude while keeping the
    /// arithmetic round. Purely an actuation granularity: with no
    /// partition applied the model never divides by it, so the
    /// unpartitioned solve is bit-identical whatever the value.
    pub ways: u32,
}

impl Default for LlcConfig {
    fn default() -> Self {
        LlcConfig {
            capacity_mib: 25.0,
            sensitivity: 0.12,
            max_inflation: 1.5,
            ways: 16,
        }
    }
}

/// Cost model for a thread migration (an affinity change).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// Dead time during which the migrating thread makes no progress
    /// (context switch, run-queue hop). The paper calls this `swapOH`.
    pub dead_time_us: u64,
    /// Base duration of the cache warm-up window after arrival on the new
    /// core (private-cache and TLB refill).
    pub warmup_us: u64,
    /// Additional warm-up per MiB of the migrating thread's current
    /// working set (refilling a large footprint at contended bandwidth
    /// dominates the cost — ~5 ms/MiB at a ~200 MiB/s contended share).
    pub warmup_us_per_mib: u64,
    /// Miss-ratio multiplier while warming up (cold cache on the new core).
    pub warmup_miss_multiplier: f64,
    /// Pipeline CPI multiplier while warming up: cold private caches and
    /// lost NUMA locality stall the pipeline itself, independently of the
    /// shared-bandwidth picture.
    pub warmup_cpi_multiplier: f64,
    /// Warm-up duration multiplier when the migration *leaves its NUMA
    /// domain*: the refill streams from a remote controller, so the whole
    /// warm-up window stretches by roughly the remote-access latency ratio.
    /// Intra-domain moves use the base warm-up unchanged.
    pub cross_domain_warmup_factor: f64,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        // The base costs model an *intra-domain* move: run-queue hop plus a
        // cold private cache refilled from the local controller for tens of
        // milliseconds (the paper's dual-socket testbed shares one memory
        // controller, so all of its swaps are intra-domain). A move that
        // crosses NUMA domains refills from a remote controller instead and
        // pays `cross_domain_warmup_factor` on the warm-up window.
        MigrationConfig {
            dead_time_us: 3_000,
            warmup_us: 40_000,
            warmup_us_per_mib: 5_000,
            warmup_miss_multiplier: 3.0,
            warmup_cpi_multiplier: 2.5,
            cross_domain_warmup_factor: 1.75,
        }
    }
}

/// The OS's underlying load balancer (CFS runs beneath every userspace
/// scheduling daemon on the paper's testbed). It is *count-based and
/// speed-oblivious*, like the pre-EAS x86 balancer: when the fast and
/// slow halves of the machine have unequal runnable-thread counts and the
/// lighter half has empty contexts, threads migrate over (experiencing
/// cache warm-up but no affinity-change dead time). Without this, a policy
/// that segregates thread types would leave a whole half idle once its
/// apps finish — something no real Linux box does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceConfig {
    /// Enable the substrate balancer (on for every scheduler, as on the
    /// real machine).
    pub enabled: bool,
    /// How often the balancer runs, in microseconds.
    pub interval_us: u64,
    /// Minimum cross-half imbalance (in threads) before acting.
    pub min_imbalance: u32,
}

impl Default for BalanceConfig {
    fn default() -> Self {
        BalanceConfig {
            enabled: true,
            interval_us: 100_000,
            min_imbalance: 2,
        }
    }
}

/// Simultaneous-multithreading interference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmtConfig {
    /// Fraction of the physical pipeline each context achieves when all its
    /// siblings are busy (0.62 means 2 busy siblings together reach 1.24× of
    /// single-context throughput, a typical SMT yield).
    pub busy_share: f64,
}

impl Default for SmtConfig {
    fn default() -> Self {
        SmtConfig { busy_share: 0.62 }
    }
}

/// Full configuration of a simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Core topology.
    pub topology: Topology,
    /// Memory controller model.
    pub memory: MemoryConfig,
    /// Shared-cache model.
    pub llc: LlcConfig,
    /// Migration cost model.
    pub migration: MigrationConfig,
    /// SMT interference model.
    pub smt: SmtConfig,
    /// Substrate load balancer.
    pub balance: BalanceConfig,
    /// Simulation tick in microseconds. Quanta must be multiples of this.
    pub tick_us: u64,
    /// Seed for deterministic burstiness noise.
    pub seed: u64,
    /// Fault injection at the observe/act boundary. All-zero (the
    /// default) disables the layer entirely; the driver then takes the
    /// exact pre-fault code path, keeping golden outputs byte-identical.
    pub faults: FaultConfig,
}

json_struct!(MemoryConfig {
    bandwidth_accesses_per_sec,
    base_latency_s,
    queue_gain,
    max_utilisation,
    prefetch_factor,
    remote_latency_factor,
});
json_struct!(LlcConfig {
    capacity_mib,
    sensitivity,
    max_inflation,
    ways,
});
json_struct!(MigrationConfig {
    dead_time_us,
    warmup_us,
    warmup_us_per_mib,
    warmup_miss_multiplier,
    warmup_cpi_multiplier,
    cross_domain_warmup_factor,
});
json_struct!(BalanceConfig {
    enabled,
    interval_us,
    min_imbalance,
});
json_struct!(SmtConfig { busy_share });
json_struct!(MachineConfig {
    topology,
    memory,
    llc,
    migration,
    smt,
    balance,
    tick_us,
    seed,
    faults,
});

impl MachineConfig {
    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.tick_us == 0 {
            return Err("tick_us must be > 0".into());
        }
        if !(self.memory.bandwidth_accesses_per_sec > 0.0) {
            return Err("memory bandwidth must be > 0".into());
        }
        if !(self.memory.base_latency_s > 0.0) {
            return Err("memory latency must be > 0".into());
        }
        if !(0.0..1.0).contains(&self.memory.max_utilisation) {
            return Err("max_utilisation must be in [0,1)".into());
        }
        if !(self.memory.prefetch_factor >= 1.0) {
            return Err("prefetch_factor must be >= 1".into());
        }
        if !(self.llc.capacity_mib > 0.0) {
            return Err("LLC capacity must be > 0".into());
        }
        if !(self.llc.max_inflation >= 1.0) {
            return Err("LLC max_inflation must be >= 1".into());
        }
        if self.llc.ways == 0 {
            return Err("LLC ways must be >= 1".into());
        }
        if !(0.0 < self.smt.busy_share && self.smt.busy_share <= 1.0) {
            return Err("SMT busy_share must be in (0,1]".into());
        }
        if !(self.migration.warmup_miss_multiplier >= 1.0) {
            return Err("warmup_miss_multiplier must be >= 1".into());
        }
        if !(self.migration.warmup_cpi_multiplier >= 1.0) {
            return Err("warmup_cpi_multiplier must be >= 1".into());
        }
        if !(self.migration.cross_domain_warmup_factor >= 1.0) {
            return Err("cross_domain_warmup_factor must be >= 1".into());
        }
        if !(self.memory.remote_latency_factor >= 1.0) {
            return Err("remote_latency_factor must be >= 1".into());
        }
        if self.balance.enabled && self.balance.interval_us == 0 {
            return Err("balance interval must be > 0 when enabled".into());
        }
        self.faults.validate()?;
        Ok(())
    }
}

/// Ready-made machine configurations.
pub mod presets {
    use super::*;
    use crate::topology::CoreKind;

    /// The paper's Table I testbed: 10 fast (2.33 GHz) + 10 slow (1.21 GHz)
    /// physical cores, 2-way SMT (40 virtual cores), 25 MiB shared LLC, one
    /// memory controller.
    pub fn paper_machine(seed: u64) -> MachineConfig {
        MachineConfig {
            topology: Topology::two_class(10, 10, 2),
            memory: MemoryConfig::default(),
            llc: LlcConfig::default(),
            migration: MigrationConfig::default(),
            smt: SmtConfig::default(),
            balance: BalanceConfig::default(),
            tick_us: 1_000,
            seed,
            faults: FaultConfig::default(),
        }
    }

    /// A scaled-out NUMA machine: `n_domains` replicas of the paper's
    /// socket mix (10 fast + 10 slow physical cores, 2-way SMT), each
    /// domain owning its own memory controller and LLC slice with the
    /// paper-machine parameters. 4 domains = 160 vcores, 8 = 320.
    pub fn numa_machine(n_domains: usize, seed: u64) -> MachineConfig {
        MachineConfig {
            topology: Topology::numa_uniform(n_domains, 10, 10, 2),
            ..paper_machine(seed)
        }
    }

    /// The same machine with every core fast — used by Figure 1's
    /// homogeneous-vs-heterogeneous comparison.
    pub fn homogeneous_machine(seed: u64) -> MachineConfig {
        MachineConfig {
            topology: Topology::homogeneous(20, CoreKind::FAST, 2),
            ..paper_machine(seed)
        }
    }

    /// A small machine (2 fast + 2 slow, 2-way SMT = 8 vcores) for fast
    /// unit tests and the quickstart example.
    pub fn small_machine(seed: u64) -> MachineConfig {
        MachineConfig {
            topology: Topology::two_class(2, 2, 2),
            memory: MemoryConfig {
                // Scale bandwidth with core count so contention intensity
                // per core matches the large machine.
                bandwidth_accesses_per_sec: 400e6 * (4.0 / 20.0),
                ..MemoryConfig::default()
            },
            llc: LlcConfig {
                capacity_mib: 5.0,
                ..LlcConfig::default()
            },
            migration: MigrationConfig::default(),
            smt: SmtConfig::default(),
            balance: BalanceConfig::default(),
            tick_us: 1_000,
            seed,
            faults: FaultConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(presets::paper_machine(1).validate().is_ok());
        assert!(presets::homogeneous_machine(1).validate().is_ok());
        assert!(presets::small_machine(1).validate().is_ok());
        assert!(presets::numa_machine(4, 1).validate().is_ok());
        assert!(presets::numa_machine(8, 1).validate().is_ok());
    }

    #[test]
    fn numa_presets_scale_core_counts() {
        assert_eq!(presets::numa_machine(4, 0).topology.num_vcores(), 160);
        assert_eq!(presets::numa_machine(8, 0).topology.num_vcores(), 320);
        assert_eq!(presets::numa_machine(8, 0).topology.num_domains(), 8);
        // The 1-domain preset is the paper machine's topology exactly.
        assert_eq!(
            presets::numa_machine(1, 0).topology.num_vcores(),
            presets::paper_machine(0).topology.num_vcores()
        );
    }

    #[test]
    fn paper_machine_matches_table1() {
        let m = presets::paper_machine(0);
        assert_eq!(m.topology.num_vcores(), 40);
        assert_eq!(m.llc.capacity_mib, 25.0);
        assert!(!m.topology.is_homogeneous());
        assert!(presets::homogeneous_machine(0).topology.is_homogeneous());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut m = presets::small_machine(0);
        m.tick_us = 0;
        assert!(m.validate().is_err());
        let mut m = presets::small_machine(0);
        m.memory.max_utilisation = 1.0;
        assert!(m.validate().is_err());
        let mut m = presets::small_machine(0);
        m.smt.busy_share = 0.0;
        assert!(m.validate().is_err());
        let mut m = presets::small_machine(0);
        m.llc.max_inflation = 0.5;
        assert!(m.validate().is_err());
        let mut m = presets::small_machine(0);
        m.migration.warmup_miss_multiplier = 0.9;
        assert!(m.validate().is_err());
        let mut m = presets::small_machine(0);
        m.memory.base_latency_s = 0.0;
        assert!(m.validate().is_err());
        let mut m = presets::small_machine(0);
        m.memory.bandwidth_accesses_per_sec = -1.0;
        assert!(m.validate().is_err());
        let mut m = presets::small_machine(0);
        m.llc.capacity_mib = 0.0;
        assert!(m.validate().is_err());
        let mut m = presets::small_machine(0);
        m.llc.ways = 0;
        assert!(m.validate().is_err());
        let mut m = presets::small_machine(0);
        m.memory.remote_latency_factor = 0.5;
        assert!(m.validate().is_err());
        let mut m = presets::small_machine(0);
        m.migration.cross_domain_warmup_factor = 0.0;
        assert!(m.validate().is_err());
    }
}
