//! LLC way-partitioning plans: the second actuator.
//!
//! A [`PartitionPlan`] divides each domain's shared LLC into clusters of
//! ways (Intel CAT-style) and assigns threads to clusters. The engine
//! applies a plan with [`crate::Machine::apply_partition`]; from then on
//! every cluster's threads contend only for the cluster's slice of the
//! cache (`capacity_mib * ways / total_ways`), while threads left
//! unassigned share the remainder ways. The same way-split applies in
//! every NUMA domain — the plan models a machine-wide CAT configuration,
//! the way `resctrl` programs one class-of-service mask across sockets.
//!
//! Plans are pure data: policies build them from observations, the
//! actuation layer ships them through `Actions`, and the engine validates
//! on application. With no plan applied the contention model never reads
//! any of this, keeping the unpartitioned solve bit-identical to the
//! pre-partitioning engine.

use crate::ids::ThreadId;
use dike_util::json_struct;

/// A way-partitioning assignment for the shared LLC.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Ways granted to each cluster, indexed by cluster id. Every cluster
    /// must hold at least one way and the total must leave the configured
    /// way count unexceeded; ways not granted to any cluster form the
    /// shared pool for unassigned threads.
    pub cluster_ways: Vec<u32>,
    /// Thread-to-cluster assignments, ascending by thread id. Threads
    /// absent here share the leftover ways.
    pub assignments: Vec<(ThreadId, u32)>,
}

json_struct!(PartitionPlan {
    cluster_ways,
    assignments,
});

impl PartitionPlan {
    /// An empty plan (no clusters, no assignments).
    pub fn new() -> Self {
        PartitionPlan::default()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.cluster_ways.len()
    }

    /// True when the plan partitions nothing.
    pub fn is_empty(&self) -> bool {
        self.cluster_ways.is_empty() && self.assignments.is_empty()
    }

    /// Ways left for threads not assigned to any cluster.
    pub fn shared_ways(&self, total_ways: u32) -> u32 {
        total_ways.saturating_sub(self.cluster_ways.iter().sum())
    }

    /// Validate against a cache of `total_ways` ways: every cluster holds
    /// at least one way, the grants sum to at most `total_ways`, and
    /// every assignment names an existing cluster with no thread assigned
    /// twice (assignments must be ascending by thread id).
    pub fn validate(&self, total_ways: u32) -> Result<(), String> {
        let mut sum = 0u64;
        for (c, &w) in self.cluster_ways.iter().enumerate() {
            if w == 0 {
                return Err(format!("cluster {c} granted zero ways"));
            }
            sum += u64::from(w);
        }
        if sum > u64::from(total_ways) {
            return Err(format!(
                "clusters claim {sum} ways but the cache has {total_ways}"
            ));
        }
        let mut prev: Option<ThreadId> = None;
        for &(t, c) in &self.assignments {
            if c as usize >= self.cluster_ways.len() {
                return Err(format!("thread {t} assigned to unknown cluster {c}"));
            }
            if prev.is_some_and(|p| p >= t) {
                return Err(format!(
                    "assignments must be strictly ascending by thread id at {t}"
                ));
            }
            prev = Some(t);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(ways: &[u32], assign: &[(u32, u32)]) -> PartitionPlan {
        PartitionPlan {
            cluster_ways: ways.to_vec(),
            assignments: assign.iter().map(|&(t, c)| (ThreadId(t), c)).collect(),
        }
    }

    #[test]
    fn empty_plan_is_valid_and_empty() {
        let p = PartitionPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.num_clusters(), 0);
        assert!(p.validate(16).is_ok());
        assert_eq!(p.shared_ways(16), 16);
    }

    #[test]
    fn validation_enforces_way_budget_and_cluster_bounds() {
        assert!(plan(&[4, 8], &[(0, 0), (1, 1)]).validate(16).is_ok());
        assert_eq!(plan(&[4, 8], &[]).shared_ways(16), 4);
        // Over budget.
        assert!(plan(&[10, 8], &[]).validate(16).is_err());
        // Zero-way cluster.
        assert!(plan(&[4, 0], &[]).validate(16).is_err());
        // Unknown cluster.
        assert!(plan(&[4], &[(0, 1)]).validate(16).is_err());
        // Duplicate / out-of-order thread.
        assert!(plan(&[4], &[(1, 0), (0, 0)]).validate(16).is_err());
        assert!(plan(&[4], &[(1, 0), (1, 0)]).validate(16).is_err());
    }

    #[test]
    fn plan_round_trips_through_json() {
        use dike_util::json;
        let p = plan(&[2, 6], &[(0, 0), (3, 1), (7, 0)]);
        let s = json::to_string(&p);
        let back: PartitionPlan = json::from_str(&s).expect("round-trip");
        assert_eq!(back, p);
    }
}
