//! Deterministic, seeded fault injection at the observe/act boundary.
//!
//! The paper's testbed reads per-thread counters that are always fresh and
//! finite, and every affinity change it requests lands. Real PMUs
//! multiplex, drop samples, saturate and return garbage, and migrations
//! fail or stall. [`FaultConfig`] describes how often each of those
//! degradations happens; the scheduling driver consults it at every
//! quantum boundary and perturbs what the policy observes (counter
//! dropout, corruption, stale replay, bounded noise) and what it actuates
//! (failed, delayed migrations; transient thread stalls).
//!
//! Everything is a pure hash of `(fault seed, channel, thread, quantum)`
//! — the same SplitMix64 construction as the machine's burstiness noise —
//! so fault streams are identical across worker counts and independent of
//! what any other experiment cell does. A zero-rate config takes the
//! exact pre-fault code path: the driver checks [`FaultConfig::is_active`]
//! once and skips the layer entirely, keeping zero-fault runs
//! byte-identical to the committed goldens.
//!
//! [`FaultPlan`] is the serializable preview of a fault stream: the same
//! draws the online injector makes, expanded into an event list that can
//! be archived with an experiment's results (mirroring
//! `ArrivalTrace` in `dike-workloads`).

use dike_util::rng::splitmix64;
use dike_util::{json_enum, json_struct};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The thread's counter sample for this quantum is missing entirely
    /// (the thread is absent from the scheduler's view).
    Dropout,
    /// The sample reads back as NaN (garbage register read).
    CorruptNan,
    /// The sample reads back as all-zero (counter reset mid-read).
    CorruptZero,
    /// The sample reads back saturated (counter overflow pegs the rates).
    CorruptSaturate,
    /// The sample is a replay of the previous quantum's reading
    /// (multiplexed counter not rotated in this interval).
    Stale,
    /// A requested migration silently does not happen.
    MigrationFail,
    /// A requested migration lands several quanta late.
    MigrationDelay,
    /// The thread makes no progress for a transient window.
    Stall,
    /// Machine-scope: the whole machine hard-crashes — it stops accepting
    /// and stops draining from the drawn fleet epoch onward. (For
    /// machine-scope kinds the event's `thread` field carries the machine
    /// index.)
    MachineCrash,
    /// Machine-scope: a transient brownout — the machine keeps its queue
    /// but its throughput collapses (every thread stalls) for a window of
    /// fleet epochs.
    Brownout,
    /// Machine-scope: a crashed machine comes back after its recovery
    /// delay (emitted by [`MachineFaultConfig::timeline`] so archived
    /// schedules show the outage window, not just its start).
    MachineRecover,
}

json_enum!(FaultKind {
    Dropout,
    CorruptNan,
    CorruptZero,
    CorruptSaturate,
    Stale,
    MigrationFail,
    MigrationDelay,
    Stall,
    MachineCrash,
    Brownout,
    MachineRecover
} {});

/// Per-channel fault rates. All rates are per-(thread, quantum)
/// probabilities; the default is all-zero, which disables the layer
/// entirely ([`FaultConfig::is_active`] is false and the driver takes the
/// legacy code path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a thread's sample for a quantum is dropped.
    pub dropout_rate: f64,
    /// Probability a surviving sample is corrupted (NaN / zero /
    /// saturated, chosen uniformly).
    pub corruption_rate: f64,
    /// Probability a surviving sample replays the previous quantum's
    /// reading.
    pub stale_rate: f64,
    /// Half-width of the multiplicative measurement noise applied to
    /// surviving samples: rates are scaled by `1 + a·u`, `u ∈ [−1, 1)`.
    /// Zero disables the noise channel.
    pub noise_amplitude: f64,
    /// Probability a requested migration silently fails.
    pub migration_fail_rate: f64,
    /// Probability a requested migration is deferred by
    /// [`FaultConfig::migration_delay_quanta`] quanta.
    pub migration_delay_rate: f64,
    /// How many quanta late a delayed migration lands.
    pub migration_delay_quanta: u32,
    /// Probability a thread transiently stalls at a quantum boundary.
    pub stall_rate: f64,
    /// Duration of one transient stall, microseconds.
    pub stall_us: u64,
    /// Fault-stream seed, mixed per channel/thread/quantum.
    pub seed: u64,
}

json_struct!(FaultConfig {
    dropout_rate,
    corruption_rate,
    stale_rate,
    noise_amplitude,
    migration_fail_rate,
    migration_delay_rate,
    migration_delay_quanta,
    stall_rate,
    stall_us,
    seed,
});

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            dropout_rate: 0.0,
            corruption_rate: 0.0,
            stale_rate: 0.0,
            noise_amplitude: 0.0,
            migration_fail_rate: 0.0,
            migration_delay_rate: 0.0,
            migration_delay_quanta: 2,
            stall_rate: 0.0,
            stall_us: 20_000,
            seed: 0,
        }
    }
}

/// Channel salts: independent hash streams per fault family, so raising
/// one rate never shifts another channel's draws.
const SALT_TELEMETRY: u64 = 0xFA01_7E1E_0000_0001;
const SALT_CORRUPT_KIND: u64 = 0xFA01_C022_0000_0002;
const SALT_NOISE: u64 = 0xFA01_A015_0000_0003;
const SALT_MIGRATION: u64 = 0xFA01_316A_0000_0004;
const SALT_STALL: u64 = 0xFA01_57A1_0000_0005;
const SALT_CRASH: u64 = 0xFA01_C4A5_0000_0006;
const SALT_BROWNOUT: u64 = 0xFA01_B07E_0000_0007;

/// Three-round SplitMix64 mix of `(seed, salt, thread, quantum)`.
fn mix(seed: u64, salt: u64, thread: u32, quantum: u64) -> u64 {
    let mut s = seed ^ salt;
    let h1 = splitmix64(&mut s);
    let mut s2 = h1 ^ (thread as u64);
    let h2 = splitmix64(&mut s2);
    let mut s3 = h2 ^ quantum;
    splitmix64(&mut s3)
}

/// Map 64 hash bits onto `[0, 1)` (53-bit mantissa, like `gen_f64`).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultConfig {
    /// True when any channel can fire. The driver checks this once per
    /// run; an inactive config takes the exact pre-fault code path.
    pub fn is_active(&self) -> bool {
        self.dropout_rate > 0.0
            || self.corruption_rate > 0.0
            || self.stale_rate > 0.0
            || self.noise_amplitude > 0.0
            || self.migration_fail_rate > 0.0
            || self.migration_delay_rate > 0.0
            || self.stall_rate > 0.0
    }

    /// Validate rates and channel parameters.
    pub fn validate(&self) -> Result<(), String> {
        for (name, r) in [
            ("dropout_rate", self.dropout_rate),
            ("corruption_rate", self.corruption_rate),
            ("stale_rate", self.stale_rate),
            ("migration_fail_rate", self.migration_fail_rate),
            ("migration_delay_rate", self.migration_delay_rate),
            ("stall_rate", self.stall_rate),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("{name} must be in [0,1], got {r}"));
            }
        }
        if !(0.0..1.0).contains(&self.noise_amplitude) {
            return Err("noise_amplitude must be in [0,1)".into());
        }
        if self.dropout_rate + self.corruption_rate + self.stale_rate > 1.0 {
            return Err("telemetry rates (dropout+corruption+stale) must sum to <= 1".into());
        }
        if self.migration_fail_rate + self.migration_delay_rate > 1.0 {
            return Err("migration rates (fail+delay) must sum to <= 1".into());
        }
        if self.migration_delay_rate > 0.0 && self.migration_delay_quanta == 0 {
            return Err("migration_delay_quanta must be >= 1 when delays are enabled".into());
        }
        if self.stall_rate > 0.0 && self.stall_us == 0 {
            return Err("stall_us must be > 0 when stalls are enabled".into());
        }
        Ok(())
    }

    /// The telemetry fault (if any) hitting `thread`'s sample at
    /// `quantum`. A single cascaded draw keeps the channel rates
    /// composable: dropout, then corruption, then stale replay.
    pub fn telemetry_fault(&self, thread: u32, quantum: u64) -> Option<FaultKind> {
        let budget = self.dropout_rate + self.corruption_rate + self.stale_rate;
        if budget <= 0.0 {
            return None;
        }
        let u = unit(mix(self.seed, SALT_TELEMETRY, thread, quantum));
        if u < self.dropout_rate {
            return Some(FaultKind::Dropout);
        }
        if u < self.dropout_rate + self.corruption_rate {
            let k = mix(self.seed, SALT_CORRUPT_KIND, thread, quantum) % 3;
            return Some(match k {
                0 => FaultKind::CorruptNan,
                1 => FaultKind::CorruptZero,
                _ => FaultKind::CorruptSaturate,
            });
        }
        if u < budget {
            return Some(FaultKind::Stale);
        }
        None
    }

    /// Multiplicative measurement-noise factor for `thread` at `quantum`
    /// (exactly 1.0 when the channel is off).
    pub fn noise_factor(&self, thread: u32, quantum: u64) -> f64 {
        if self.noise_amplitude <= 0.0 {
            return 1.0;
        }
        let u = unit(mix(self.seed, SALT_NOISE, thread, quantum));
        1.0 + self.noise_amplitude * (2.0 * u - 1.0)
    }

    /// The actuation fault (if any) hitting a migration of `thread`
    /// requested at `quantum`.
    pub fn migration_fault(&self, thread: u32, quantum: u64) -> Option<FaultKind> {
        let budget = self.migration_fail_rate + self.migration_delay_rate;
        if budget <= 0.0 {
            return None;
        }
        let u = unit(mix(self.seed, SALT_MIGRATION, thread, quantum));
        if u < self.migration_fail_rate {
            return Some(FaultKind::MigrationFail);
        }
        if u < budget {
            return Some(FaultKind::MigrationDelay);
        }
        None
    }

    /// Whether `thread` transiently stalls at the `quantum` boundary.
    pub fn stall(&self, thread: u32, quantum: u64) -> bool {
        self.stall_rate > 0.0 && unit(mix(self.seed, SALT_STALL, thread, quantum)) < self.stall_rate
    }

    /// The actuation fault (if any) hitting a cache-partition request at
    /// `quantum`. Partitioning is a machine-wide actuation (one CAT
    /// programming per request, not per thread), so it draws from the
    /// migration channel under the sentinel thread id `u32::MAX` — a slot
    /// no real thread occupies (thread ids are dense and small), which
    /// keeps every existing migration draw unshifted and the partition
    /// stream independent of migration traffic.
    pub fn partition_fault(&self, quantum: u64) -> Option<FaultKind> {
        self.migration_fault(u32::MAX, quantum)
    }

    /// Telemetry-degradation axis of the robustness experiment: dropout
    /// at `d` with corruption and stale replay riding along at `d/2`
    /// each, plus bounded noise of amplitude `d/2`.
    pub fn telemetry_axis(d: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            dropout_rate: d,
            corruption_rate: d / 2.0,
            stale_rate: d / 2.0,
            noise_amplitude: d / 2.0,
            seed,
            ..FaultConfig::default()
        }
    }

    /// Actuation-degradation axis: migration failures at `f` with delays
    /// riding along at `f/2` (landing two quanta late).
    pub fn actuation_axis(f: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            migration_fail_rate: f,
            migration_delay_rate: f / 2.0,
            migration_delay_quanta: 2,
            seed,
            ..FaultConfig::default()
        }
    }

    /// Every channel on at once — the robustness experiment's worst point.
    pub fn combined_worst(seed: u64) -> FaultConfig {
        FaultConfig {
            stall_rate: 0.02,
            stall_us: 20_000,
            seed,
            ..FaultConfig {
                migration_fail_rate: 0.10,
                migration_delay_rate: 0.05,
                migration_delay_quanta: 2,
                ..FaultConfig::telemetry_axis(0.30, seed)
            }
        }
    }
}

/// Second-and-third rounds of the SplitMix64 mix, from a pre-mixed
/// per-channel base (`splitmix64(seed ^ salt)`).
fn mix2(base: u64, thread: u32, quantum: u64) -> u64 {
    let mut s2 = base ^ (thread as u64);
    let h2 = splitmix64(&mut s2);
    let mut s3 = h2 ^ quantum;
    splitmix64(&mut s3)
}

/// Pre-mixed fault-draw state for one run.
///
/// The first round of [`mix`] depends only on `(seed, salt)`, both fixed
/// for a run, so the hasher caches it per channel once and every draw
/// costs two SplitMix64 rounds instead of three. The draws are
/// bit-identical to the corresponding [`FaultConfig`] methods (asserted by
/// a regression test); the driver additionally batches a whole quantum's
/// telemetry draws into reusable buffers via
/// [`FaultHasher::fill_telemetry_quantum`] instead of interleaving hash
/// work with view construction.
#[derive(Debug, Clone, Copy)]
pub struct FaultHasher {
    cfg: FaultConfig,
    base_telemetry: u64,
    base_corrupt: u64,
    base_noise: u64,
    base_migration: u64,
    base_stall: u64,
}

impl FaultHasher {
    /// Pre-mix the per-channel bases for `cfg`.
    pub fn new(cfg: &FaultConfig) -> Self {
        let base = |salt: u64| {
            let mut s = cfg.seed ^ salt;
            splitmix64(&mut s)
        };
        FaultHasher {
            cfg: *cfg,
            base_telemetry: base(SALT_TELEMETRY),
            base_corrupt: base(SALT_CORRUPT_KIND),
            base_noise: base(SALT_NOISE),
            base_migration: base(SALT_MIGRATION),
            base_stall: base(SALT_STALL),
        }
    }

    /// Same draw as [`FaultConfig::telemetry_fault`].
    pub fn telemetry_fault(&self, thread: u32, quantum: u64) -> Option<FaultKind> {
        let c = &self.cfg;
        let budget = c.dropout_rate + c.corruption_rate + c.stale_rate;
        if budget <= 0.0 {
            return None;
        }
        let u = unit(mix2(self.base_telemetry, thread, quantum));
        if u < c.dropout_rate {
            return Some(FaultKind::Dropout);
        }
        if u < c.dropout_rate + c.corruption_rate {
            let k = mix2(self.base_corrupt, thread, quantum) % 3;
            return Some(match k {
                0 => FaultKind::CorruptNan,
                1 => FaultKind::CorruptZero,
                _ => FaultKind::CorruptSaturate,
            });
        }
        if u < budget {
            return Some(FaultKind::Stale);
        }
        None
    }

    /// Same draw as [`FaultConfig::noise_factor`].
    pub fn noise_factor(&self, thread: u32, quantum: u64) -> f64 {
        if self.cfg.noise_amplitude <= 0.0 {
            return 1.0;
        }
        let u = unit(mix2(self.base_noise, thread, quantum));
        1.0 + self.cfg.noise_amplitude * (2.0 * u - 1.0)
    }

    /// Same draw as [`FaultConfig::migration_fault`].
    pub fn migration_fault(&self, thread: u32, quantum: u64) -> Option<FaultKind> {
        let c = &self.cfg;
        let budget = c.migration_fail_rate + c.migration_delay_rate;
        if budget <= 0.0 {
            return None;
        }
        let u = unit(mix2(self.base_migration, thread, quantum));
        if u < c.migration_fail_rate {
            return Some(FaultKind::MigrationFail);
        }
        if u < budget {
            return Some(FaultKind::MigrationDelay);
        }
        None
    }

    /// Same draw as [`FaultConfig::stall`].
    pub fn stall(&self, thread: u32, quantum: u64) -> bool {
        self.cfg.stall_rate > 0.0
            && unit(mix2(self.base_stall, thread, quantum)) < self.cfg.stall_rate
    }

    /// Same draw as [`FaultConfig::partition_fault`].
    pub fn partition_fault(&self, quantum: u64) -> Option<FaultKind> {
        self.migration_fault(u32::MAX, quantum)
    }

    /// Batch every per-thread telemetry draw for one quantum (fault kind
    /// and measurement-noise factor, threads `0..n`) into reusable
    /// buffers, so the driver's view construction indexes precomputed
    /// draws instead of interleaving hash work per thread.
    pub fn fill_telemetry_quantum(
        &self,
        n: usize,
        quantum: u64,
        faults: &mut Vec<Option<FaultKind>>,
        noise: &mut Vec<f64>,
    ) {
        faults.clear();
        noise.clear();
        faults.reserve(n);
        noise.reserve(n);
        for t in 0..n as u32 {
            faults.push(self.telemetry_fault(t, quantum));
            noise.push(self.noise_factor(t, quantum));
        }
    }
}

/// Whole-machine fault process, drawn once per *fleet epoch* per machine
/// at the dispatcher's barrier.
///
/// The unit of failure here is a machine, not a thread: a hard crash
/// freezes the whole box (it stops accepting and stops draining), a
/// brownout collapses its throughput for a window of epochs while it
/// keeps its queue, and a crashed machine recovers after a fixed delay
/// (or never, when `recovery_epochs` is zero). Draws are the same
/// chained-SplitMix64 construction as the per-thread channels with the
/// machine index in the thread slot and the fleet epoch in the quantum
/// slot, under fresh salts — enabling machine faults never shifts any
/// existing channel's stream, and an all-zero config short-circuits every
/// draw ([`MachineFaultConfig::is_active`] is false) so fault-free fleets
/// take the exact pre-fault code path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineFaultConfig {
    /// Per-(machine, epoch) probability the machine hard-crashes at that
    /// epoch's barrier.
    pub crash_rate: f64,
    /// Epochs a crashed machine stays down before recovering. Zero means
    /// a crash is permanent for the rest of the run.
    pub recovery_epochs: u32,
    /// Per-(machine, epoch) probability a brownout starts at that epoch's
    /// barrier (draws while already browned out extend nothing — the
    /// fleet's health state machine folds them).
    pub brownout_rate: f64,
    /// Epochs one brownout lasts.
    pub brownout_epochs: u32,
    /// Per-epoch stall applied to every thread of a browned-out machine,
    /// milliseconds — the throughput-collapse knob.
    pub brownout_stall_ms: u64,
    /// Machine-fault stream seed, mixed per channel/machine/epoch.
    pub seed: u64,
}

json_struct!(MachineFaultConfig {
    crash_rate,
    recovery_epochs,
    brownout_rate,
    brownout_epochs,
    brownout_stall_ms,
    seed,
});

impl Default for MachineFaultConfig {
    fn default() -> Self {
        MachineFaultConfig {
            crash_rate: 0.0,
            recovery_epochs: 3,
            brownout_rate: 0.0,
            brownout_epochs: 1,
            brownout_stall_ms: 2_000,
            seed: 0,
        }
    }
}

impl MachineFaultConfig {
    /// True when any machine-scope channel can fire. An inactive config
    /// makes every draw below return `false` without hashing, so the
    /// fleet's zero-fault path is byte-identical to the pre-fault one.
    pub fn is_active(&self) -> bool {
        self.crash_rate > 0.0 || self.brownout_rate > 0.0
    }

    /// Validate rates and window parameters.
    pub fn validate(&self) -> Result<(), String> {
        for (name, r) in [
            ("crash_rate", self.crash_rate),
            ("brownout_rate", self.brownout_rate),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("{name} must be in [0,1], got {r}"));
            }
        }
        if self.brownout_rate > 0.0 && self.brownout_epochs == 0 {
            return Err("brownout_epochs must be >= 1 when brownouts are enabled".into());
        }
        if self.brownout_rate > 0.0 && self.brownout_stall_ms == 0 {
            return Err("brownout_stall_ms must be > 0 when brownouts are enabled".into());
        }
        Ok(())
    }

    /// Whether `machine` hard-crashes at `epoch`'s barrier.
    pub fn crash_at(&self, machine: u32, epoch: u64) -> bool {
        self.crash_rate > 0.0 && unit(mix(self.seed, SALT_CRASH, machine, epoch)) < self.crash_rate
    }

    /// Whether a brownout starts on `machine` at `epoch`'s barrier.
    pub fn brownout_at(&self, machine: u32, epoch: u64) -> bool {
        self.brownout_rate > 0.0
            && unit(mix(self.seed, SALT_BROWNOUT, machine, epoch)) < self.brownout_rate
    }

    /// Crash-and-brownout axis preset for the failover experiment: crash
    /// probability `c` and brownout probability `b` per (machine, epoch),
    /// with the default recovery/brownout windows.
    pub fn axis(c: f64, b: f64, seed: u64) -> MachineFaultConfig {
        MachineFaultConfig {
            crash_rate: c,
            brownout_rate: b,
            seed,
            ..MachineFaultConfig::default()
        }
    }

    /// Expand the machine-fault stream over a `machines × epochs` grid
    /// into an archivable event list, folding raw draws through the same
    /// state machine the fleet applies: crash draws while a machine is
    /// already down are ignored, each crash emits a [`FaultKind::MachineRecover`]
    /// at its recovery epoch (when finite and inside the grid), and
    /// brownout draws while already browned out extend nothing. The
    /// event's `thread` field carries the machine index.
    pub fn timeline(&self, machines: u32, epochs: u64) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        for m in 0..machines {
            // Down-until / brownout-until epoch (exclusive); u64::MAX is
            // a permanent crash.
            let mut down_until = 0u64;
            let mut brown_until = 0u64;
            for e in 0..epochs {
                if e < down_until {
                    continue;
                }
                if down_until != 0 && e == down_until {
                    events.push(FaultEvent {
                        quantum: e,
                        thread: m,
                        kind: FaultKind::MachineRecover,
                    });
                    down_until = 0;
                }
                if self.crash_at(m, e) {
                    events.push(FaultEvent {
                        quantum: e,
                        thread: m,
                        kind: FaultKind::MachineCrash,
                    });
                    down_until = if self.recovery_epochs == 0 {
                        u64::MAX
                    } else {
                        e + u64::from(self.recovery_epochs)
                    };
                    continue;
                }
                if e >= brown_until && self.brownout_at(m, e) {
                    events.push(FaultEvent {
                        quantum: e,
                        thread: m,
                        kind: FaultKind::Brownout,
                    });
                    brown_until = e + u64::from(self.brownout_epochs);
                }
            }
        }
        events
    }
}

/// One materialized fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Quantum index the fault fires in.
    pub quantum: u64,
    /// Thread index the fault hits.
    pub thread: u32,
    /// What happens.
    pub kind: FaultKind,
}

/// A serializable expansion of a fault stream over a `threads × quanta`
/// grid: exactly the draws the online injector makes, in `(quantum,
/// thread)` order, so an experiment's fault schedule can be archived with
/// its results. Migration faults are listed for every `(thread, quantum)`
/// cell — they fire only if the policy actually requests a migration
/// there, so the plan is the superset of what a given run experiences.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Plan name (reported in experiment output).
    pub name: String,
    /// Fault events in generation order.
    pub events: Vec<FaultEvent>,
}

json_struct!(FaultEvent {
    quantum,
    thread,
    kind,
});
json_struct!(FaultPlan { name, events });

impl FaultPlan {
    /// Expand `cfg`'s fault stream over a grid of `threads` threads and
    /// `quanta` quanta. Deterministic in `(cfg, threads, quanta)`: the
    /// same hash draws the driver makes online.
    pub fn generate(name: impl Into<String>, cfg: &FaultConfig, threads: u32, quanta: u64) -> Self {
        let mut events = Vec::new();
        for q in 0..quanta {
            for t in 0..threads {
                if let Some(kind) = cfg.telemetry_fault(t, q) {
                    events.push(FaultEvent {
                        quantum: q,
                        thread: t,
                        kind,
                    });
                }
                if let Some(kind) = cfg.migration_fault(t, q) {
                    events.push(FaultEvent {
                        quantum: q,
                        thread: t,
                        kind,
                    });
                }
                if cfg.stall(t, q) {
                    events.push(FaultEvent {
                        quantum: q,
                        thread: t,
                        kind: FaultKind::Stall,
                    });
                }
            }
        }
        FaultPlan {
            name: name.into(),
            events,
        }
    }

    /// Events of one kind.
    pub fn count_of(&self, kind: FaultKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_util::check::check;
    use dike_util::json;

    #[test]
    fn default_config_is_inert_and_valid() {
        let cfg = FaultConfig::default();
        assert!(!cfg.is_active());
        cfg.validate().unwrap();
        for q in 0..50 {
            for t in 0..8 {
                assert_eq!(cfg.telemetry_fault(t, q), None);
                assert_eq!(cfg.migration_fault(t, q), None);
                assert_eq!(cfg.noise_factor(t, q), 1.0);
                assert!(!cfg.stall(t, q));
            }
        }
        let plan = FaultPlan::generate("inert", &cfg, 8, 50);
        assert!(plan.events.is_empty());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let c = FaultConfig {
            dropout_rate: 1.5,
            ..FaultConfig::default()
        };
        assert!(c.validate().is_err());
        let c = FaultConfig {
            dropout_rate: f64::NAN,
            ..FaultConfig::default()
        };
        assert!(c.validate().is_err());
        let c = FaultConfig {
            dropout_rate: 0.6,
            corruption_rate: 0.3,
            stale_rate: 0.3,
            ..FaultConfig::default()
        };
        assert!(c.validate().is_err());
        let c = FaultConfig {
            noise_amplitude: 1.0,
            ..FaultConfig::default()
        };
        assert!(c.validate().is_err());
        let c = FaultConfig {
            migration_delay_rate: 0.1,
            migration_delay_quanta: 0,
            ..FaultConfig::default()
        };
        assert!(c.validate().is_err());
        let c = FaultConfig {
            stall_rate: 0.1,
            stall_us: 0,
            ..FaultConfig::default()
        };
        assert!(c.validate().is_err());
        assert!(FaultConfig::telemetry_axis(0.3, 1).validate().is_ok());
        assert!(FaultConfig::actuation_axis(0.1, 1).validate().is_ok());
        assert!(FaultConfig::combined_worst(1).validate().is_ok());
    }

    #[test]
    fn rates_are_approximately_honoured() {
        let cfg = FaultConfig {
            dropout_rate: 0.2,
            corruption_rate: 0.1,
            stale_rate: 0.1,
            migration_fail_rate: 0.1,
            migration_delay_rate: 0.05,
            stall_rate: 0.05,
            seed: 9,
            ..FaultConfig::default()
        };
        cfg.validate().unwrap();
        let plan = FaultPlan::generate("rates", &cfg, 40, 500);
        let cells = 40.0 * 500.0;
        let frac = |k| plan.count_of(k) as f64 / cells;
        assert!((frac(FaultKind::Dropout) - 0.2).abs() < 0.02);
        assert!((frac(FaultKind::Stale) - 0.1).abs() < 0.02);
        assert!((frac(FaultKind::MigrationFail) - 0.1).abs() < 0.02);
        assert!((frac(FaultKind::Stall) - 0.05).abs() < 0.02);
        // The three corruption kinds together hit the corruption rate and
        // each kind actually occurs.
        let corrupt = frac(FaultKind::CorruptNan)
            + frac(FaultKind::CorruptZero)
            + frac(FaultKind::CorruptSaturate);
        assert!((corrupt - 0.1).abs() < 0.02);
        for k in [
            FaultKind::CorruptNan,
            FaultKind::CorruptZero,
            FaultKind::CorruptSaturate,
        ] {
            assert!(plan.count_of(k) > 0, "{k:?} never drawn");
        }
    }

    #[test]
    fn noise_is_bounded_and_centred() {
        let cfg = FaultConfig {
            noise_amplitude: 0.1,
            seed: 4,
            ..FaultConfig::default()
        };
        assert!(cfg.is_active());
        let mut sum = 0.0;
        let mut n = 0u32;
        for q in 0..200 {
            for t in 0..10 {
                let f = cfg.noise_factor(t, q);
                assert!((0.9..1.1).contains(&f), "factor {f}");
                sum += f;
                n += 1;
            }
        }
        assert!((sum / n as f64 - 1.0).abs() < 0.01);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let cfg = FaultConfig::combined_worst(11);
        let plan = FaultPlan::generate("worst", &cfg, 8, 40);
        assert!(!plan.events.is_empty());
        let s = json::to_string(&plan);
        let back: FaultPlan = json::from_str(&s).expect("parse");
        assert_eq!(plan, back);
        // The config itself round-trips too (it is archived alongside).
        let s = json::to_string(&cfg);
        let back: FaultConfig = json::from_str(&s).expect("parse");
        assert_eq!(cfg, back);
    }

    #[test]
    fn generator_determinism_property() {
        // Mirrors ArrivalTrace's seeded-generator property: for any rates
        // and seed, regeneration is identical; a different seed moves at
        // least one event once any channel is active.
        check("fault_plan_determinism", 64, |rng| {
            let cfg = FaultConfig {
                dropout_rate: rng.gen_f64() * 0.3,
                corruption_rate: rng.gen_f64() * 0.2,
                stale_rate: rng.gen_f64() * 0.2,
                noise_amplitude: rng.gen_f64() * 0.4,
                migration_fail_rate: rng.gen_f64() * 0.3,
                migration_delay_rate: rng.gen_f64() * 0.2,
                migration_delay_quanta: 1 + rng.gen_range(0u32..4),
                stall_rate: rng.gen_f64() * 0.1,
                stall_us: 1 + rng.gen_range(0u64..50_000),
                seed: rng.gen_range(0u64..u64::MAX),
            };
            cfg.validate().unwrap();
            let a = FaultPlan::generate("p", &cfg, 16, 64);
            let b = FaultPlan::generate("p", &cfg, 16, 64);
            assert_eq!(a, b);
            if cfg.dropout_rate + cfg.corruption_rate + cfg.stale_rate > 0.05 {
                let other = FaultConfig {
                    seed: cfg.seed.wrapping_add(1),
                    ..cfg
                };
                let c = FaultPlan::generate("p", &other, 16, 64);
                assert_ne!(a.events, c.events, "seed change must move the stream");
            }
        });
    }

    #[test]
    fn hasher_reproduces_config_draws_bit_for_bit() {
        // The pre-mixed FaultHasher must agree with the three-round mix on
        // every channel, including the batched per-quantum form.
        let cfg = FaultConfig::combined_worst(17);
        let h = FaultHasher::new(&cfg);
        let mut faults = Vec::new();
        let mut noise = Vec::new();
        for q in 0..64 {
            h.fill_telemetry_quantum(12, q, &mut faults, &mut noise);
            for t in 0..12u32 {
                assert_eq!(h.telemetry_fault(t, q), cfg.telemetry_fault(t, q));
                assert_eq!(faults[t as usize], cfg.telemetry_fault(t, q));
                assert_eq!(h.noise_factor(t, q), cfg.noise_factor(t, q));
                assert_eq!(noise[t as usize], cfg.noise_factor(t, q));
                assert_eq!(h.migration_fault(t, q), cfg.migration_fault(t, q));
                assert_eq!(h.stall(t, q), cfg.stall(t, q));
            }
        }
        // Inert configs stay inert through the hasher too.
        let inert = FaultHasher::new(&FaultConfig::default());
        assert_eq!(inert.telemetry_fault(0, 0), None);
        assert_eq!(inert.noise_factor(0, 0), 1.0);
        assert_eq!(inert.migration_fault(0, 0), None);
        assert!(!inert.stall(0, 0));
        assert_eq!(inert.partition_fault(0), None);
    }

    #[test]
    fn partition_faults_share_the_migration_channel_under_a_sentinel() {
        // Partition draws are migration draws at thread u32::MAX: the
        // hasher and config agree, real-thread migration draws are
        // untouched, and an actuation axis makes some partition requests
        // fail or delay over a long horizon.
        let cfg = FaultConfig::actuation_axis(0.25, 13);
        let h = FaultHasher::new(&cfg);
        let mut fired = 0;
        for q in 0..200 {
            assert_eq!(h.partition_fault(q), cfg.partition_fault(q));
            assert_eq!(cfg.partition_fault(q), cfg.migration_fault(u32::MAX, q));
            fired += usize::from(cfg.partition_fault(q).is_some());
        }
        assert!(fired > 10, "actuation axis must hit partitions: {fired}");
        // Telemetry-only configs never fault partitions.
        let tel = FaultConfig::telemetry_axis(0.3, 13);
        assert!((0..100).all(|q| tel.partition_fault(q).is_none()));
    }

    #[test]
    fn machine_fault_default_is_inert_and_valid() {
        let cfg = MachineFaultConfig::default();
        assert!(!cfg.is_active());
        cfg.validate().unwrap();
        for e in 0..200 {
            for m in 0..32 {
                assert!(!cfg.crash_at(m, e));
                assert!(!cfg.brownout_at(m, e));
            }
        }
        assert!(cfg.timeline(32, 200).is_empty());
        // A non-zero seed alone keeps the channel inert: zero rates must
        // short-circuit to the exact current path.
        let seeded = MachineFaultConfig {
            seed: 0xDEAD_BEEF,
            ..MachineFaultConfig::default()
        };
        assert!(!seeded.is_active());
        assert!(seeded.timeline(32, 200).is_empty());
    }

    #[test]
    fn machine_fault_validation_rejects_nonsense() {
        let c = MachineFaultConfig {
            crash_rate: 1.5,
            ..MachineFaultConfig::default()
        };
        assert!(c.validate().is_err());
        let c = MachineFaultConfig {
            brownout_rate: f64::NAN,
            ..MachineFaultConfig::default()
        };
        assert!(c.validate().is_err());
        let c = MachineFaultConfig {
            brownout_rate: 0.2,
            brownout_epochs: 0,
            ..MachineFaultConfig::default()
        };
        assert!(c.validate().is_err());
        let c = MachineFaultConfig {
            brownout_rate: 0.2,
            brownout_stall_ms: 0,
            ..MachineFaultConfig::default()
        };
        assert!(c.validate().is_err());
        assert!(MachineFaultConfig::axis(0.1, 0.2, 7).validate().is_ok());
    }

    #[test]
    fn machine_fault_rates_are_approximately_honoured() {
        let cfg = MachineFaultConfig {
            crash_rate: 0.1,
            brownout_rate: 0.15,
            seed: 21,
            ..MachineFaultConfig::default()
        };
        let (mut crashes, mut brownouts) = (0usize, 0usize);
        let cells = 64.0 * 500.0;
        for e in 0..500 {
            for m in 0..64 {
                crashes += usize::from(cfg.crash_at(m, e));
                brownouts += usize::from(cfg.brownout_at(m, e));
            }
        }
        assert!((crashes as f64 / cells - 0.1).abs() < 0.02);
        assert!((brownouts as f64 / cells - 0.15).abs() < 0.02);
    }

    #[test]
    fn machine_fault_channels_are_independent_of_thread_channels() {
        // Turning the machine-scope channel on must not shift any
        // per-thread channel's draws (fresh salts), and vice versa the
        // machine draws only depend on the machine-fault seed.
        let base = FaultConfig {
            dropout_rate: 0.2,
            migration_fail_rate: 0.1,
            seed: 5,
            ..FaultConfig::default()
        };
        let machine = MachineFaultConfig::axis(0.3, 0.2, 5);
        for q in 0..100 {
            for t in 0..8 {
                assert_eq!(base.telemetry_fault(t, q), base.telemetry_fault(t, q));
                // Same (seed, index, epoch) but different salts: the
                // crash/brownout draws are distinct streams from each
                // other and from the migration channel.
                let crash = machine.crash_at(t, q);
                let brown = machine.brownout_at(t, q);
                let _ = (crash, brown);
            }
        }
        let a: Vec<bool> = (0..400).map(|e| machine.crash_at(3, e)).collect();
        let b: Vec<bool> = (0..400).map(|e| machine.brownout_at(3, e)).collect();
        assert_ne!(a, b, "crash and brownout must be independent streams");
    }

    #[test]
    fn machine_fault_timeline_folds_the_outage_state_machine() {
        let cfg = MachineFaultConfig {
            crash_rate: 0.15,
            recovery_epochs: 3,
            brownout_rate: 0.2,
            brownout_epochs: 2,
            seed: 33,
            ..MachineFaultConfig::default()
        };
        let tl = cfg.timeline(16, 80);
        assert!(!tl.is_empty());
        // Regenerating is identical, and per machine: no crash event
        // inside another crash's outage window, every finite recovery
        // emitted exactly recovery_epochs after its crash.
        assert_eq!(tl, cfg.timeline(16, 80));
        for m in 0..16u32 {
            let mine: Vec<&FaultEvent> = tl.iter().filter(|e| e.thread == m).collect();
            let mut down_until = None::<u64>;
            for ev in mine {
                match ev.kind {
                    FaultKind::MachineCrash => {
                        assert!(
                            down_until.is_none_or(|d| ev.quantum >= d),
                            "machine {m} crashed while already down at {}",
                            ev.quantum
                        );
                        down_until = Some(ev.quantum + 3);
                    }
                    FaultKind::MachineRecover => {
                        assert_eq!(Some(ev.quantum), down_until, "recovery delay wrong");
                        down_until = None;
                    }
                    FaultKind::Brownout => {
                        assert!(
                            down_until.is_none_or(|d| ev.quantum >= d),
                            "brownout drawn during an outage"
                        );
                    }
                    _ => panic!("unexpected kind in machine timeline"),
                }
            }
        }
        // Permanent crashes (recovery 0) never emit a recovery.
        let perm = MachineFaultConfig {
            recovery_epochs: 0,
            ..cfg
        };
        let tl = perm.timeline(16, 80);
        assert!(tl.iter().any(|e| e.kind == FaultKind::MachineCrash));
        assert!(!tl.iter().any(|e| e.kind == FaultKind::MachineRecover));
        // At most one crash per machine: the first one is forever.
        for m in 0..16u32 {
            let crashes = tl
                .iter()
                .filter(|e| e.thread == m && e.kind == FaultKind::MachineCrash)
                .count();
            assert!(crashes <= 1, "machine {m} crashed {crashes} times");
        }
    }

    #[test]
    fn machine_fault_config_round_trips_through_json() {
        let cfg = MachineFaultConfig::axis(0.08, 0.15, 99);
        let s = json::to_string(&cfg);
        let back: MachineFaultConfig = json::from_str(&s).expect("parse");
        assert_eq!(cfg, back);
    }

    #[test]
    fn channels_are_independent_streams() {
        // Raising one channel's rate must not shift another channel's
        // draws (each has its own salt).
        let base = FaultConfig {
            migration_fail_rate: 0.2,
            seed: 5,
            ..FaultConfig::default()
        };
        let more = FaultConfig {
            dropout_rate: 0.3,
            ..base
        };
        for q in 0..100 {
            for t in 0..8 {
                assert_eq!(base.migration_fault(t, q), more.migration_fault(t, q));
            }
        }
    }
}
