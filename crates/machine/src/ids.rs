//! Strongly-typed identifiers for the simulated machine.
//!
//! All entities in the simulator are addressed by small integer handles. The
//! newtypes here prevent the classic off-by-one-kind bug (indexing the thread
//! table with a core id and vice versa) at zero runtime cost.

use dike_util::json_newtype;
use std::fmt;

/// Identifier of a *virtual* core (an SMT hardware thread context).
///
/// Virtual cores are numbered densely from `0..topology.num_vcores()`.
/// Two virtual cores may share one physical core; see
/// [`crate::topology::Topology::physical_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VCoreId(pub u32);

/// Identifier of a *physical* core (a pipeline shared by its SMT siblings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PCoreId(pub u32);

/// Identifier of a simulated software thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

/// Identifier of an application (a group of threads whose mutual finish-time
/// dispersion defines the fairness metric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u32);

/// Identifier of a barrier group (threads that synchronise with each other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BarrierId(pub u32);

/// Identifier of a NUMA domain: one memory controller plus the physical cores
/// it is local to. The paper machine has a single domain; the scaled machines
/// have 4 or 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DomainId(pub u32);

json_newtype!(VCoreId, PCoreId, ThreadId, AppId, BarrierId, DomainId);

impl VCoreId {
    /// The id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PCoreId {
    /// The id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ThreadId {
    /// The id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AppId {
    /// The id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl DomainId {
    /// The id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VCoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vcore{}", self.0)
    }
}

impl fmt::Display for PCoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pcore{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Simulated time, kept in integer microseconds for exact quantum arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

json_newtype!(SimTime);

impl SimTime {
    /// Zero time (simulation start).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole microseconds.
    #[inline]
    pub fn from_us(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from seconds (rounded down to the microsecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * 1e6) as u64)
    }

    /// The value in microseconds.
    #[inline]
    pub fn as_us(self) -> u64 {
        self.0
    }

    /// The value in (fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The value in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_conversions_round_trip() {
        assert_eq!(SimTime::from_ms(5).as_us(), 5_000);
        assert_eq!(SimTime::from_us(1_500).as_ms_f64(), 1.5);
        assert_eq!(SimTime::from_secs_f64(0.25).as_us(), 250_000);
        assert!((SimTime::from_ms(2_000).as_secs_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_ms(10);
        let b = SimTime::from_ms(3);
        assert_eq!((a + b).as_us(), 13_000);
        assert_eq!((a - b).as_us(), 7_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_us(), 13_000);
    }

    #[test]
    fn ids_display_and_index() {
        assert_eq!(VCoreId(3).to_string(), "vcore3");
        assert_eq!(PCoreId(1).to_string(), "pcore1");
        assert_eq!(ThreadId(9).to_string(), "t9");
        assert_eq!(AppId(2).to_string(), "app2");
        assert_eq!(DomainId(7).to_string(), "dom7");
        assert_eq!(ThreadId(9).index(), 9);
        assert_eq!(VCoreId(4).index(), 4);
        assert_eq!(PCoreId(4).index(), 4);
        assert_eq!(AppId(4).index(), 4);
        assert_eq!(DomainId(4).index(), 4);
    }

    #[test]
    fn ids_order_by_numeric_value() {
        assert!(ThreadId(2) < ThreadId(10));
        assert!(VCoreId(0) < VCoreId(1));
    }
}
