//! The tick-based execution engine.
//!
//! [`Machine`] advances simulated time in fixed ticks (default 1 ms). In each
//! tick it:
//!
//! 1. determines which threads are runnable (alive, not parked at a barrier,
//!    outside migration dead time) and how each virtual core's time is
//!    shared among its runnable threads;
//! 2. applies SMT interference (busy sibling contexts shrink pipeline share);
//! 3. computes each thread's *effective* miss ratio: the phase's intrinsic
//!    ratio, inflated by shared-LLC pressure, post-migration cache warm-up,
//!    and deterministic burstiness noise;
//! 4. solves the shared memory system for achieved instruction rates
//!    ([`crate::contention::solve_memory`]);
//! 5. advances threads, clamping at phase boundaries, barrier points and
//!    program completion, and accumulates per-thread and per-core counters.
//!
//! Everything is deterministic given [`crate::config::MachineConfig::seed`]:
//! the only stochastic element, phase burstiness, is derived from a hash of
//! `(seed, thread, coarse tick)`, so a thread's intrinsic behaviour over time
//! does not depend on scheduling decisions — exactly the property needed to
//! compare schedulers fairly.

use crate::config::MachineConfig;
use crate::contention::{
    llc_inflation, solve_memory_into, solve_memory_numa_into, MemDemand, MemSolution, NumaDemand,
    NumaSolution,
};
use crate::ids::{AppId, BarrierId, DomainId, SimTime, ThreadId, VCoreId};
use crate::thread::{CoreCounters, ThreadCounters, ThreadSpec, ThreadState};
use std::collections::BTreeMap;

/// Notable events, for logs and tests.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineEvent {
    /// A thread was spawned on a core.
    Spawned { thread: ThreadId, vcore: VCoreId },
    /// A thread migrated between cores.
    Migrated {
        thread: ThreadId,
        from: VCoreId,
        to: VCoreId,
        at: SimTime,
    },
    /// A thread retired all its instructions.
    Finished { thread: ThreadId, at: SimTime },
    /// The substrate load balancer moved a thread to an idle context.
    Balanced {
        thread: ThreadId,
        from: VCoreId,
        to: VCoreId,
        at: SimTime,
    },
    /// A transient stall was injected: the thread makes no progress until
    /// `until` (fault injection, see [`crate::faults`]).
    Stalled {
        thread: ThreadId,
        at: SimTime,
        until: SimTime,
    },
}

/// Coarseness of the burstiness noise: the pseudo-random miss-ratio
/// fluctuation is held constant for this many consecutive ticks, giving
/// bursts a realistic multi-millisecond duration.
const NOISE_WINDOW_TICKS: u64 = 8;

/// The simulated machine.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: MachineConfig,
    now: SimTime,
    tick_index: u64,
    threads: Vec<ThreadState>,
    vcore_counters: Vec<CoreCounters>,
    events: Vec<MachineEvent>,
    /// Barrier bookkeeping: group -> member thread ids.
    barrier_groups: BTreeMap<BarrierId, Vec<ThreadId>>,
    /// Moves performed by the substrate balancer (not counted as policy
    /// migrations).
    balancer_moves: u64,
    // Per-tick scratch buffers, reused so steady-state ticks allocate
    // nothing at all.
    scratch_runnable: Vec<usize>,
    scratch_demands: Vec<MemDemand>,
    scratch_eff_mr: Vec<f64>,
    scratch_solution: MemSolution,
    scratch_vcore_load: Vec<u32>,
    scratch_smt_factor: Vec<f64>,
    scratch_vcore_busy: Vec<bool>,
    scratch_finished: Vec<ThreadId>,
    // Multi-domain scratch (unused on single-controller machines, whose
    // tick path is unchanged from the original single-solver code).
    scratch_domain_llc: Vec<f64>,
    scratch_numa_demands: Vec<NumaDemand>,
    scratch_numa_solution: NumaSolution,
}

impl Machine {
    /// Create an empty machine.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate().expect("invalid machine configuration");
        let n_vcores = cfg.topology.num_vcores();
        Machine {
            cfg,
            now: SimTime::ZERO,
            tick_index: 0,
            threads: Vec::new(),
            vcore_counters: vec![CoreCounters::default(); n_vcores],
            events: Vec::new(),
            barrier_groups: BTreeMap::new(),
            balancer_moves: 0,
            scratch_runnable: Vec::new(),
            scratch_demands: Vec::new(),
            scratch_eff_mr: Vec::new(),
            scratch_solution: MemSolution::empty(),
            scratch_vcore_load: Vec::new(),
            scratch_smt_factor: Vec::new(),
            scratch_vcore_busy: Vec::new(),
            scratch_finished: Vec::new(),
            scratch_domain_llc: Vec::new(),
            scratch_numa_demands: Vec::new(),
            scratch_numa_solution: NumaSolution::empty(),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Spawn a thread pinned to `vcore`. The thread's memory is homed to
    /// the NUMA domain of that core (first touch **at actual spawn time** —
    /// a mid-run arrival homes to wherever it first lands) and stays there
    /// for life: later migrations change where the thread *runs*, not where
    /// its misses are serviced. Thread ids are dense and stable: the `n`-th
    /// spawn — whether at `t = 0` or mid-run — is `ThreadId(n)`, and ids
    /// are never reused after retirement.
    ///
    /// # Panics
    /// Panics if the spec is invalid or the core id is out of range.
    pub fn spawn(&mut self, spec: ThreadSpec, vcore: VCoreId) -> ThreadId {
        spec.validate().expect("invalid thread spec");
        assert!(
            vcore.index() < self.cfg.topology.num_vcores(),
            "vcore {vcore} out of range"
        );
        let id = ThreadId(self.threads.len() as u32);
        if let Some(b) = &spec.barrier {
            self.barrier_groups.entry(b.group).or_default().push(id);
        }
        let home = self.cfg.topology.domain_of(vcore);
        self.threads
            .push(ThreadState::new(spec, vcore, home, self.now));
        self.events
            .push(MachineEvent::Spawned { thread: id, vcore });
        id
    }

    /// Move a thread to another virtual core. A move to the thread's current
    /// core is a no-op; a real move costs the configured dead time and cache
    /// warm-up and increments the thread's migration counter. A move that
    /// crosses NUMA domains refills its cache from a remote controller, so
    /// the warm-up window stretches by
    /// [`crate::config::MigrationConfig::cross_domain_warmup_factor`].
    pub fn migrate(&mut self, thread: ThreadId, to: VCoreId) {
        assert!(
            to.index() < self.cfg.topology.num_vcores(),
            "vcore {to} out of range"
        );
        let t = &mut self.threads[thread.index()];
        if t.finished() || t.vcore == to {
            return;
        }
        let from = t.vcore;
        t.vcore = to;
        t.dead_until = self.now + SimTime::from_us(self.cfg.migration.dead_time_us);
        // Warm-up scales with the thread's current working set: a large
        // footprint takes proportionally longer to refill on the new core.
        let ws_mib = t
            .spec
            .program
            .phase_at(t.retired)
            .map(|p| p.working_set_mib)
            .unwrap_or(0.0);
        let mut warmup = self.cfg.migration.warmup_us
            + (ws_mib * self.cfg.migration.warmup_us_per_mib as f64) as u64;
        if self.cfg.topology.domain_of(from) != self.cfg.topology.domain_of(to) {
            warmup = (warmup as f64 * self.cfg.migration.cross_domain_warmup_factor) as u64;
        }
        t.warmup_until = self.now + SimTime::from_us(self.cfg.migration.dead_time_us + warmup);
        t.counters.migrations += 1;
        self.events.push(MachineEvent::Migrated {
            thread,
            from,
            to,
            at: self.now,
        });
    }

    /// Inject a transient stall: the thread makes no progress for `dur`
    /// from now (fault injection; extends, never shortens, any dead time
    /// already pending from a migration). No-op on finished threads.
    pub fn stall(&mut self, thread: ThreadId, dur: SimTime) {
        let now = self.now;
        let t = &mut self.threads[thread.index()];
        if t.finished() || dur == SimTime::ZERO {
            return;
        }
        let until = now + dur;
        if until <= t.dead_until {
            return;
        }
        t.dead_until = until;
        self.events.push(MachineEvent::Stalled {
            thread,
            at: now,
            until,
        });
    }

    /// All thread ids ever spawned.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> + '_ {
        (0..self.threads.len() as u32).map(ThreadId)
    }

    /// Thread ids that have not yet finished.
    pub fn alive_threads(&self) -> Vec<ThreadId> {
        self.thread_ids()
            .filter(|t| !self.threads[t.index()].finished())
            .collect()
    }

    /// True once every thread has finished.
    pub fn all_done(&self) -> bool {
        !self.threads.is_empty() && self.threads.iter().all(|t| t.finished())
    }

    /// Number of spawned threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The virtual core a thread is currently pinned to.
    pub fn vcore_of(&self, thread: ThreadId) -> VCoreId {
        self.threads[thread.index()].vcore
    }

    /// The application a thread belongs to.
    pub fn app_of(&self, thread: ThreadId) -> AppId {
        self.threads[thread.index()].spec.app
    }

    /// The NUMA domain a thread's memory is homed to (fixed at spawn).
    pub fn home_domain_of(&self, thread: ThreadId) -> DomainId {
        self.threads[thread.index()].home_domain
    }

    /// The application name a thread belongs to.
    pub fn app_name_of(&self, thread: ThreadId) -> &str {
        &self.threads[thread.index()].spec.app_name
    }

    /// Cumulative hardware counters of a thread.
    pub fn counters(&self, thread: ThreadId) -> ThreadCounters {
        self.threads[thread.index()].counters
    }

    /// Cumulative counters of a virtual core.
    pub fn core_counters(&self, vcore: VCoreId) -> CoreCounters {
        self.vcore_counters[vcore.index()]
    }

    /// Completion time of a thread, if finished.
    pub fn finish_time(&self, thread: ThreadId) -> Option<SimTime> {
        self.threads[thread.index()].finished_at
    }

    /// Machine time at which a thread was spawned (zero for threads spawned
    /// before the run started).
    pub fn spawn_time(&self, thread: ThreadId) -> SimTime {
        self.threads[thread.index()].spawned_at
    }

    /// Virtual cores with no unfinished occupant, in id order — the free
    /// slots a mid-run arrival can be placed on (a retired thread frees its
    /// vcore the moment it finishes).
    pub fn idle_vcores(&self) -> Vec<VCoreId> {
        let mut occupied = vec![false; self.cfg.topology.num_vcores()];
        for t in &self.threads {
            if !t.finished() {
                occupied[t.vcore.index()] = true;
            }
        }
        occupied
            .iter()
            .enumerate()
            .filter(|(_, &o)| !o)
            .map(|(v, _)| VCoreId(v as u32))
            .collect()
    }

    /// Fraction of a thread's instructions retired so far, in `[0, 1]`.
    pub fn progress_of(&self, thread: ThreadId) -> f64 {
        let t = &self.threads[thread.index()];
        (t.retired / t.spec.program.total_instructions).min(1.0)
    }

    /// Event log (spawns, migrations, completions).
    pub fn events(&self) -> &[MachineEvent] {
        &self.events
    }

    /// Total policy migrations across all threads (balancer moves are
    /// tracked separately in [`Machine::balancer_moves`]).
    pub fn total_migrations(&self) -> u64 {
        self.threads.iter().map(|t| t.counters.migrations).sum()
    }

    /// Moves performed by the substrate load balancer.
    pub fn balancer_moves(&self) -> u64 {
        self.balancer_moves
    }

    /// The OS's count-based idle balancer (see
    /// [`crate::config::BalanceConfig`]): when the fast and slow halves
    /// have unequal unfinished-thread counts and the lighter half has an
    /// empty context, move threads over. A balanced move costs cache
    /// warm-up (cold caches are physics) but no affinity dead time.
    fn balance(&mut self) {
        let topo = &self.cfg.topology;
        let n = topo.num_vcores();
        // Split vcores into the faster and slower halves by frequency.
        let median = {
            let mut freqs: Vec<f64> = (0..n).map(|v| topo.freq_of(VCoreId(v as u32))).collect();
            freqs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            freqs[n / 2]
        };
        let is_fast = |v: usize| topo.freq_of(VCoreId(v as u32)) >= median;
        if (0..n).all(is_fast) || !(0..n).any(is_fast) {
            // Homogeneous: balance is about emptiness only; handled by the
            // shared-vcore spreading below.
            self.spread_shared_vcores();
            return;
        }
        let mut occupancy = vec![0u32; n];
        for t in &self.threads {
            if !t.finished() {
                occupancy[t.vcore.index()] += 1;
            }
        }
        let count_half = |fast: bool| -> u32 {
            (0..n)
                .filter(|&v| is_fast(v) == fast)
                .map(|v| occupancy[v])
                .sum()
        };
        let mut fast_load = count_half(true);
        let mut slow_load = count_half(false);
        let min_imb = self.cfg.balance.min_imbalance;
        let mut moves: Vec<(ThreadId, VCoreId)> = Vec::new();
        while fast_load.abs_diff(slow_load) >= min_imb.max(1) {
            let move_to_fast = slow_load > fast_load;
            // An empty target context on the lighter half.
            let target = (0..n)
                .find(|&v| is_fast(v) == move_to_fast && occupancy[v] == 0)
                .map(|v| VCoreId(v as u32));
            let Some(target) = target else { break };
            // Candidate: a thread on the heavier half, preferring doubled-up
            // contexts, then the highest-occupancy context (deterministic
            // lowest thread id).
            let source = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.finished() && is_fast(t.vcore.index()) != move_to_fast)
                .max_by_key(|(i, t)| (occupancy[t.vcore.index()], u32::MAX - *i as u32))
                .map(|(i, _)| ThreadId(i as u32));
            let Some(thread) = source else { break };
            occupancy[self.threads[thread.index()].vcore.index()] -= 1;
            occupancy[target.index()] += 1;
            if move_to_fast {
                fast_load += 1;
                slow_load -= 1;
            } else {
                fast_load -= 1;
                slow_load += 1;
            }
            moves.push((thread, target));
        }
        for (thread, target) in moves {
            self.balancer_move(thread, target);
        }
        self.spread_shared_vcores();
    }

    /// Within each half, move threads off doubled-up contexts onto empty
    /// ones (plain per-CPU balancing).
    fn spread_shared_vcores(&mut self) {
        let n = self.cfg.topology.num_vcores();
        let mut occupancy = vec![0u32; n];
        for t in &self.threads {
            if !t.finished() {
                occupancy[t.vcore.index()] += 1;
            }
        }
        let mut moves: Vec<(ThreadId, VCoreId)> = Vec::new();
        for i in 0..self.threads.len() {
            let t = &self.threads[i];
            if t.finished() {
                continue;
            }
            let v = t.vcore.index();
            if occupancy[v] >= 2 {
                if let Some(empty) = (0..n).find(|&c| occupancy[c] == 0) {
                    occupancy[v] -= 1;
                    occupancy[empty] += 1;
                    moves.push((ThreadId(i as u32), VCoreId(empty as u32)));
                }
            }
        }
        for (thread, target) in moves {
            self.balancer_move(thread, target);
        }
    }

    /// Apply one balancer move: re-home the thread with cache warm-up but
    /// no affinity dead time, and without touching the policy migration
    /// counter.
    fn balancer_move(&mut self, thread: ThreadId, to: VCoreId) {
        let t = &mut self.threads[thread.index()];
        if t.finished() || t.vcore == to {
            return;
        }
        let from = t.vcore;
        t.vcore = to;
        let ws_mib = t
            .spec
            .program
            .phase_at(t.retired)
            .map(|p| p.working_set_mib)
            .unwrap_or(0.0);
        let mut warmup = self.cfg.migration.warmup_us
            + (ws_mib * self.cfg.migration.warmup_us_per_mib as f64) as u64;
        if self.cfg.topology.domain_of(from) != self.cfg.topology.domain_of(to) {
            warmup = (warmup as f64 * self.cfg.migration.cross_domain_warmup_factor) as u64;
        }
        t.warmup_until = self.now + SimTime::from_us(warmup);
        self.balancer_moves += 1;
        self.events.push(MachineEvent::Balanced {
            thread,
            from,
            to,
            at: self.now,
        });
    }

    /// Deterministic burstiness multiplier for `(thread, tick)`.
    fn noise_multiplier(&self, thread_idx: usize, burstiness: f64) -> f64 {
        if burstiness == 0.0 {
            return 1.0;
        }
        let window = self.tick_index / NOISE_WINDOW_TICKS;
        let mut x = self
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((thread_idx as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(window.wrapping_mul(0x94D0_49BB_1331_11EB));
        // splitmix64 finaliser
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        1.0 + burstiness * (2.0 * unit - 1.0)
    }

    /// Advance the machine by one tick.
    pub fn tick(&mut self) {
        // The OS balancer runs on its own coarse period.
        if self.cfg.balance.enabled
            && self
                .now
                .as_us()
                .is_multiple_of(self.cfg.balance.interval_us)
            && !self.threads.is_empty()
        {
            self.balance();
        }
        let dt_s = self.cfg.tick_us as f64 / 1e6;
        let n_vcores = self.cfg.topology.num_vcores();

        // 1. Runnable threads and per-vcore occupancy.
        self.scratch_runnable.clear();
        self.scratch_vcore_load.clear();
        self.scratch_vcore_load.resize(n_vcores, 0);
        for (i, t) in self.threads.iter().enumerate() {
            if t.runnable(self.now) {
                self.scratch_runnable.push(i);
                self.scratch_vcore_load[t.vcore.index()] += 1;
            }
        }

        if !self.scratch_runnable.is_empty() {
            // 2. SMT factors per vcore: does any sibling context have load?
            self.scratch_smt_factor.clear();
            self.scratch_smt_factor.resize(n_vcores, 1.0);
            for v in 0..n_vcores {
                if self.scratch_vcore_load[v] == 0 {
                    continue;
                }
                let vid = VCoreId(v as u32);
                let sibling_busy = self
                    .cfg
                    .topology
                    .siblings_of(vid)
                    .iter()
                    .any(|s| self.scratch_vcore_load[s.index()] > 0);
                if sibling_busy {
                    self.scratch_smt_factor[v] = self.cfg.smt.busy_share;
                }
            }

            // 3. Shared-LLC pressure. On a single-controller machine one
            // LLC spans the whole chip (the paper's testbed); on a NUMA
            // machine each domain has its own LLC slice fed by the threads
            // *running* in that domain. The single-domain arithmetic below
            // is kept verbatim so paper-machine results stay bit-identical.
            let multi = self.cfg.topology.num_domains() > 1;
            if !multi {
                let total_ws: f64 = self
                    .scratch_runnable
                    .iter()
                    .map(|&i| {
                        let t = &self.threads[i];
                        t.spec
                            .program
                            .phase_at(t.retired)
                            .map(|p| p.working_set_mib)
                            .unwrap_or(0.0)
                    })
                    .sum();
                let llc_factor = llc_inflation(total_ws, &self.cfg.llc);
                self.scratch_domain_llc.clear();
                self.scratch_domain_llc.push(llc_factor);
            } else {
                self.scratch_domain_llc.clear();
                self.scratch_domain_llc
                    .resize(self.cfg.topology.num_domains(), 0.0);
                for &i in &self.scratch_runnable {
                    let t = &self.threads[i];
                    let ws = t
                        .spec
                        .program
                        .phase_at(t.retired)
                        .map(|p| p.working_set_mib)
                        .unwrap_or(0.0);
                    let d = self.cfg.topology.domain_of(t.vcore).index();
                    self.scratch_domain_llc[d] += ws;
                }
                for f in &mut self.scratch_domain_llc {
                    *f = llc_inflation(*f, &self.cfg.llc);
                }
            }

            // Effective per-thread miss ratios and pipeline times.
            self.scratch_demands.clear();
            self.scratch_numa_demands.clear();
            self.scratch_eff_mr.clear();
            for &i in &self.scratch_runnable {
                let t = &self.threads[i];
                let phase = t
                    .spec
                    .program
                    .phase_at(t.retired)
                    .expect("runnable thread must have an active phase");
                let run_domain = self.cfg.topology.domain_of(t.vcore);
                let llc_factor = if multi {
                    self.scratch_domain_llc[run_domain.index()]
                } else {
                    self.scratch_domain_llc[0]
                };
                let mut mr = phase.miss_ratio() * llc_factor;
                let mut cpi = phase.cpi_exec;
                if self.now < t.warmup_until {
                    mr *= self.cfg.migration.warmup_miss_multiplier;
                    cpi *= self.cfg.migration.warmup_cpi_multiplier;
                }
                mr *= self.noise_multiplier(i, phase.burstiness);
                mr = mr.clamp(0.0, 1.0);
                let v = t.vcore.index();
                let share = 1.0 / self.scratch_vcore_load[v] as f64;
                let freq = self.cfg.topology.freq_of(t.vcore);
                let base_time = cpi / (freq * share * self.scratch_smt_factor[v]);
                let demand = MemDemand {
                    base_time_per_instr: base_time,
                    miss_ratio: mr,
                };
                if multi {
                    self.scratch_numa_demands.push(NumaDemand {
                        demand,
                        home: t.home_domain,
                        remote: run_domain != t.home_domain,
                    });
                } else {
                    self.scratch_demands.push(demand);
                }
                self.scratch_eff_mr.push(mr);
            }

            // 4. Memory system (into the reusable solution buffers): one
            // global fixed point on the paper machine, one per controller
            // on a NUMA machine.
            if multi {
                solve_memory_numa_into(
                    &self.scratch_numa_demands,
                    self.cfg.topology.num_domains(),
                    &self.cfg.memory,
                    &mut self.scratch_numa_solution,
                );
            } else {
                solve_memory_into(
                    &self.scratch_demands,
                    &self.cfg.memory,
                    &mut self.scratch_solution,
                );
            }

            // 5. Advance threads.
            self.scratch_vcore_busy.clear();
            self.scratch_vcore_busy.resize(n_vcores, false);
            for (k, &i) in self.scratch_runnable.iter().enumerate() {
                let rate = if multi {
                    self.scratch_numa_solution.rates[k]
                } else {
                    self.scratch_solution.rates[k]
                };
                let mr = self.scratch_eff_mr[k];
                let t = &mut self.threads[i];
                let freq = self.cfg.topology.freq_of(t.vcore);

                // Advance through as many phase boundaries as the tick
                // allows (the achieved rate is held constant within the
                // tick; phase boundaries only clamp barrier/completion
                // crossings exactly).
                let mut time_left = dt_s;
                let mut advance = 0.0;
                let mut hit_barrier = false;
                for _ in 0..64 {
                    if time_left <= 0.0 || rate <= 0.0 {
                        break;
                    }
                    let pos = t.retired + advance;
                    let to_boundary = t.spec.program.instructions_to_boundary(pos);
                    let to_barrier = (t.next_barrier_at - pos).max(0.0);
                    let limit = to_boundary.min(to_barrier);
                    if limit <= 0.0 {
                        hit_barrier = to_barrier <= 0.0 && to_barrier <= to_boundary;
                        break;
                    }
                    let possible = rate * time_left;
                    if possible < limit {
                        advance += possible;
                        time_left = 0.0;
                    } else {
                        advance += limit;
                        time_left -= limit / rate;
                        if to_barrier <= to_boundary {
                            hit_barrier = true;
                            break;
                        }
                    }
                }

                let apki = t
                    .spec
                    .program
                    .phase_at(t.retired)
                    .map(|p| p.apki)
                    .unwrap_or(300.0);
                t.retired += advance;
                t.counters.instructions += advance;
                t.counters.llc_misses += advance * mr;
                t.counters.llc_accesses += advance * (apki / 1000.0).max(mr);
                t.counters.cycles += freq * dt_s;
                t.counters.busy_us += self.cfg.tick_us;
                if multi && self.cfg.topology.domain_of(t.vcore) != t.home_domain {
                    t.counters.remote_us += self.cfg.tick_us;
                }
                self.scratch_vcore_busy[t.vcore.index()] = true;
                self.vcore_counters[t.vcore.index()].accesses +=
                    advance * mr * self.cfg.memory.prefetch_factor;

                if t.retired >= t.spec.program.total_instructions {
                    t.finished_at = Some(self.now + SimTime::from_us(self.cfg.tick_us));
                    t.at_barrier = false;
                } else if hit_barrier {
                    t.at_barrier = true;
                }
            }
            for (v, busy) in self.scratch_vcore_busy.iter().enumerate() {
                if *busy {
                    self.vcore_counters[v].busy_us += self.cfg.tick_us;
                }
            }
        }

        // Barrier release: a group proceeds when every alive member waits.
        for members in self.barrier_groups.values() {
            let all_arrived = members.iter().all(|t| {
                let s = &self.threads[t.index()];
                s.finished() || s.at_barrier
            });
            if all_arrived {
                for t in members {
                    let s = &mut self.threads[t.index()];
                    if !s.finished() && s.at_barrier {
                        s.at_barrier = false;
                        let interval = s
                            .spec
                            .barrier
                            .expect("barrier member must have barrier spec")
                            .interval_instructions;
                        s.next_barrier_at += interval;
                    }
                }
            }
        }

        // Record completions after the fact (events carry the finish tick).
        self.scratch_finished.clear();
        let tick_end = self.now + SimTime::from_us(self.cfg.tick_us);
        for (i, t) in self.threads.iter().enumerate() {
            if t.finished_at == Some(tick_end) {
                self.scratch_finished.push(ThreadId(i as u32));
            }
        }
        self.now = tick_end;
        self.tick_index += 1;
        for k in 0..self.scratch_finished.len() {
            self.events.push(MachineEvent::Finished {
                thread: self.scratch_finished[k],
                at: self.now,
            });
        }
    }

    /// Run for a duration (must be a multiple of the tick length).
    pub fn run_for(&mut self, dur: SimTime) {
        assert_eq!(
            dur.as_us() % self.cfg.tick_us,
            0,
            "duration {dur} is not a multiple of the tick"
        );
        let ticks = dur.as_us() / self.cfg.tick_us;
        for _ in 0..ticks {
            self.tick();
        }
    }

    /// Run until all threads finish or `deadline` passes. Returns true if
    /// everything finished.
    pub fn run_until_done(&mut self, deadline: SimTime) -> bool {
        while !self.all_done() && self.now < deadline {
            self.tick();
        }
        self.all_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::presets;
    use crate::ids::BarrierId;
    use crate::phase::{Phase, PhaseProgram};
    use crate::thread::BarrierSpec;

    fn compute_spec(app: u32, instr: f64) -> ThreadSpec {
        ThreadSpec {
            app: AppId(app),
            app_name: format!("comp{app}"),
            program: PhaseProgram::single(Phase::steady(0.6, 1.5, 0.5, 1e6), instr),
            barrier: None,
        }
    }

    fn memory_spec(app: u32, instr: f64) -> ThreadSpec {
        ThreadSpec {
            app: AppId(app),
            app_name: format!("mem{app}"),
            program: PhaseProgram::single(Phase::steady(1.0, 30.0, 8.0, 1e6), instr),
            barrier: None,
        }
    }

    #[test]
    fn single_thread_finishes_and_counts() {
        let mut m = Machine::new(presets::small_machine(1));
        let t = m.spawn(compute_spec(0, 1e8), VCoreId(0));
        assert!(m.run_until_done(SimTime::from_secs_f64(10.0)));
        let c = m.counters(t);
        assert!((c.instructions - 1e8).abs() < 1.0);
        assert!(c.llc_misses > 0.0);
        assert!(m.finish_time(t).is_some());
        assert_eq!(m.progress_of(t), 1.0);
        // Rough speed check: ~2.33e9/0.6 instr/s pipeline-limited, low misses.
        let secs = m.finish_time(t).unwrap().as_secs_f64();
        assert!(secs > 0.01 && secs < 0.2, "took {secs}s");
    }

    #[test]
    fn fast_core_beats_slow_core() {
        let mut fast = Machine::new(presets::small_machine(1));
        let tf = fast.spawn(compute_spec(0, 1e8), VCoreId(0)); // fast vcore
        fast.run_until_done(SimTime::from_secs_f64(10.0));

        let mut slow = Machine::new(presets::small_machine(1));
        let ts = slow.spawn(compute_spec(0, 1e8), VCoreId(4)); // slow vcore
        slow.run_until_done(SimTime::from_secs_f64(10.0));

        let ff = fast.finish_time(tf).unwrap().as_secs_f64();
        let ss = slow.finish_time(ts).unwrap().as_secs_f64();
        let ratio = ss / ff;
        // Frequency ratio is 2.33/1.21 ≈ 1.93 for a compute-bound thread.
        assert!(ratio > 1.6 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn memory_thread_less_sensitive_to_core_speed() {
        let run = |vcore: u32| {
            let mut m = Machine::new(presets::small_machine(1));
            let t = m.spawn(memory_spec(0, 1e8), VCoreId(vcore));
            m.run_until_done(SimTime::from_secs_f64(30.0));
            m.finish_time(t).unwrap().as_secs_f64()
        };
        let ratio = run(4) / run(0);
        assert!(ratio > 1.0 && ratio < 1.7, "memory-bound ratio {ratio}");
    }

    #[test]
    fn contention_slows_corunners() {
        // One memory thread alone...
        let mut alone = Machine::new(presets::small_machine(1));
        let t0 = alone.spawn(memory_spec(0, 5e7), VCoreId(0));
        alone.run_until_done(SimTime::from_secs_f64(30.0));
        let t_alone = alone.finish_time(t0).unwrap().as_secs_f64();

        // ... versus with seven co-running memory threads.
        let mut crowd = Machine::new(presets::small_machine(1));
        let t0c = crowd.spawn(memory_spec(0, 5e7), VCoreId(0));
        for i in 1..8 {
            crowd.spawn(memory_spec(1, 4e8), VCoreId(i));
        }
        crowd.run_until_done(SimTime::from_secs_f64(60.0));
        let t_crowd = crowd.finish_time(t0c).unwrap().as_secs_f64();
        let slowdown = t_crowd / t_alone;
        assert!(slowdown > 1.5, "contention slowdown {slowdown}");
    }

    /// A small machine with the substrate balancer off, for tests that
    /// deliberately co-locate threads.
    fn small_machine_pinned(seed: u64) -> crate::config::MachineConfig {
        let mut cfg = presets::small_machine(seed);
        cfg.balance.enabled = false;
        cfg
    }

    #[test]
    fn smt_sibling_interferes() {
        // Two compute threads on separate physical cores...
        let mut apart = Machine::new(small_machine_pinned(1));
        let a = apart.spawn(compute_spec(0, 1e8), VCoreId(0));
        apart.spawn(compute_spec(1, 1e8), VCoreId(2));
        apart.run_until_done(SimTime::from_secs_f64(10.0));
        let t_apart = apart.finish_time(a).unwrap().as_secs_f64();

        // ... versus on the two contexts of one physical core.
        let mut together = Machine::new(small_machine_pinned(1));
        let b = together.spawn(compute_spec(0, 1e8), VCoreId(0));
        together.spawn(compute_spec(1, 1e8), VCoreId(1));
        together.run_until_done(SimTime::from_secs_f64(10.0));
        let t_together = together.finish_time(b).unwrap().as_secs_f64();

        let ratio = t_together / t_apart;
        let expect = 1.0 / presets::small_machine(1).smt.busy_share;
        assert!(
            ratio > 0.9 * expect && ratio < 1.1 * expect,
            "SMT ratio {ratio}, expected ~{expect}"
        );
    }

    #[test]
    fn migration_costs_dead_time_and_counts() {
        let mut m = Machine::new(presets::small_machine(1));
        let t = m.spawn(compute_spec(0, 1e9), VCoreId(0));
        m.run_for(SimTime::from_ms(10));
        let before = m.counters(t).instructions;
        m.migrate(t, VCoreId(4));
        assert_eq!(m.counters(t).migrations, 1);
        // During dead time no progress.
        m.run_for(SimTime::from_ms(2));
        assert_eq!(m.counters(t).instructions, before);
        m.run_for(SimTime::from_ms(10));
        assert!(m.counters(t).instructions > before);
        assert_eq!(m.vcore_of(t), VCoreId(4));
        // A no-op migration neither counts nor costs.
        m.migrate(t, VCoreId(4));
        assert_eq!(m.counters(t).migrations, 1);
    }

    #[test]
    fn two_threads_share_one_vcore() {
        let mut m = Machine::new(small_machine_pinned(1));
        let a = m.spawn(compute_spec(0, 1e8), VCoreId(0));
        let b = m.spawn(compute_spec(1, 1e8), VCoreId(0));
        m.run_until_done(SimTime::from_secs_f64(10.0));
        // Each got half the core: both take roughly twice the solo time.
        let mut solo = Machine::new(small_machine_pinned(1));
        let s = solo.spawn(compute_spec(0, 1e8), VCoreId(0));
        solo.run_until_done(SimTime::from_secs_f64(10.0));
        let ratio_a =
            m.finish_time(a).unwrap().as_secs_f64() / solo.finish_time(s).unwrap().as_secs_f64();
        assert!(ratio_a > 1.7 && ratio_a < 2.3, "sharing ratio {ratio_a}");
        assert!(m.finish_time(b).is_some());
    }

    #[test]
    fn barrier_couples_group_progress() {
        let mut m = Machine::new(presets::small_machine(1));
        let barrier = Some(BarrierSpec {
            group: BarrierId(0),
            interval_instructions: 1e6,
        });
        // One member on a fast core, one on a slow core.
        let mk = |app: u32| ThreadSpec {
            barrier,
            ..compute_spec(app, 2e7)
        };
        let fast_t = m.spawn(mk(0), VCoreId(0));
        let slow_t = m.spawn(mk(0), VCoreId(4));
        assert!(m.run_until_done(SimTime::from_secs_f64(30.0)));
        let ff = m.finish_time(fast_t).unwrap().as_secs_f64();
        let fs = m.finish_time(slow_t).unwrap().as_secs_f64();
        // Barrier coupling: the fast member is dragged to the slow member's
        // pace, so finish times are close despite a ~1.9x core-speed gap.
        assert!(
            (ff - fs).abs() / fs < 0.1,
            "barrier members should finish together: {ff} vs {fs}"
        );
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = || {
            let mut m = Machine::new(presets::small_machine(7));
            let mut spec = memory_spec(0, 1e8);
            spec.program.phases[0].burstiness = 0.4;
            let t = m.spawn(spec, VCoreId(0));
            m.spawn(compute_spec(1, 1e8), VCoreId(2));
            m.run_for(SimTime::from_ms(500));
            m.counters(t)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_changes_bursty_thread() {
        let run = |seed: u64| {
            let mut m = Machine::new(presets::small_machine(seed));
            let mut spec = memory_spec(0, 1e9);
            spec.program.phases[0].burstiness = 0.5;
            let t = m.spawn(spec, VCoreId(0));
            m.run_for(SimTime::from_ms(200));
            m.counters(t).llc_misses
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn events_are_recorded() {
        let mut m = Machine::new(presets::small_machine(1));
        let t = m.spawn(compute_spec(0, 1e6), VCoreId(0));
        m.migrate(t, VCoreId(1));
        m.run_until_done(SimTime::from_secs_f64(5.0));
        let kinds: Vec<&'static str> = m
            .events()
            .iter()
            .map(|e| match e {
                MachineEvent::Spawned { .. } => "spawn",
                MachineEvent::Migrated { .. } => "migrate",
                MachineEvent::Finished { .. } => "finish",
                MachineEvent::Balanced { .. } => "balance",
                MachineEvent::Stalled { .. } => "stall",
            })
            .collect();
        assert_eq!(kinds, vec!["spawn", "migrate", "finish"]);
        assert_eq!(m.total_migrations(), 1);
    }

    #[test]
    fn stall_freezes_progress_without_counting_as_migration() {
        let mut m = Machine::new(presets::small_machine(1));
        let t = m.spawn(compute_spec(0, 1e9), VCoreId(0));
        m.run_for(SimTime::from_ms(10));
        let before = m.counters(t).instructions;
        // Stalled for the whole window: no instructions retire.
        m.stall(t, SimTime::from_ms(20));
        m.run_for(SimTime::from_ms(20));
        assert_eq!(m.counters(t).instructions, before);
        assert_eq!(m.counters(t).migrations, 0);
        // Progress resumes after the stall window.
        m.run_for(SimTime::from_ms(10));
        assert!(m.counters(t).instructions > before);
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, MachineEvent::Stalled { thread, .. } if *thread == t)));
        // A zero-length stall is a no-op and records nothing.
        let n_events = m.events().len();
        m.stall(t, SimTime::ZERO);
        assert_eq!(m.events().len(), n_events);
    }

    #[test]
    fn core_counters_accumulate_on_right_core() {
        let mut m = Machine::new(presets::small_machine(1));
        m.spawn(memory_spec(0, 1e9), VCoreId(3));
        m.run_for(SimTime::from_ms(100));
        assert!(m.core_counters(VCoreId(3)).accesses > 0.0);
        assert_eq!(m.core_counters(VCoreId(0)).accesses, 0.0);
        assert_eq!(m.core_counters(VCoreId(3)).busy_us, 100_000);
    }

    #[test]
    fn balancer_promotes_threads_to_the_idle_half() {
        // Two compute threads pinned to the slow half; the balancer should
        // move one to the idle fast half within its first interval.
        let mut m = Machine::new(presets::small_machine(1));
        let a = m.spawn(compute_spec(0, 1e9), VCoreId(4));
        let b = m.spawn(compute_spec(1, 1e9), VCoreId(5));
        m.run_for(SimTime::from_ms(300));
        let on_fast = [a, b]
            .iter()
            .filter(|&&t| m.vcore_of(t).index() < 4)
            .count();
        assert_eq!(on_fast, 1, "balancer should even the halves");
        assert!(m.balancer_moves() >= 1);
        // Policy migration counters untouched.
        assert_eq!(m.total_migrations(), 0);
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, MachineEvent::Balanced { .. })));
    }

    #[test]
    fn balancer_respects_disable_flag() {
        let mut cfg = presets::small_machine(1);
        cfg.balance.enabled = false;
        let mut m = Machine::new(cfg);
        let a = m.spawn(compute_spec(0, 1e9), VCoreId(4));
        m.run_for(SimTime::from_ms(300));
        assert_eq!(m.vcore_of(a), VCoreId(4));
        assert_eq!(m.balancer_moves(), 0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn run_for_rejects_partial_ticks() {
        let mut m = Machine::new(presets::small_machine(1));
        m.run_for(SimTime::from_us(1500));
    }

    /// A 2-domain all-fast machine (2 pcores per domain, 2-way SMT = 8
    /// vcores), balancer off so tests control placement exactly.
    fn numa_small(seed: u64) -> crate::config::MachineConfig {
        let mut cfg = presets::small_machine(seed);
        cfg.topology = crate::topology::Topology::numa_uniform(2, 2, 0, 2);
        cfg.balance.enabled = false;
        cfg
    }

    #[test]
    fn home_domain_is_fixed_at_spawn() {
        let mut m = Machine::new(numa_small(1));
        let t = m.spawn(memory_spec(0, 1e9), VCoreId(0));
        assert_eq!(m.home_domain_of(t), crate::ids::DomainId(0));
        m.migrate(t, VCoreId(4)); // domain 1
        assert_eq!(m.home_domain_of(t), crate::ids::DomainId(0));
        let u = m.spawn(memory_spec(1, 1e9), VCoreId(5));
        assert_eq!(m.home_domain_of(u), crate::ids::DomainId(1));
    }

    #[test]
    fn cross_domain_migration_costs_more_than_intra() {
        // Identical fast cores; the only difference is whether the
        // migration target shares the source's NUMA domain.
        let run = |target: u32| {
            let mut m = Machine::new(numa_small(1));
            let t = m.spawn(memory_spec(0, 5e7), VCoreId(0));
            m.migrate(t, VCoreId(target));
            m.run_until_done(SimTime::from_secs_f64(30.0));
            (
                m.finish_time(t).unwrap().as_secs_f64(),
                m.counters(t).remote_us,
            )
        };
        let (intra_s, intra_remote) = run(2); // pcore 1, still domain 0
        let (cross_s, cross_remote) = run(4); // pcore 2, domain 1
        assert_eq!(intra_remote, 0);
        assert!(cross_remote > 0, "remote residency must be counted");
        assert!(
            cross_s > intra_s * 1.05,
            "cross-domain swap must cost more: {cross_s}s vs {intra_s}s"
        );
    }

    #[test]
    fn remote_us_zero_on_single_domain_machines() {
        let mut m = Machine::new(presets::small_machine(1));
        let t = m.spawn(memory_spec(0, 1e8), VCoreId(0));
        m.migrate(t, VCoreId(4));
        m.run_until_done(SimTime::from_secs_f64(30.0));
        assert_eq!(m.counters(t).remote_us, 0);
    }

    #[test]
    fn mid_run_spawn_records_time_home_and_dense_id() {
        let mut m = Machine::new(numa_small(1));
        let a = m.spawn(compute_spec(0, 1e6), VCoreId(0));
        assert_eq!(m.spawn_time(a), SimTime::ZERO);
        m.run_for(SimTime::from_ms(50));
        // First-touch homing happens at actual spawn time, on the core the
        // arrival lands on — domain 1 here, regardless of earlier threads.
        let b = m.spawn(compute_spec(1, 1e6), VCoreId(5));
        assert_eq!(b, ThreadId(1), "ids stay dense across mid-run spawns");
        assert_eq!(m.spawn_time(b), SimTime::from_ms(50));
        assert_eq!(m.home_domain_of(b), crate::ids::DomainId(1));
        assert!(m.run_until_done(SimTime::from_secs_f64(10.0)));
        // A finished thread is retired: its vcore shows up as idle again.
        assert!(m.idle_vcores().contains(&VCoreId(5)));
        assert_eq!(m.idle_vcores().len(), 8);
    }

    #[test]
    fn idle_vcores_excludes_occupied_slots() {
        let mut m = Machine::new(small_machine_pinned(1));
        m.spawn(compute_spec(0, 1e9), VCoreId(2));
        m.spawn(compute_spec(1, 1e9), VCoreId(2)); // doubled up
        let idle = m.idle_vcores();
        assert!(!idle.contains(&VCoreId(2)));
        assert_eq!(idle.len(), 7, "one occupied vcore on an 8-vcore machine");
    }

    #[test]
    fn numa_machine_runs_threads_in_every_domain() {
        let mut cfg = presets::numa_machine(4, 3);
        cfg.balance.enabled = false;
        let mut m = Machine::new(cfg);
        let mut ids = Vec::new();
        for d in 0..4u32 {
            ids.push(m.spawn(memory_spec(d, 5e7), VCoreId(d * 40)));
        }
        assert!(m.run_until_done(SimTime::from_secs_f64(30.0)));
        for (d, &t) in ids.iter().enumerate() {
            assert_eq!(m.home_domain_of(t), crate::ids::DomainId(d as u32));
            assert_eq!(m.counters(t).remote_us, 0);
            assert!(m.counters(t).instructions >= 5e7 - 1.0);
        }
    }
}
